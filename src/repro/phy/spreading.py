"""DSSS spreading and correlation despreading (standard Sec. 6.5.2.3).

Transmit direction: every 4-bit symbol expands to its 32-chip PN sequence.
Receive direction: groups of 32 (possibly soft) chips are correlated with
all 16 bipolar sequences and the best-matching symbol is selected — the
error-correction behaviour the paper's CER analysis relies on (Sec. 6.2).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .pn import BIPOLAR_PN_SEQUENCES, CHIPS_PER_SYMBOL, PN_SEQUENCES


def spread_symbols(symbols: np.ndarray) -> np.ndarray:
    """Expand 4-bit symbols into their 0/1 chip stream."""
    symbols = np.asarray(symbols, dtype=np.int64)
    if symbols.ndim != 1:
        raise ShapeError(f"symbols must be 1-D, got shape {symbols.shape}")
    if symbols.size and (symbols.min() < 0 or symbols.max() > 15):
        raise ShapeError("symbols must be 4-bit values in [0, 15]")
    return PN_SEQUENCES[symbols].reshape(-1).copy()


def despread_soft_chips(soft_chips: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Correlate soft chip values against the PN table.

    Parameters
    ----------
    soft_chips:
        Real-valued chip metrics (positive leaning towards chip '1');
        length must be a multiple of 32.

    Returns
    -------
    tuple
        ``(symbols, scores)`` where ``symbols`` is the argmax symbol per
        group and ``scores`` the ``(num_symbols, 16)`` correlation matrix.
    """
    soft_chips = np.asarray(soft_chips, dtype=np.float64)
    if soft_chips.ndim != 1:
        raise ShapeError("soft_chips must be 1-D")
    if len(soft_chips) % CHIPS_PER_SYMBOL != 0:
        raise ShapeError(
            f"chip count {len(soft_chips)} is not a multiple of "
            f"{CHIPS_PER_SYMBOL}"
        )
    groups = soft_chips.reshape(-1, CHIPS_PER_SYMBOL)
    scores = groups @ BIPOLAR_PN_SEQUENCES.T
    symbols = np.argmax(scores, axis=1).astype(np.uint8)
    return symbols, scores


def despread_chips(chips: np.ndarray) -> np.ndarray:
    """Despread hard 0/1 chip decisions into symbols (max correlation)."""
    chips = np.asarray(chips)
    if chips.ndim != 1:
        raise ShapeError("chips must be 1-D")
    bipolar = 2.0 * chips.astype(np.float64) - 1.0
    symbols, _ = despread_soft_chips(bipolar)
    return symbols


def despread_chips_batch(chips: np.ndarray) -> np.ndarray:
    """Row-wise :func:`despread_chips` over a ``(P, chips)`` batch."""
    chips = np.asarray(chips)
    if chips.ndim != 2:
        raise ShapeError("chips batch must be 2-D")
    if chips.shape[1] % CHIPS_PER_SYMBOL != 0:
        raise ShapeError(
            f"chip count {chips.shape[1]} is not a multiple of "
            f"{CHIPS_PER_SYMBOL}"
        )
    bipolar = 2.0 * chips.astype(np.float64) - 1.0
    groups = bipolar.reshape(chips.shape[0], -1, CHIPS_PER_SYMBOL)
    scores = groups @ BIPOLAR_PN_SEQUENCES.T
    return np.argmax(scores, axis=2).astype(np.uint8)
