"""Carrier-frequency-offset estimation and correction.

The paper's receiver performs "frequency offset correction and packet
frame synchronization" for every technique (Sec. 5.1).  Cheap sensor
crystals offset the carrier by tens of ppm; the classic data-aided
estimator correlates the received preamble with a delayed conjugate copy
of itself — the preamble repeats every 32-chip zero symbol, so the phase
advance over one symbol period reveals the offset.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def estimate_cfo(
    received_preamble: np.ndarray,
    reference_preamble: np.ndarray,
    sample_rate_hz: float,
    period_samples: int,
) -> float:
    """Data-aided CFO estimate in Hz.

    Parameters
    ----------
    received_preamble:
        Received samples covering at least two repetitions of the
        preamble period.  Pass the *periodic* preamble region only —
        including the aperiodic SFD biases the estimate.
    reference_preamble:
        Clean preamble waveform (unused amplitude-wise; kept for length
        validation so callers pass aligned windows).
    sample_rate_hz:
        Baseband sample rate.
    period_samples:
        Repetition period in samples (one zero-symbol = 32 chips x
        samples-per-chip for the 802.15.4 preamble).
    """
    received_preamble = np.asarray(received_preamble, dtype=np.complex128)
    if received_preamble.ndim != 1:
        raise ShapeError("received_preamble must be 1-D")
    if period_samples < 1:
        raise ShapeError(f"period_samples must be >= 1, got {period_samples}")
    if len(received_preamble) < 2 * period_samples:
        raise ShapeError(
            "need at least two preamble periods "
            f"({2 * period_samples} samples), got {len(received_preamble)}"
        )
    if len(reference_preamble) < len(received_preamble):
        raise ShapeError(
            "reference shorter than the received window"
        )
    head = received_preamble[:-period_samples]
    tail = received_preamble[period_samples:]
    accumulator = np.sum(tail * np.conj(head))
    if accumulator == 0:
        return 0.0
    phase_per_period = float(np.angle(accumulator))
    return phase_per_period / (2.0 * np.pi) * sample_rate_hz / period_samples


def correct_cfo(
    waveform: np.ndarray, cfo_hz: float, sample_rate_hz: float
) -> np.ndarray:
    """De-rotate a waveform by a known carrier frequency offset."""
    waveform = np.asarray(waveform, dtype=np.complex128)
    if waveform.ndim != 1:
        raise ShapeError("waveform must be 1-D")
    if sample_rate_hz <= 0:
        raise ShapeError("sample_rate_hz must be positive")
    n = np.arange(len(waveform))
    return waveform * np.exp(-2j * np.pi * cfo_hz * n / sample_rate_hz)


def apply_cfo(
    waveform: np.ndarray, cfo_hz: float, sample_rate_hz: float
) -> np.ndarray:
    """Impose a carrier frequency offset (channel-side helper)."""
    return correct_cfo(waveform, -cfo_hz, sample_rate_hz)
