"""Packet frame synchronization by preamble correlation.

The paper's sniffer performs frame synchronization for every technique
(Sec. 5.1, footnote 8).  We correlate the received samples against the
clean SHR reference waveform and pick the strongest lag inside a search
window.  The peak lag equals the channel's dominant-tap delay; the peak's
energy-normalized magnitude doubles as the preamble-detection metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..errors import ShapeError, SynchronizationError
from ..dsp.convolution import cross_correlate_full


@dataclass(frozen=True)
class SyncResult:
    """Outcome of frame synchronization."""

    offset: int
    metric: float


def correlate_sync(
    received: np.ndarray,
    reference: np.ndarray,
    search_window: int,
) -> SyncResult:
    """Locate the frame start of ``reference`` inside ``received``.

    Parameters
    ----------
    received:
        Received samples; the true frame start is assumed near index 0
        (the sniffer slices packets using the LED-synchronized timeline).
    reference:
        Clean SHR waveform.
    search_window:
        Maximum lag (in samples) considered, i.e. offsets ``0 ..
        search_window``.

    Returns
    -------
    SyncResult
        The lag of the strongest correlation peak and its
        energy-normalized magnitude in [0, 1].
    """
    received = np.asarray(received, dtype=np.complex128)
    reference = np.asarray(reference, dtype=np.complex128)
    if received.ndim != 1 or reference.ndim != 1:
        raise ShapeError("correlate_sync expects 1-D inputs")
    if search_window < 0:
        raise ShapeError("search_window must be >= 0")
    if len(received) < len(reference):
        raise SynchronizationError(
            f"received window ({len(received)}) shorter than reference "
            f"({len(reference)})"
        )
    correlation = cross_correlate_full(received, reference)
    zero_lag = len(reference) - 1
    lags = correlation[zero_lag : zero_lag + search_window + 1]
    if len(lags) == 0:
        raise SynchronizationError("empty synchronization search window")
    magnitudes = np.abs(lags)
    best = int(np.argmax(magnitudes))

    # Amplitude-like detection metric: correlation peak normalized by the
    # clean reference energy.  Approximates the dominant-path amplitude,
    # so detection fails when blockage fades the received power — the
    # real-world failure mode of preamble detection (Sec. 6.1 / [3]).
    ref_energy = float(np.sum(np.abs(reference) ** 2))
    if ref_energy == 0:
        metric = 0.0
    else:
        metric = float(magnitudes[best] / ref_energy)
    return SyncResult(offset=best, metric=metric)


def correlate_sync_batch(
    received: np.ndarray,
    reference: np.ndarray,
    search_window: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Frame-sync a ``(P, samples)`` batch against one clean SHR reference.

    Only ``search_window + 1`` candidate lags exist, so the batched path
    computes them as direct inner products (one small matmul over strided
    windows) instead of a full FFT correlation per packet.

    Returns
    -------
    tuple
        ``(offsets, metrics)`` arrays of shape ``(P,)`` matching
        :func:`correlate_sync` per row.
    """
    received = np.asarray(received, dtype=np.complex128)
    reference = np.asarray(reference, dtype=np.complex128)
    if received.ndim != 2 or reference.ndim != 1:
        raise ShapeError(
            "correlate_sync_batch expects a 2-D batch and 1-D reference"
        )
    if search_window < 0:
        raise ShapeError("search_window must be >= 0")
    if received.shape[1] < len(reference):
        raise SynchronizationError(
            f"received window ({received.shape[1]}) shorter than reference "
            f"({len(reference)})"
        )
    # The scalar full correlation offers one candidate per received
    # sample; beyond the full-overlap range the windows are partial.
    num_lags = min(search_window + 1, received.shape[1])
    full_lags = min(num_lags, received.shape[1] - len(reference) + 1)
    if num_lags <= 0:
        raise SynchronizationError("empty synchronization search window")
    conj_reference = np.conj(reference)
    correlation = np.empty(
        (received.shape[0], num_lags), dtype=np.complex128
    )
    windows = sliding_window_view(received, len(reference), axis=1)
    correlation[:, :full_lags] = (
        windows[:, :full_lags, :] @ conj_reference
    )
    # Lags whose reference window runs past the end of the rows only
    # partially overlap — match the scalar full correlation there.
    for lag in range(full_lags, num_lags):
        overlap = received.shape[1] - lag
        correlation[:, lag] = (
            received[:, lag:] @ conj_reference[:overlap]
        )
    magnitudes = np.abs(correlation)
    offsets = np.argmax(magnitudes, axis=1)
    ref_energy = float(np.sum(np.abs(reference) ** 2))
    if ref_energy == 0:
        metrics = np.zeros(received.shape[0])
    else:
        metrics = (
            magnitudes[np.arange(received.shape[0]), offsets] / ref_energy
        )
    return offsets.astype(np.int64), metrics
