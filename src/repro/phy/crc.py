"""IEEE 802.15.4 frame check sequence (16-bit ITU-T CRC).

The FCS uses the polynomial :math:`x^{16} + x^{12} + x^5 + 1` with zero
initial value, bits processed LSB-first, and the result appended
little-endian — the configuration mandated by the standard's MAC.
"""

from __future__ import annotations

_POLY_REFLECTED = 0x8408  # 0x1021 bit-reversed


def _build_table() -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY_REFLECTED
            else:
                crc >>= 1
        table.append(crc & 0xFFFF)
    return tuple(table)


_CRC_TABLE = _build_table()


def crc16_itut(data: bytes) -> int:
    """Compute the 802.15.4 FCS over ``data``; returns a 16-bit integer."""
    crc = 0x0000
    for byte in data:
        crc = (crc >> 8) ^ _CRC_TABLE[(crc ^ byte) & 0xFF]
    return crc & 0xFFFF


def append_fcs(payload: bytes) -> bytes:
    """Return ``payload`` with its 2-byte little-endian FCS appended."""
    fcs = crc16_itut(payload)
    return payload + bytes((fcs & 0xFF, fcs >> 8))


def check_fcs(psdu: bytes) -> bool:
    """Validate a PSDU whose last two bytes are the FCS."""
    if len(psdu) < 3:
        return False
    payload, trailer = psdu[:-2], psdu[-2:]
    fcs = crc16_itut(payload)
    return trailer == bytes((fcs & 0xFF, fcs >> 8))
