"""Receive chain: sync, preamble handling, equalization, despreading.

The receiver implements the processing shared by every compared technique
(Sec. 5.1): frame synchronization and phase-offset correction are always
performed; the techniques differ only in where the channel estimate comes
from.  ``decode_with_estimate`` applies LS zero-forcing equalization with
the supplied estimate, ``decode_standard`` performs the plain IEEE
802.15.4 decoding without equalization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import PhyConfig, ReceiverConfig
from ..dsp.equalization import equalize, equalizer_delay, zero_forcing_equalizer
from ..dsp.estimation import ls_channel_estimate
from ..dsp.phase import estimate_waveform_phase_shift
from ..errors import ShapeError
from .frame import FrameLayout, parse_psdu, psdu_from_symbols
from .oqpsk import oqpsk_demodulate
from .spreading import despread_chips
from .synchronization import SyncResult, correlate_sync
from .transmitter import Transmitter


@dataclass
class DecodeResult:
    """Outcome of decoding one received packet."""

    symbols: np.ndarray
    hard_chips: np.ndarray
    soft_chips: np.ndarray
    psdu: bytes
    sequence_number: int
    fcs_ok: bool


class Receiver:
    """IEEE 802.15.4 receiver with pluggable channel estimates."""

    def __init__(
        self,
        phy: PhyConfig | None = None,
        config: ReceiverConfig | None = None,
        transmitter: Transmitter | None = None,
    ) -> None:
        self.phy = phy or PhyConfig()
        self.config = config or ReceiverConfig()
        self._transmitter = transmitter or Transmitter(self.phy)
        self.layout: FrameLayout = self._transmitter.layout
        self._reference_shr = self._transmitter.reference_shr_waveform
        self._reference_shr_energy = float(
            np.sum(np.abs(self._reference_shr) ** 2)
        )

    # -- synchronization and detection ----------------------------------
    def synchronize(self, received: np.ndarray) -> SyncResult:
        """Correlation frame sync against the clean SHR reference."""
        return correlate_sync(
            received, self._reference_shr, self.config.sync_search_window
        )

    def detect_preamble(self, received: np.ndarray) -> tuple[bool, float]:
        """Preamble detection via the normalized sync-peak metric.

        Detection fails in deep fades, which is what holds the
        preamble-based technique back in Fig. 12.
        """
        sync = self.synchronize(received)
        detected = sync.metric >= self.config.preamble_detection_threshold
        return detected, sync.metric

    # -- channel estimates ------------------------------------------------
    def preamble_ls_estimate(
        self, received: np.ndarray, num_taps: int
    ) -> np.ndarray:
        """LS estimate from the SHR region only (Fig. 9, preamble-based)."""
        region = self.layout.shr_samples
        return ls_channel_estimate(
            self._reference_shr,
            received[:region],
            num_taps,
            mode="valid",
        )

    def full_ls_estimate(
        self,
        received: np.ndarray,
        transmitted_waveform: np.ndarray,
        num_taps: int,
    ) -> np.ndarray:
        """Whole-packet LS estimate — the paper's *perfect* estimate."""
        return ls_channel_estimate(
            transmitted_waveform, received, num_taps, mode="full"
        )

    def blind_phase_shift(
        self, received: np.ndarray, estimate: np.ndarray
    ) -> float:
        """Footnote-4 phase alignment of a blind estimate to this packet."""
        region = self.layout.shr_samples
        return estimate_waveform_phase_shift(
            received[: region + len(estimate) - 1],
            self._reference_shr,
            estimate,
        )

    # -- decoding ---------------------------------------------------------
    def _despread_and_parse(
        self, equalized: np.ndarray
    ) -> DecodeResult:
        spc = self.phy.samples_per_chip
        soft, hard = oqpsk_demodulate(
            equalized, self.layout.total_chips, spc
        )
        # The paper's receiver correlates hard chip decisions against the
        # 16 PN sequences (Sec. 6.2), which is why it observes a CER
        # reliability threshold around 2-3e-2.
        symbols = despread_chips(hard)
        psdu = psdu_from_symbols(symbols, self.layout)
        sequence_number, fcs_ok = parse_psdu(psdu)
        return DecodeResult(
            symbols=symbols,
            hard_chips=hard,
            soft_chips=soft,
            psdu=psdu,
            sequence_number=sequence_number,
            fcs_ok=fcs_ok,
        )

    def decode_with_estimate(
        self, received: np.ndarray, estimate: np.ndarray
    ) -> DecodeResult:
        """ZF-equalize with ``estimate`` (Eqs. 6-7) and decode."""
        estimate = np.asarray(estimate, dtype=np.complex128)
        if estimate.ndim != 1:
            raise ShapeError("channel estimate must be 1-D")
        delay = equalizer_delay(len(estimate), self.config.equalizer_taps)
        eq_taps = zero_forcing_equalizer(
            estimate, self.config.equalizer_taps, delay
        )
        aligned = equalize(
            received,
            eq_taps,
            delay,
            output_length=self.layout.waveform_samples,
        )
        return self._despread_and_parse(aligned)

    def decode_standard(self, received: np.ndarray) -> DecodeResult:
        """Plain 802.15.4 decoding: sync + scalar gain, no equalization."""
        sync = self.synchronize(received)
        aligned = received[sync.offset :]
        region = min(len(aligned), self.layout.shr_samples)
        reference = self._reference_shr[:region]
        energy = float(np.sum(np.abs(reference) ** 2))
        if energy > 0:
            gain = np.vdot(reference, aligned[:region]) / energy
        else:
            gain = 1.0
        if gain == 0:
            gain = 1.0
        corrected = aligned / gain
        if len(corrected) < self.layout.waveform_samples:
            corrected = np.concatenate(
                [
                    corrected,
                    np.zeros(
                        self.layout.waveform_samples - len(corrected),
                        dtype=corrected.dtype,
                    ),
                ]
            )
        return self._despread_and_parse(corrected)
