"""Receive chain: sync, preamble handling, equalization, despreading.

The receiver implements the processing shared by every compared technique
(Sec. 5.1): frame synchronization and phase-offset correction are always
performed; the techniques differ only in where the channel estimate comes
from.  ``decode_with_estimate`` applies LS zero-forcing equalization with
the supplied estimate, ``decode_standard`` performs the plain IEEE
802.15.4 decoding without equalization.

Batched variants (``*_batch`` / ``decode_batch``) process a ``(P,
samples)`` packet matrix at once: the preamble LS operator and the ZF
equalizers are cached per receiver, and synchronization, equalization,
demodulation and despreading run as matrix operations.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..config import PhyConfig, ReceiverConfig
from ..dsp.equalization import (
    equalize,
    equalize_batch,
    equalizer_delay,
    zero_forcing_equalizer,
)
from ..dsp.estimation import ls_channel_estimate, valid_ls_operator
from ..dsp.phase import estimate_waveform_phase_shift
from ..errors import ShapeError
from .frame import FrameLayout, parse_psdu, psdu_from_symbols
from .oqpsk import oqpsk_demodulate, oqpsk_demodulate_batch
from .spreading import despread_chips, despread_chips_batch
from .synchronization import SyncResult, correlate_sync, correlate_sync_batch
from .transmitter import Transmitter

_GAIN_EPS = 1e-12
_EQUALIZER_CACHE_SIZE = 512


@dataclass
class DecodeResult:
    """Outcome of decoding one received packet."""

    symbols: np.ndarray
    hard_chips: np.ndarray
    soft_chips: np.ndarray
    psdu: bytes
    sequence_number: int
    fcs_ok: bool


class Receiver:
    """IEEE 802.15.4 receiver with pluggable channel estimates."""

    def __init__(
        self,
        phy: PhyConfig | None = None,
        config: ReceiverConfig | None = None,
        transmitter: Transmitter | None = None,
    ) -> None:
        self.phy = phy or PhyConfig()
        self.config = config or ReceiverConfig()
        self._transmitter = transmitter or Transmitter(self.phy)
        self.layout: FrameLayout = self._transmitter.layout
        self._reference_shr = self._transmitter.reference_shr_waveform
        self._reference_shr_energy = float(
            np.sum(np.abs(self._reference_shr) ** 2)
        )
        #: Cached pseudo-inverse of the SHR window matrix per tap count —
        #: the matrix depends only on the constant preamble waveform.
        self._preamble_operators: dict[int, np.ndarray] = {}
        #: LRU of ZF equalizers keyed by the exact estimate bytes.
        self._equalizer_cache: OrderedDict[
            tuple[bytes, int, int], np.ndarray
        ] = OrderedDict()

    # -- synchronization and detection ----------------------------------
    def synchronize(self, received: np.ndarray) -> SyncResult:
        """Correlation frame sync against the clean SHR reference."""
        return correlate_sync(
            received, self._reference_shr, self.config.sync_search_window
        )

    def synchronize_batch(
        self, received: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Frame-sync every row of a packet batch; ``(offsets, metrics)``."""
        return correlate_sync_batch(
            received, self._reference_shr, self.config.sync_search_window
        )

    def detect_preamble(self, received: np.ndarray) -> tuple[bool, float]:
        """Preamble detection via the normalized sync-peak metric.

        Detection fails in deep fades, which is what holds the
        preamble-based technique back in Fig. 12.
        """
        sync = self.synchronize(received)
        detected = sync.metric >= self.config.preamble_detection_threshold
        return detected, sync.metric

    def detect_preamble_batch(
        self, received: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Row-wise :meth:`detect_preamble`; ``(detected, metrics)``."""
        _, metrics = self.synchronize_batch(received)
        detected = metrics >= self.config.preamble_detection_threshold
        return detected, metrics

    # -- channel estimates ------------------------------------------------
    def _preamble_operator(self, num_taps: int) -> np.ndarray:
        operator = self._preamble_operators.get(num_taps)
        if operator is None:
            region = self.layout.shr_samples
            operator = valid_ls_operator(
                np.asarray(self._reference_shr, dtype=np.complex128),
                num_taps,
            )
            assert operator.shape[1] == region - num_taps + 1
            self._preamble_operators[num_taps] = operator
        return operator

    def preamble_ls_estimate(
        self, received: np.ndarray, num_taps: int
    ) -> np.ndarray:
        """LS estimate from the SHR region only (Fig. 9, preamble-based)."""
        region = self.layout.shr_samples
        return ls_channel_estimate(
            self._reference_shr,
            received[:region],
            num_taps,
            mode="valid",
        )

    def preamble_ls_estimate_batch(
        self, received: np.ndarray, num_taps: int
    ) -> np.ndarray:
        """Row-wise :meth:`preamble_ls_estimate` via one cached operator."""
        received = np.asarray(received, dtype=np.complex128)
        if received.ndim != 2:
            raise ShapeError("received batch must be 2-D")
        region = self.layout.shr_samples
        operator = self._preamble_operator(num_taps)
        return received[:, num_taps - 1 : region] @ operator.T

    def full_ls_estimate(
        self,
        received: np.ndarray,
        transmitted_waveform: np.ndarray,
        num_taps: int,
    ) -> np.ndarray:
        """Whole-packet LS estimate — the paper's *perfect* estimate."""
        return ls_channel_estimate(
            transmitted_waveform, received, num_taps, mode="full"
        )

    def blind_phase_shift(
        self, received: np.ndarray, estimate: np.ndarray
    ) -> float:
        """Footnote-4 phase alignment of a blind estimate to this packet."""
        region = self.layout.shr_samples
        return estimate_waveform_phase_shift(
            received[: region + len(estimate) - 1],
            self._reference_shr,
            estimate,
        )

    # -- equalizer construction -------------------------------------------
    def _equalizer_for(
        self, estimate: np.ndarray, delay: int
    ) -> np.ndarray:
        """ZF equalizer for an estimate, LRU-cached per distinct estimate."""
        key = (estimate.tobytes(), self.config.equalizer_taps, delay)
        cached = self._equalizer_cache.get(key)
        if cached is not None:
            self._equalizer_cache.move_to_end(key)
            return cached
        taps = zero_forcing_equalizer(
            estimate, self.config.equalizer_taps, delay
        )
        self._equalizer_cache[key] = taps
        if len(self._equalizer_cache) > _EQUALIZER_CACHE_SIZE:
            self._equalizer_cache.popitem(last=False)
        return taps

    # -- decoding ---------------------------------------------------------
    def _despread_and_parse(
        self, equalized: np.ndarray
    ) -> DecodeResult:
        spc = self.phy.samples_per_chip
        soft, hard = oqpsk_demodulate(
            equalized, self.layout.total_chips, spc
        )
        # The paper's receiver correlates hard chip decisions against the
        # 16 PN sequences (Sec. 6.2), which is why it observes a CER
        # reliability threshold around 2-3e-2.
        symbols = despread_chips(hard)
        psdu = psdu_from_symbols(symbols, self.layout)
        sequence_number, fcs_ok = parse_psdu(psdu)
        return DecodeResult(
            symbols=symbols,
            hard_chips=hard,
            soft_chips=soft,
            psdu=psdu,
            sequence_number=sequence_number,
            fcs_ok=fcs_ok,
        )

    def decode_with_estimate(
        self, received: np.ndarray, estimate: np.ndarray
    ) -> DecodeResult:
        """ZF-equalize with ``estimate`` (Eqs. 6-7) and decode."""
        estimate = np.asarray(estimate, dtype=np.complex128)
        if estimate.ndim != 1:
            raise ShapeError("channel estimate must be 1-D")
        delay = equalizer_delay(len(estimate), self.config.equalizer_taps)
        eq_taps = self._equalizer_for(estimate, delay)
        aligned = equalize(
            received,
            eq_taps,
            delay,
            output_length=self.layout.waveform_samples,
        )
        return self._despread_and_parse(aligned)

    def decode_batch(
        self, received: np.ndarray, estimates: np.ndarray
    ) -> list[DecodeResult]:
        """Row-wise :meth:`decode_with_estimate` over a packet batch.

        Parameters
        ----------
        received:
            ``(P, samples)`` complex received matrix (one packet per
            row, equal lengths).
        estimates:
            ``(P, taps)`` complex channel estimates; every row must
            have the same tap count (it fixes the shared equalizer
            delay).

        Returns
        -------
        list[DecodeResult]
            One result per row.  Equalization, O-QPSK demodulation and
            despreading run as whole-matrix operations; the decoded
            chips, symbols and PSDUs match the scalar
            :meth:`decode_with_estimate` per row (hard decisions are
            bit-identical; soft values agree within ``1e-10``).  ZF
            equalizers are LRU-cached per distinct estimate, so
            repeated estimates (e.g. a technique tracking slowly) cost
            one design each.
        """
        received = np.asarray(received, dtype=np.complex128)
        estimates = np.asarray(estimates, dtype=np.complex128)
        if received.ndim != 2 or estimates.ndim != 2:
            raise ShapeError(
                "decode_batch expects 2-D received and estimate batches"
            )
        if received.shape[0] != estimates.shape[0]:
            raise ShapeError(
                f"batch size mismatch: {received.shape[0]} received rows "
                f"vs {estimates.shape[0]} estimates"
            )
        delay = equalizer_delay(
            estimates.shape[1], self.config.equalizer_taps
        )
        equalizers = np.empty(
            (received.shape[0], self.config.equalizer_taps),
            dtype=np.complex128,
        )
        for row in range(received.shape[0]):
            equalizers[row] = self._equalizer_for(estimates[row], delay)
        aligned = equalize_batch(
            received,
            equalizers,
            delay,
            output_length=self.layout.waveform_samples,
        )
        soft, hard = oqpsk_demodulate_batch(
            aligned, self.layout.total_chips, self.phy.samples_per_chip
        )
        symbols = despread_chips_batch(hard)
        results = []
        for row in range(received.shape[0]):
            psdu = psdu_from_symbols(symbols[row], self.layout)
            sequence_number, fcs_ok = parse_psdu(psdu)
            results.append(
                DecodeResult(
                    symbols=symbols[row],
                    hard_chips=hard[row],
                    soft_chips=soft[row],
                    psdu=psdu,
                    sequence_number=sequence_number,
                    fcs_ok=fcs_ok,
                )
            )
        return results

    def decode_standard(self, received: np.ndarray) -> DecodeResult:
        """Plain 802.15.4 decoding: sync + scalar gain, no equalization."""
        sync = self.synchronize(received)
        aligned = received[sync.offset :]
        region = min(len(aligned), self.layout.shr_samples)
        reference = self._reference_shr[:region]
        energy = float(np.sum(np.abs(reference) ** 2))
        if energy > 0:
            gain = np.vdot(reference, aligned[:region]) / energy
        else:
            gain = 1.0
        # Near-zero gains in deep fades would blow the correction up to
        # numerical garbage; compare by magnitude, not complex equality.
        if abs(gain) < _GAIN_EPS:
            gain = 1.0
        corrected = aligned / gain
        if len(corrected) < self.layout.waveform_samples:
            corrected = np.concatenate(
                [
                    corrected,
                    np.zeros(
                        self.layout.waveform_samples - len(corrected),
                        dtype=corrected.dtype,
                    ),
                ]
            )
        return self._despread_and_parse(corrected)
