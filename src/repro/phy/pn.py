"""IEEE 802.15.4 2.4 GHz pseudo-noise chip sequences.

Each 4-bit symbol maps to one of 16 nearly-orthogonal 32-chip sequences
(standard Table 73).  The table is generated from the symbol-0 base
sequence using the standard's structure:

- symbols 1..7 are the base sequence cyclically right-shifted by
  ``4 * symbol`` chips;
- symbols 8..15 repeat symbols 0..7 with every odd-indexed chip inverted
  (equivalent to conjugating the O-QPSK waveform).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

CHIPS_PER_SYMBOL = 32
NUM_SYMBOLS = 16

#: Chip sequence for data symbol 0 (IEEE 802.15.4-2003, Table 73).
_BASE_SEQUENCE = np.array(
    [1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1,
     0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0],
    dtype=np.int8,
)


def _build_table() -> np.ndarray:
    table = np.empty((NUM_SYMBOLS, CHIPS_PER_SYMBOL), dtype=np.int8)
    for symbol in range(8):
        table[symbol] = np.roll(_BASE_SEQUENCE, 4 * symbol)
    flip_mask = np.zeros(CHIPS_PER_SYMBOL, dtype=bool)
    flip_mask[1::2] = True
    for symbol in range(8):
        shifted = table[symbol].copy()
        shifted[flip_mask] = 1 - shifted[flip_mask]
        table[symbol + 8] = shifted
    table.setflags(write=False)
    return table


#: ``(16, 32)`` array of 0/1 chips, row ``s`` is the sequence of symbol ``s``.
PN_SEQUENCES: np.ndarray = _build_table()

#: ``(16, 32)`` array of +/-1 chips used by the correlation despreader.
BIPOLAR_PN_SEQUENCES: np.ndarray = (2.0 * PN_SEQUENCES - 1.0).astype(np.float64)
BIPOLAR_PN_SEQUENCES.setflags(write=False)


def pn_sequence(symbol: int) -> np.ndarray:
    """Return the 32-chip 0/1 sequence of a 4-bit ``symbol``."""
    if not 0 <= symbol < NUM_SYMBOLS:
        raise ShapeError(f"symbol must be in [0, 16), got {symbol}")
    return PN_SEQUENCES[symbol]
