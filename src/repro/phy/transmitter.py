"""Transmit chain: PSDU -> symbols -> chips -> O-QPSK baseband waveform."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..config import PhyConfig
from .frame import FrameLayout, make_psdu
from .oqpsk import oqpsk_modulate


@dataclass(frozen=True)
class TransmittedPacket:
    """Everything the evaluation needs to know about one transmission."""

    sequence_number: int
    psdu: bytes
    symbols: np.ndarray
    chips: np.ndarray
    waveform: np.ndarray

    @property
    def num_chips(self) -> int:
        return len(self.chips)


class Transmitter:
    """IEEE 802.15.4 transmitter for the measurement campaign.

    Packets share a constant payload except for sequence number and FCS
    (Sec. 3), so consecutive calls differ only in a few symbols.  Built
    packets are cached per sequence number (bounded LRU): the evaluation
    re-transmits the same frames every time a packet is re-synthesized,
    and re-modulating them dominated the scalar pipeline.
    """

    def __init__(
        self, phy: PhyConfig | None = None, cache_size: int = 256
    ) -> None:
        self.phy = phy or PhyConfig()
        self.layout = FrameLayout(
            preamble_bytes=self.phy.preamble_bytes,
            psdu_bytes=self.phy.psdu_bytes,
            samples_per_chip=self.phy.samples_per_chip,
        )
        self._cache_size = max(1, cache_size)
        self._cache: OrderedDict[int, TransmittedPacket] = OrderedDict()
        # The SHR+PHR prefix never changes; cache its clean waveform for
        # the receiver's synchronization and detection reference.
        template = self.transmit(0)
        self._reference_shr = template.waveform[: self.layout.shr_samples]
        self._reference_shr.setflags(write=False)

    @property
    def reference_shr_waveform(self) -> np.ndarray:
        """Clean SHR-region waveform (preamble + SFD), noise/channel free."""
        return self._reference_shr

    def frame_chips(self, sequence_number: int) -> np.ndarray:
        """Chip stream of one packet without modulating it (read-only)."""
        cached = self._cache.get(sequence_number)
        if cached is not None:
            return cached.chips
        psdu = make_psdu(sequence_number, self.phy.psdu_bytes)
        chips = self.layout.frame_chips(psdu)
        chips.setflags(write=False)
        return chips

    def transmit(self, sequence_number: int) -> TransmittedPacket:
        """Build (or fetch from cache) the baseband waveform of a packet."""
        cached = self._cache.get(sequence_number)
        if cached is not None:
            self._cache.move_to_end(sequence_number)
            return cached
        psdu = make_psdu(sequence_number, self.phy.psdu_bytes)
        symbols = self.layout.frame_symbols(psdu)
        chips = self.layout.frame_chips(psdu)
        waveform = oqpsk_modulate(chips, self.phy.samples_per_chip)
        for array in (symbols, chips, waveform):
            array.setflags(write=False)
        packet = TransmittedPacket(
            sequence_number=sequence_number,
            psdu=psdu,
            symbols=symbols,
            chips=chips,
            waveform=waveform,
        )
        self._cache[sequence_number] = packet
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return packet
