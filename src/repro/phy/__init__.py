"""IEEE 802.15.4 O-QPSK / DSSS physical layer (2.4 GHz band).

Implements the PHY used by the paper's Zolertia RE-Mote sensors
end-to-end:

- :mod:`repro.phy.pn` — the 16 orthogonal 32-chip pseudo-noise sequences.
- :mod:`repro.phy.crc` — the 16-bit ITU-T FCS.
- :mod:`repro.phy.symbols` — byte <-> 4-bit-symbol mapping.
- :mod:`repro.phy.spreading` — symbol <-> chip (de)spreading.
- :mod:`repro.phy.oqpsk` — half-sine O-QPSK modulation at a configurable
  number of samples per chip (4 => the paper's 8 MHz baseband).
- :mod:`repro.phy.frame` — SHR/PHR/PSDU framing and reference regions.
- :mod:`repro.phy.transmitter` / :mod:`repro.phy.receiver` — full chains.
"""

from .pn import PN_SEQUENCES, pn_sequence, BIPOLAR_PN_SEQUENCES
from .crc import crc16_itut, append_fcs, check_fcs
from .symbols import bytes_to_symbols, symbols_to_bytes
from .spreading import (
    spread_symbols,
    despread_chips,
    despread_chips_batch,
    despread_soft_chips,
)
from .oqpsk import (
    half_sine_pulse,
    oqpsk_modulate,
    oqpsk_chip_projections,
    oqpsk_chip_projections_batch,
    oqpsk_demodulate,
    oqpsk_demodulate_batch,
)
from .frame import FrameLayout, make_psdu, parse_psdu
from .transmitter import Transmitter, TransmittedPacket
from .receiver import Receiver, DecodeResult
from .batch import BatchPhyEngine, get_batch_engine

__all__ = [
    "PN_SEQUENCES",
    "BIPOLAR_PN_SEQUENCES",
    "pn_sequence",
    "crc16_itut",
    "append_fcs",
    "check_fcs",
    "bytes_to_symbols",
    "symbols_to_bytes",
    "spread_symbols",
    "despread_chips",
    "despread_chips_batch",
    "despread_soft_chips",
    "half_sine_pulse",
    "oqpsk_modulate",
    "oqpsk_chip_projections",
    "oqpsk_chip_projections_batch",
    "oqpsk_demodulate",
    "oqpsk_demodulate_batch",
    "FrameLayout",
    "make_psdu",
    "parse_psdu",
    "Transmitter",
    "TransmittedPacket",
    "Receiver",
    "DecodeResult",
    "BatchPhyEngine",
    "get_batch_engine",
]
