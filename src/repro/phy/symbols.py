"""Byte <-> 4-bit data-symbol mapping of IEEE 802.15.4.

Each octet is split into two symbols, least-significant nibble first
(standard Sec. 6.5.2.2): byte ``0xA7`` becomes symbols ``[0x7, 0xA]``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def bytes_to_symbols(data: bytes) -> np.ndarray:
    """Map bytes to 4-bit symbols, LSB nibble first."""
    raw = np.frombuffer(bytes(data), dtype=np.uint8)
    symbols = np.empty(2 * len(raw), dtype=np.uint8)
    symbols[0::2] = raw & 0x0F
    symbols[1::2] = raw >> 4
    return symbols


def symbols_to_bytes(symbols: np.ndarray) -> bytes:
    """Inverse of :func:`bytes_to_symbols`; needs an even symbol count."""
    symbols = np.asarray(symbols, dtype=np.uint8)
    if symbols.ndim != 1:
        raise ShapeError(f"symbols must be 1-D, got shape {symbols.shape}")
    if len(symbols) % 2 != 0:
        raise ShapeError(
            f"symbol count must be even to form bytes, got {len(symbols)}"
        )
    if np.any(symbols > 0x0F):
        raise ShapeError("symbols must be 4-bit values")
    low = symbols[0::2].astype(np.uint8)
    high = symbols[1::2].astype(np.uint8)
    return bytes((high << 4 | low).tolist())
