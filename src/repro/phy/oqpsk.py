"""O-QPSK modulation with half-sine pulse shaping (standard Sec. 6.5.2.4).

Even-indexed chips ride the in-phase rail, odd-indexed chips the
quadrature rail offset by one chip period; each chip is shaped by a
half-sine spanning two chip periods.  Chip ``j``'s pulse therefore starts
at sample ``j * samples_per_chip`` regardless of rail, which makes both
modulation and coherent demodulation simple strided operations.

The half-sine/offset combination yields the constant-envelope MSK-like
waveform the 802.15.4 radios transmit.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def half_sine_pulse(samples_per_chip: int) -> np.ndarray:
    """Half-sine chip pulse spanning two chip periods."""
    if samples_per_chip < 2:
        raise ShapeError(
            f"samples_per_chip must be >= 2, got {samples_per_chip}"
        )
    support = 2 * samples_per_chip
    t = np.arange(support, dtype=np.float64)
    return np.sin(np.pi * t / support)


def oqpsk_modulate(chips: np.ndarray, samples_per_chip: int) -> np.ndarray:
    """Modulate 0/1 chips into the complex baseband waveform.

    Returns ``(len(chips) + 1) * samples_per_chip`` complex samples (the
    final pulse extends one chip period past the last chip boundary).
    """
    chips = np.asarray(chips)
    if chips.ndim != 1:
        raise ShapeError(f"chips must be 1-D, got shape {chips.shape}")
    if len(chips) % 2 != 0:
        raise ShapeError(
            f"O-QPSK needs an even chip count, got {len(chips)}"
        )
    pulse = half_sine_pulse(samples_per_chip)
    bipolar = 2.0 * chips.astype(np.float64) - 1.0
    num_samples = (len(chips) + 1) * samples_per_chip
    i_rail = np.zeros(num_samples, dtype=np.float64)
    q_rail = np.zeros(num_samples, dtype=np.float64)

    even = bipolar[0::2]
    odd = bipolar[1::2]
    support = 2 * samples_per_chip
    if len(even):
        # I pulses are contiguous and non-overlapping on their rail.
        block = np.outer(even, pulse).reshape(-1)
        i_rail[: len(even) * support] = block
    if len(odd):
        block = np.outer(odd, pulse).reshape(-1)
        q_rail[samples_per_chip : samples_per_chip + len(odd) * support] = block
    return i_rail + 1j * q_rail


def oqpsk_chip_projections(
    waveform: np.ndarray, num_chips: int, samples_per_chip: int
) -> np.ndarray:
    """Complex matched-filter projection for every chip position.

    ``projections[j]`` is the inner product of the waveform window starting
    at ``j * samples_per_chip`` with the half-sine pulse.  The caller takes
    the real part for even chips and the imaginary part for odd chips.
    """
    waveform = np.asarray(waveform, dtype=np.complex128)
    if waveform.ndim != 1:
        raise ShapeError("waveform must be 1-D")
    pulse = half_sine_pulse(samples_per_chip)
    support = 2 * samples_per_chip
    needed = num_chips * samples_per_chip + samples_per_chip
    if len(waveform) < needed:
        padded = np.zeros(needed, dtype=np.complex128)
        padded[: len(waveform)] = waveform
        waveform = padded
    starts = np.arange(num_chips) * samples_per_chip
    windows = waveform[starts[:, None] + np.arange(support)[None, :]]
    return windows @ pulse


def oqpsk_chip_projections_batch(
    waveforms: np.ndarray, num_chips: int, samples_per_chip: int
) -> np.ndarray:
    """Matched-filter chip projections for a ``(P, samples)`` batch.

    Splits every pulse window into its two non-overlapping chip-period
    halves so the projections become two contiguous batched matmuls (no
    per-chip window gather).
    """
    waveforms = np.asarray(waveforms, dtype=np.complex128)
    if waveforms.ndim != 2:
        raise ShapeError("waveforms must be (P, samples)")
    pulse = half_sine_pulse(samples_per_chip)
    needed = num_chips * samples_per_chip + samples_per_chip
    if waveforms.shape[1] < needed:
        padded = np.zeros(
            (waveforms.shape[0], needed), dtype=np.complex128
        )
        padded[:, : waveforms.shape[1]] = waveforms
        waveforms = padded
    blocks = waveforms[:, :needed].reshape(
        waveforms.shape[0], num_chips + 1, samples_per_chip
    )
    head = blocks[:, :num_chips, :] @ pulse[:samples_per_chip]
    tail = blocks[:, 1 : num_chips + 1, :] @ pulse[samples_per_chip:]
    return head + tail


def oqpsk_demodulate_batch(
    waveforms: np.ndarray, num_chips: int, samples_per_chip: int
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise :func:`oqpsk_demodulate` over a waveform batch.

    Returns ``(soft_chips, hard_chips)`` of shape ``(P, num_chips)``.
    """
    projections = oqpsk_chip_projections_batch(
        waveforms, num_chips, samples_per_chip
    )
    soft = np.empty(projections.shape, dtype=np.float64)
    soft[:, 0::2] = projections[:, 0::2].real
    soft[:, 1::2] = projections[:, 1::2].imag
    hard = (soft > 0).astype(np.int8)
    return soft, hard


def oqpsk_demodulate(
    waveform: np.ndarray, num_chips: int, samples_per_chip: int
) -> tuple[np.ndarray, np.ndarray]:
    """Coherent O-QPSK demodulation.

    Returns ``(soft_chips, hard_chips)`` where ``soft_chips`` are the rail
    projections (sign encodes the chip) and ``hard_chips`` are 0/1
    decisions.
    """
    projections = oqpsk_chip_projections(waveform, num_chips, samples_per_chip)
    soft = np.empty(num_chips, dtype=np.float64)
    soft[0::2] = projections[0::2].real
    soft[1::2] = projections[1::2].imag
    hard = (soft > 0).astype(np.int8)
    return soft, hard
