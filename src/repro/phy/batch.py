"""Batched packet synthesis and whole-packet LS estimation.

The campaign transmits near-identical frames: every packet shares the
template payload and differs only in sequence number and FCS (Sec. 3).
The batch engine exploits that structure twice:

1. **Synthesis** — ``conv(x_p, h_p)`` splits into ``conv(t, h_p)`` (one
   BLAS matmul of the channel batch against the template's delayed-copy
   matrix) plus tiny corrections ``conv(d_p, h_p)`` on the sparse chip
   spans where packet ``p`` deviates from the template.
2. **Estimation** — the LS normal equations need only the reference
   autocorrelation at lags ``0..N-1`` and the cross-correlation
   ``X^H y`` at the same lags.  Both decompose the same way: one shared
   template term (a second matmul) plus per-span corrections, so no
   per-packet FFT over the full waveform is ever taken.

Everything matches the scalar pipeline to numerical precision; the
per-packet noise is drawn from the identical per-seed generators, so the
``synthesize_received`` replay contract is preserved bit-exactly.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..errors import ShapeError
from .oqpsk import half_sine_pulse

#: Sequence number whose frame acts as the shared template.
_TEMPLATE_SEQUENCE = 0

#: Cached per-sequence delta spans (a few KB each).
_DELTA_CACHE_SIZE = 1024


class BatchPhyEngine:
    """Template-factorized batch synthesis/LS engine for one transmitter.

    All batch methods operate on ``(P, ...)`` matrices — one packet per
    row — in ``complex128`` and reproduce the scalar pipeline row by
    row: ``tests/test_batch_equivalence.py`` asserts agreement within
    ``1e-10`` absolute tolerance for waveforms and LS estimates, and the
    per-seed AWGN draws are bit-exact (the ``synthesize_received``
    replay contract).

    Parameters
    ----------
    transmitter:
        The campaign :class:`~repro.phy.transmitter.Transmitter`.
    num_taps:
        FIR channel model order ``N`` (11 throughout the paper).

    Attributes
    ----------
    waveform_length:
        Samples of one clean packet waveform.
    received_length:
        Samples after channel convolution:
        ``waveform_length + num_taps - 1``; the row width of every
        received matrix.
    """

    def __init__(self, transmitter, num_taps: int) -> None:
        if num_taps < 1:
            raise ShapeError(f"num_taps must be >= 1, got {num_taps}")
        self.transmitter = transmitter
        self.num_taps = int(num_taps)
        self.samples_per_chip = transmitter.phy.samples_per_chip
        template = transmitter.transmit(_TEMPLATE_SEQUENCE)
        self._template_chips = np.asarray(template.chips)
        t = np.asarray(template.waveform, dtype=np.complex128)
        self._template = t
        self.waveform_length = len(t)
        self.received_length = len(t) + self.num_taps - 1

        # Delayed-copy matrix: row j holds the template delayed by j
        # samples, so ``h @ matrix`` equals ``np.convolve(t, h)`` and
        # ``y @ conj(matrix).T`` equals the cross-correlation X^H y at
        # lags 0..N-1 (up to the sparse per-packet corrections).
        matrix = np.zeros(
            (self.num_taps, self.received_length), dtype=np.complex128
        )
        for j in range(self.num_taps):
            matrix[j, j : j + len(t)] = t
        self._delay_matrix = matrix
        self._corr_matrix = np.ascontiguousarray(np.conj(matrix).T)

        # Template autocorrelation at lags 0..N-1 and a zero-guarded
        # copy of the template for span-local correlations.
        pad = np.zeros(self.num_taps - 1, dtype=np.complex128)
        self._template_guarded = np.concatenate([pad, t, pad])
        self._template_autocorr = np.correlate(
            np.concatenate([t, pad]), t, mode="valid"
        )
        self._pulse = half_sine_pulse(self.samples_per_chip)
        #: Reusable scratch (received matrix + noise draw row): avoids
        #: re-faulting tens of megabytes of fresh pages per chunk.
        self._received_scratch: np.ndarray | None = None
        self._draws_scratch = np.empty(
            2 * self.received_length, dtype=np.float64
        )
        #: LRU of per-sequence delta spans — the evaluation re-visits the
        #: same test packets once per Table 2 combination.
        self._delta_cache: OrderedDict[
            int, list[tuple[int, np.ndarray]]
        ] = OrderedDict()
        # Merge chip runs whose waveform supports come within N samples
        # of each other so span cross-terms vanish by construction.
        self._merge_gap_chips = (
            2 + (self.num_taps + self.samples_per_chip - 1)
            // self.samples_per_chip
        )

    # -- per-packet sparse deltas ----------------------------------------
    def packet_deltas(
        self, sequence_number: int
    ) -> list[tuple[int, np.ndarray]]:
        """Sparse waveform difference of one packet vs the template.

        Returns ``(start_sample, delta)`` spans — ``delta`` a 1-D
        ``complex128`` segment — such that the packet's clean waveform
        equals the template plus the spans (bit-exact: same-parity
        half-sine pulses never overlap, so patching replaces each
        sample's single chip contribution).  Spans are LRU-cached per
        sequence number; treat them as read-only.
        """
        cached = self._delta_cache.get(sequence_number)
        if cached is not None:
            self._delta_cache.move_to_end(sequence_number)
            return cached
        chips = np.asarray(
            self.transmitter.frame_chips(sequence_number)
        )
        changed = np.nonzero(chips != self._template_chips)[0]
        if changed.size == 0:
            self._store_deltas(sequence_number, [])
            return []
        gaps = np.nonzero(
            np.diff(changed) > self._merge_gap_chips
        )[0]
        run_starts = np.concatenate([[0], gaps + 1])
        run_stops = np.concatenate([gaps, [changed.size - 1]])
        spc = self.samples_per_chip
        pulse = self._pulse
        spans: list[tuple[int, np.ndarray]] = []
        for lo, hi in zip(run_starts, run_stops):
            c0 = int(changed[lo])
            c1 = int(changed[hi])
            delta_bip = 2.0 * (
                chips[c0 : c1 + 1].astype(np.float64)
                - self._template_chips[c0 : c1 + 1]
            )
            span = np.zeros((c1 - c0 + 2) * spc, dtype=np.complex128)
            for parity, rail in ((0, span.real), (1, span.imag)):
                first = c0 if c0 % 2 == parity else c0 + 1
                if first > c1:
                    continue
                weights = delta_bip[first - c0 :: 2]
                start = (first - c0) * spc
                # Same-parity pulses are adjacent and non-overlapping, so
                # the outer product lays them out back-to-back exactly.
                flat = np.outer(weights, pulse).reshape(-1)
                rail[start : start + flat.size] = flat
            spans.append((c0 * spc, span))
        self._store_deltas(sequence_number, spans)
        return spans

    def _store_deltas(
        self,
        sequence_number: int,
        spans: list[tuple[int, np.ndarray]],
    ) -> None:
        self._delta_cache[sequence_number] = spans
        if len(self._delta_cache) > _DELTA_CACHE_SIZE:
            self._delta_cache.popitem(last=False)

    # -- batched synthesis ------------------------------------------------
    def clean_waveforms_convolved(
        self,
        deltas: list[list[tuple[int, np.ndarray]]],
        channels: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """``np.convolve(waveform_p, channels[p])`` for a packet batch.

        Parameters
        ----------
        deltas:
            Per-packet :meth:`packet_deltas` span lists, length ``P``.
        channels:
            ``(P, num_taps)`` complex FIR channels.
        out:
            Optional ``(P, received_length)`` complex128 output buffer.

        Returns
        -------
        numpy.ndarray
            ``(P, received_length)`` complex128 matrix; row ``p``
            matches the scalar convolution of packet ``p``'s clean
            waveform with ``channels[p]`` within ``1e-10``.
        """
        channels = np.asarray(channels, dtype=np.complex128)
        if channels.ndim != 2 or channels.shape[1] != self.num_taps:
            raise ShapeError(
                f"channels must be (P, {self.num_taps}), got "
                f"{channels.shape}"
            )
        if len(deltas) != channels.shape[0]:
            raise ShapeError("deltas/channels batch size mismatch")
        if out is None:
            clean = channels @ self._delay_matrix
        else:
            clean = np.matmul(channels, self._delay_matrix, out=out)
        for row, spans in enumerate(deltas):
            for start, span in spans:
                segment = np.convolve(span, channels[row])
                clean[row, start : start + len(segment)] += segment
        return clean

    def synthesize_received(
        self,
        deltas: list[list[tuple[int, np.ndarray]]],
        channels: np.ndarray,
        phase_offsets: np.ndarray,
        noise_seeds: np.ndarray,
        noise_power: float,
        reuse_buffer: bool = False,
    ) -> np.ndarray:
        """Batched equivalent of :func:`repro.dataset.generator.
        synthesize_received` — identical per-seed noise realizations.

        Parameters
        ----------
        deltas:
            Per-packet :meth:`packet_deltas` span lists, length ``P``.
        channels:
            ``(P, num_taps)`` complex FIR channels (``h_true``).
        phase_offsets:
            ``(P,)`` float64 crystal phases in radians.
        noise_seeds:
            ``(P,)`` uint64 per-packet AWGN seeds.
        noise_power:
            Shared complex noise power (one SNR operating point).
        reuse_buffer:
            With ``True`` the returned matrix aliases an internal
            scratch buffer that the next ``reuse_buffer`` call
            overwrites; use it when the rows are consumed before the
            engine is invoked again (the chunked generator/runner
            loops).

        Returns
        -------
        numpy.ndarray
            ``(P, received_length)`` complex128 received matrix.  The
            clean part matches the scalar path within ``1e-10``; the
            noise realization per seed is bit-exact, so recorded
            campaigns replay identically under either engine.
        """
        channels = np.asarray(channels, dtype=np.complex128)
        phases = np.exp(
            1j * np.asarray(phase_offsets, dtype=np.float64)
        )
        out = None
        if reuse_buffer:
            rows = channels.shape[0]
            scratch = self._received_scratch
            if scratch is None or scratch.shape[0] < rows:
                scratch = np.empty(
                    (rows, self.received_length), dtype=np.complex128
                )
                self._received_scratch = scratch
            out = scratch[:rows]
        # The crystal rotation commutes with the convolution, so rotating
        # the 11-tap channels instead of the waveforms saves one full
        # pass over the sample matrix.
        received = self.clean_waveforms_convolved(
            deltas, channels * phases[:, None], out=out
        )
        length = received.shape[1]
        scale = np.sqrt(noise_power / 2.0)
        draws = self._draws_scratch
        for row in range(received.shape[0]):
            line = received[row]
            np.random.default_rng(
                int(noise_seeds[row])
            ).standard_normal(out=draws)
            draws *= scale
            line.real += draws[:length]
            line.imag += draws[length:]
        return received

    # -- batched whole-packet LS -----------------------------------------
    def full_ls_estimates(
        self,
        received: np.ndarray,
        deltas: list[list[tuple[int, np.ndarray]]],
    ) -> np.ndarray:
        """Whole-packet LS estimates for a batch of received rows.

        Parameters
        ----------
        received:
            ``(P, received_length)`` complex received matrix.
        deltas:
            Per-packet :meth:`packet_deltas` span lists, length ``P``.

        Returns
        -------
        numpy.ndarray
            ``(P, num_taps)`` complex128 tap matrix; row ``p`` matches
            ``ls_channel_estimate(x_p, received[p], N, mode="full")``
            within ``1e-10`` without materializing any per-packet
            reference ``x_p``.
        """
        from ..dsp.estimation import solve_ls_normal_equations

        received = np.asarray(received, dtype=np.complex128)
        if received.ndim != 2 or received.shape[1] != self.received_length:
            raise ShapeError(
                f"received must be (P, {self.received_length}), got "
                f"{received.shape}"
            )
        num_taps = self.num_taps
        cross = received @ self._corr_matrix
        guarded = self._template_guarded
        offset = num_taps - 1
        estimates = np.empty(
            (received.shape[0], num_taps), dtype=np.complex128
        )
        for row, spans in enumerate(deltas):
            autocorr = self._template_autocorr
            if spans:
                autocorr = autocorr.copy()
                cross_row = cross[row]
                for start, span in spans:
                    length = len(span)
                    # X^H y correction on the span.
                    cross_row += np.correlate(
                        received[row, start : start + length + offset],
                        span,
                        mode="valid",
                    )
                    # Autocorrelation corrections: template x delta (both
                    # orders) and delta x delta.
                    base = start + offset
                    autocorr += np.correlate(
                        guarded[base : base + length + offset],
                        span,
                        mode="valid",
                    )
                    flipped = np.correlate(
                        guarded[start : start + length + offset],
                        span,
                        mode="valid",
                    )
                    autocorr += np.conj(flipped[::-1])
                    autocorr += np.correlate(
                        np.concatenate(
                            [span, np.zeros(offset, dtype=np.complex128)]
                        ),
                        span,
                        mode="valid",
                    )
            estimates[row] = solve_ls_normal_equations(
                autocorr, cross[row]
            )
        return estimates


def get_batch_engine(transmitter, num_taps: int) -> BatchPhyEngine:
    """Fetch (or lazily build) the batch engine cached on a transmitter."""
    engines = getattr(transmitter, "_batch_engines", None)
    if engines is None:
        engines = {}
        transmitter._batch_engines = engines
    engine = engines.get(num_taps)
    if engine is None:
        engine = BatchPhyEngine(transmitter, num_taps)
        engines[num_taps] = engine
    return engine
