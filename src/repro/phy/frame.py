"""IEEE 802.15.4 PPDU framing (SHR + PHR + PSDU) and reference regions.

A frame is::

    | preamble (4 x 0x00) | SFD (0xA7) | PHR (length) | PSDU (<=127 B) |

The PSDU ends with the 2-byte FCS.  The paper's packets are 127-byte
PSDUs whose payload is constant except for the sequence number and CRC
(Sec. 3); :func:`make_psdu` reproduces that.  :class:`FrameLayout`
additionally exposes the sample-domain regions used by the estimators
(Fig. 9): the synchronization header for preamble-based estimation and the
whole frame for the perfect estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, ShapeError
from .crc import append_fcs, check_fcs
from .pn import CHIPS_PER_SYMBOL
from .spreading import spread_symbols
from .symbols import bytes_to_symbols, symbols_to_bytes

SFD_BYTE = 0xA7
PHR_BYTES = 1
SFD_BYTES = 1


@dataclass(frozen=True)
class FrameLayout:
    """Chip/sample geometry of a PPDU for a given PHY configuration."""

    preamble_bytes: int = 4
    psdu_bytes: int = 127
    samples_per_chip: int = 4

    def __post_init__(self) -> None:
        if self.preamble_bytes < 1:
            raise ConfigurationError("preamble_bytes must be >= 1")
        if not 3 <= self.psdu_bytes <= 127:
            raise ConfigurationError(
                f"psdu_bytes must be in [3, 127], got {self.psdu_bytes}"
            )

    # -- symbol counts ----------------------------------------------------
    @property
    def preamble_symbols(self) -> int:
        return 2 * self.preamble_bytes

    @property
    def sfd_symbols(self) -> int:
        return 2 * SFD_BYTES

    @property
    def phr_symbols(self) -> int:
        return 2 * PHR_BYTES

    @property
    def psdu_symbols(self) -> int:
        return 2 * self.psdu_bytes

    @property
    def total_symbols(self) -> int:
        return (
            self.preamble_symbols
            + self.sfd_symbols
            + self.phr_symbols
            + self.psdu_symbols
        )

    # -- chip counts -------------------------------------------------------
    @property
    def total_chips(self) -> int:
        return self.total_symbols * CHIPS_PER_SYMBOL

    @property
    def shr_chips(self) -> int:
        """Chips of the synchronization header (preamble + SFD)."""
        return (self.preamble_symbols + self.sfd_symbols) * CHIPS_PER_SYMBOL

    @property
    def psdu_chip_slice(self) -> slice:
        start = (
            self.preamble_symbols + self.sfd_symbols + self.phr_symbols
        ) * CHIPS_PER_SYMBOL
        return slice(start, start + self.psdu_symbols * CHIPS_PER_SYMBOL)

    @property
    def psdu_symbol_slice(self) -> slice:
        start = self.preamble_symbols + self.sfd_symbols + self.phr_symbols
        return slice(start, start + self.psdu_symbols)

    # -- sample counts -----------------------------------------------------
    @property
    def waveform_samples(self) -> int:
        return (self.total_chips + 1) * self.samples_per_chip

    @property
    def shr_samples(self) -> int:
        """Length of the SHR region in samples (Fig. 9 reference part)."""
        return self.shr_chips * self.samples_per_chip

    # -- frame construction --------------------------------------------
    def frame_bytes(self, psdu: bytes) -> bytes:
        """Assemble the over-the-air byte stream of a PPDU."""
        if len(psdu) != self.psdu_bytes:
            raise ShapeError(
                f"PSDU must be {self.psdu_bytes} bytes, got {len(psdu)}"
            )
        header = bytes([0x00] * self.preamble_bytes + [SFD_BYTE, len(psdu)])
        return header + bytes(psdu)

    def frame_symbols(self, psdu: bytes) -> np.ndarray:
        return bytes_to_symbols(self.frame_bytes(psdu))

    def frame_chips(self, psdu: bytes) -> np.ndarray:
        return spread_symbols(self.frame_symbols(psdu))


_FILLER_CACHE: dict[int, bytes] = {}


def make_psdu(sequence_number: int, psdu_bytes: int) -> bytes:
    """Build the paper's measurement payload.

    All packets share a fixed filler pattern; only the first two bytes
    (little-endian sequence number) and the trailing FCS differ.
    """
    if psdu_bytes < 5:
        raise ConfigurationError(
            f"psdu_bytes must be >= 5 (2 B seq + >=1 B filler + 2 B FCS), "
            f"got {psdu_bytes}"
        )
    if not 0 <= sequence_number < 1 << 16:
        raise ConfigurationError(
            f"sequence_number must fit 16 bits, got {sequence_number}"
        )
    payload_len = psdu_bytes - 2
    filler = _FILLER_CACHE.get(payload_len)
    if filler is None:
        filler = bytes((37 * i + 11) & 0xFF for i in range(payload_len))
        _FILLER_CACHE[payload_len] = filler
    payload = bytearray(filler)
    payload[0] = sequence_number & 0xFF
    payload[1] = sequence_number >> 8
    return append_fcs(bytes(payload))


def parse_psdu(psdu: bytes) -> tuple[int, bool]:
    """Extract ``(sequence_number, fcs_ok)`` from a decoded PSDU."""
    if len(psdu) < 5:
        return 0, False
    sequence_number = psdu[0] | (psdu[1] << 8)
    return sequence_number, check_fcs(psdu)


def psdu_from_symbols(symbols: np.ndarray, layout: FrameLayout) -> bytes:
    """Slice the PSDU bytes out of a decoded symbol stream."""
    symbols = np.asarray(symbols)
    if len(symbols) != layout.total_symbols:
        raise ShapeError(
            f"expected {layout.total_symbols} symbols, got {len(symbols)}"
        )
    return symbols_to_bytes(symbols[layout.psdu_symbol_slice])
