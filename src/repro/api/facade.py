"""The programmatic campaign facade: prepare, run, observe, fetch.

:func:`prepare` turns a typed :class:`~repro.api.jobs.JobSpec` into a
:class:`CampaignHandle` — the resolved campaign DAG, its stable
directory under ``<cache root>/campaigns`` and everything needed to run
or observe it.  The CLI subcommands and the ``repro serve`` HTTP
handlers both call this module; neither owns orchestration logic, so a
grid submitted over HTTP and the same grid run via ``repro grid``
produce byte-identical ``results.json``/records/reports.

The run summary of each kind (the cache-hit sentinels nightly CI greps
for, the step counts, the SLA appendix) is assembled here, line for
line identical to what the pre-facade CLI printed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields as dataclass_fields
from pathlib import Path
from typing import Callable

from .. import faults
from ..campaign.cache import DATASET_CACHE_SALT, DatasetCache
from ..campaign.grid import format_axis_value, get_grid, grid_steps
from ..campaign.manifest import (
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_PENDING,
    STATUS_QUARANTINED,
    STATUS_RUNNING,
    CampaignManifest,
)
from ..campaign.models import MODEL_CACHE_SALT, ModelCheckpointRegistry
from ..campaign.results import ResultsStore
from ..campaign.runner import (
    FIGURE_NAMES,
    Campaign,
    CampaignContext,
    RetryPolicy,
    capacity_steps,
    figure_steps,
    stream_steps,
    sweep_steps,
    train_steps,
)
from ..campaign.scenario import get_scenario
from ..errors import ConfigurationError, NotFoundError
from ..obs import log, trace
from .errors import EXIT_OK, EXIT_QUARANTINED
from .jobs import (
    CampaignOutcome,
    CampaignStatus,
    CapacityJob,
    FigureJob,
    GridJob,
    JobSpec,
    StepEvent,
    StreamJob,
    SweepJob,
    TrainJob,
)


def campaign_dir(
    cache: DatasetCache, kind: str, name: str, options: dict
) -> Path:
    """Stable per-campaign directory under ``<cache root>/campaigns``.

    The id hashes the scenario/grid name plus the campaign options and
    the dataset code-version salt, so changing the SNR grid, the suite,
    the set count — or bumping the generator version — starts a fresh
    manifest, while re-running the identical command resumes the
    previous one.  (Pass ``fresh`` to force re-execution after code
    changes the salt does not capture, e.g. estimator fixes.  ``jobs``
    is deliberately *not* hashed: a serial and a parallel invocation of
    the same campaign share one manifest and resume each other.)  The
    directory basename doubles as the service's job id and dedup key.
    """
    canonical = json.dumps(
        {
            "scenario": name,
            "kind": kind,
            "options": options,
            "salt": DATASET_CACHE_SALT,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(canonical.encode()).hexdigest()[:12]
    # Grid-member scenario names contain "/" (grid/axis=value,...);
    # flatten so every campaign stays one directory under campaigns/.
    safe = name.replace("/", "_")
    return cache.root / "campaigns" / f"{kind}-{safe}-{digest}"


@dataclass(frozen=True)
class RunOptions:
    """Per-run execution options (the campaign flags of the CLI).

    These deliberately exclude everything hashed into the campaign
    directory: two runs with different ``RunOptions`` share one
    manifest and resume each other.
    """

    jobs: int = 1
    fresh: bool = False
    retries: int = 3
    step_timeout: float | None = None
    no_quarantine: bool = False
    faults: str | None = None
    trace: bool = False

    @classmethod
    def from_mapping(cls, data: dict | None) -> "RunOptions":
        """Build from a validated job-option dict, ignoring extras."""
        data = dict(data or {})
        known = {f.name for f in dataclass_fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


def self_healing_lines(result, plan) -> list[str]:
    """The retry/quarantine sentinel line of one campaign run.

    Emitted whenever something actually self-healed — or whenever a
    fault plan is armed, so chaos CI can grep the sentinels
    unconditionally (a clean chaos run prints ``... 0 step(s)
    quarantined``).
    """
    if plan is None and not result.retried and not result.quarantined:
        return []
    line = (
        f"self-healing: {result.retried} step attempt(s) retried, "
        f"{len(result.quarantined)} step(s) quarantined"
    )
    if result.quarantined:
        line += ": " + ", ".join(result.quarantined)
    return [line]


def _steps_line(result, directory: Path) -> str:
    """The ``steps: N executed, M resumed`` footer of one run."""
    return (
        f"\nsteps: {len(result.executed)} executed, "
        f"{len(result.skipped)} resumed from manifest "
        f"({directory / 'manifest.json'})"
    )


class CampaignHandle:
    """One prepared campaign: run it, poll it, read its artifacts.

    Handles are cheap to construct (:func:`prepare` builds the step
    DAG but executes nothing) and are not tied to a process: any
    handle prepared over the same cache root and spec observes the
    same campaign directory, so a daemon worker, a CLI invocation and
    a notebook can run/poll one campaign interchangeably.
    """

    def __init__(
        self,
        spec: JobSpec,
        *,
        campaign: Campaign,
        context: CampaignContext,
        cache: DatasetCache,
        registry: ModelCheckpointRegistry | None,
        supports_robustness: bool,
        supports_jobs: bool,
        stale_hook: Callable[[], None] | None,
        summarize: Callable[..., list[str]],
    ) -> None:
        self.spec = spec
        self.campaign = campaign
        self.context = context
        self.cache = cache
        self.registry = registry
        self.directory = context.directory
        self.supports_robustness = supports_robustness
        self.supports_jobs = supports_jobs
        self._stale_hook = stale_hook
        self._summarize = summarize

    @property
    def kind(self) -> str:
        """The campaign kind (``sweep``/``train``/.../``grid``)."""
        return self.spec.kind

    @property
    def job_id(self) -> str:
        """Stable id: the campaign directory basename (the dedup key)."""
        return self.directory.name

    @property
    def manifest_path(self) -> Path:
        """The campaign's resume journal."""
        return self.directory / "manifest.json"

    # -- execution ------------------------------------------------------
    def run(self, options: RunOptions | None = None) -> CampaignOutcome:
        """Execute (or resume) the campaign and return its outcome.

        ``outcome.text`` is the summary the equivalent CLI invocation
        prints, byte for byte; ``outcome.exit_code`` comes from the
        :mod:`repro.api.errors` table (0, or 3 when steps were
        quarantined).
        """
        options = options or RunOptions()
        if not self.supports_robustness and options.faults is not None:
            raise ConfigurationError(
                f"{self.kind} campaigns do not support fault injection"
            )
        if self._stale_hook is not None and not options.fresh:
            self._stale_hook()
        plan = None
        traced = False
        if self.supports_robustness and options.faults is not None:
            plan = faults.resolve_plan(
                options.faults,
                state_dir=self.directory / "faults" / "state",
            )
            faults.activate(plan, self.directory / "faults" / "plan.json")
            log.info(f"fault plan {plan.name!r} armed: {plan.summary()}")
        if options.trace:
            trace.arm(self.directory / "trace")
            log.info(
                f"tracing armed: journal under {self.directory / 'trace'}"
            )
            traced = True
        try:
            if self.supports_robustness:
                result = self.campaign.run(
                    self.context,
                    resume=not options.fresh,
                    jobs=options.jobs if self.supports_jobs else 1,
                    retry=RetryPolicy(
                        max_attempts=options.retries,
                        timeout_s=options.step_timeout,
                    ),
                    quarantine=not options.no_quarantine,
                )
            else:
                result = self.campaign.run(
                    self.context, resume=not options.fresh
                )
        finally:
            if plan is not None:
                faults.deactivate()
            if traced:
                trace.disarm()
        lines = self._summarize(self, result, plan, options)
        exit_code = EXIT_QUARANTINED if result.quarantined else EXIT_OK
        return CampaignOutcome(
            job_id=self.job_id,
            executed=tuple(result.executed),
            skipped=tuple(result.skipped),
            quarantined=tuple(result.quarantined),
            retried=result.retried,
            exit_code=exit_code,
            text="\n".join(lines),
        )

    # -- observation ----------------------------------------------------
    def events(self) -> list[StepEvent]:
        """Every recorded manifest transition, oldest first.

        Reloaded from disk on every call so a handle in one process
        observes a campaign another process is running.
        """
        manifest = CampaignManifest.load(self.manifest_path)
        events = [
            StepEvent(
                step=step_id,
                status=record.get("status", STATUS_PENDING),
                detail=record.get("detail", ""),
                updated=record.get("updated", 0.0),
                attempts=len(record.get("attempts", [])),
            )
            for step_id, record in manifest.steps.items()
        ]
        events.sort(key=lambda e: (e.updated, e.step))
        return events

    def status(self) -> CampaignStatus:
        """Point-in-time state of the campaign, derived from events."""
        events = self.events()
        counts: dict[str, int] = {}
        for event in events:
            counts[event.status] = counts.get(event.status, 0) + 1
        total_steps = len(self.campaign.steps)
        if counts.get(STATUS_RUNNING):
            state = "running"
        elif counts.get(STATUS_QUARANTINED):
            state = "quarantined"
        elif counts.get(STATUS_FAILED):
            state = "failed"
        elif counts.get(STATUS_DONE, 0) >= total_steps and total_steps:
            state = "done"
        elif counts.get(STATUS_DONE):
            state = "running"
        else:
            state = "pending"
        return CampaignStatus(
            job_id=self.job_id,
            state=state,
            counts=counts,
            events=tuple(events),
        )

    # -- artifacts ------------------------------------------------------
    def results_path(self) -> Path | None:
        """The grid aggregate path (``None`` for non-grid campaigns)."""
        if self.kind != "grid":
            return None
        return (
            self.directory / "results" / ResultsStore.AGGREGATE_NAME
        )

    def results(self) -> dict:
        """The campaign's primary machine-readable result.

        Grid campaigns return the parsed ``results.json`` aggregate;
        every other kind returns ``{"report": <text>}``.  Raises
        :class:`~repro.errors.NotFoundError` before the campaign has
        produced the artifact.
        """
        path = self.results_path()
        if path is not None:
            if not path.exists():
                raise NotFoundError(
                    f"no aggregated results yet at {path}"
                )
            return json.loads(path.read_text())
        if self.kind == "figure":
            return {
                name: self.figure(name) for name in self.figure_names()
            }
        return {"report": self.report()}

    def report(self) -> str:
        """The stored report payload of the campaign's report step."""
        step_id = "report"
        path = self.context.output_path(step_id)
        if not path.exists():
            raise NotFoundError(
                f"no stored report yet for campaign {self.job_id}"
            )
        return path.read_text()

    def figure_names(self) -> list[str]:
        """Figure/table artifacts this campaign renders (may be empty)."""
        names = []
        for step in self.campaign.steps:
            if step.step_id.startswith("figure:"):
                names.append(step.step_id.split(":", 1)[1])
        return names

    def figure(self, name: str) -> str:
        """One rendered figure/table payload by name."""
        if name not in self.figure_names():
            raise NotFoundError(
                f"campaign {self.job_id} renders no figure {name!r}; "
                f"available: {', '.join(self.figure_names()) or 'none'}"
            )
        path = self.context.output_path(f"figure:{name}")
        if not path.exists():
            raise NotFoundError(
                f"figure {name!r} not rendered yet for {self.job_id}"
            )
        return path.read_text()


# -- per-kind builders ---------------------------------------------------
def _invalidate_stale_train_steps(
    campaign: Campaign,
    context: CampaignContext,
    registry: ModelCheckpointRegistry,
    step_prefix: str = "train@",
    noun: str = "step",
) -> None:
    """Re-open ``done`` train steps whose checkpoint has vanished.

    The campaign manifest can outlive the model registry (a wiped or
    different model dir); trusting it blindly would replay the stored
    report and claim "100% checkpoint hits" over models that no longer
    exist.  Any completed ``train@`` step whose recorded key is absent
    from the registry — or whose payload is unreadable — is marked
    ``pending`` again (along with the ``report`` step) so the run
    re-resolves it.
    """
    stale = []
    for step in campaign.steps:
        if not step.step_id.startswith(step_prefix):
            continue
        if campaign.manifest.status(step.step_id) != STATUS_DONE:
            continue
        path = context.output_path(step.step_id)
        if not path.exists():
            # The runner will re-execute the step anyway (its skip
            # condition requires the output file), but the report step
            # must be re-opened too — fall through to the stale list.
            stale.append(step.step_id)
            continue
        try:
            key = json.loads(path.read_text())["key"]
        except (json.JSONDecodeError, KeyError, TypeError):
            stale.append(step.step_id)
            continue
        if not registry.has_key(key):
            stale.append(step.step_id)
    if stale:
        for step_id in stale:
            campaign.manifest.mark(step_id, STATUS_PENDING)
        campaign.manifest.mark("report", STATUS_PENDING)
    if stale and context.verbose:
        log.info(
            f"{len(stale)} completed {noun}(s) lost their checkpoint; "
            "re-resolving"
        )


def _invalidate_stale_grid_steps(
    campaign: Campaign,
    context: CampaignContext,
    registry: ModelCheckpointRegistry,
) -> None:
    """Re-open ``done`` grid points whose VVD checkpoint has vanished.

    The grid analogue of :func:`_invalidate_stale_train_steps`: any
    completed ``point@`` step whose recorded model key is absent from
    the registry — or whose payload is unreadable — is marked
    ``pending`` again (along with the ``report`` step) so the run
    re-resolves it instead of replaying a stale "100% checkpoint hits"
    claim.
    """
    stale = []
    for step in campaign.steps:
        if not step.step_id.startswith("point@"):
            continue
        if campaign.manifest.status(step.step_id) != STATUS_DONE:
            continue
        path = context.output_path(step.step_id)
        if not path.exists():
            stale.append(step.step_id)
            continue
        try:
            record = json.loads(path.read_text())["record"]
            key = record.get("vvd", {}).get("key")
        except (json.JSONDecodeError, KeyError, TypeError):
            stale.append(step.step_id)
            continue
        if key is not None and not registry.has_key(key):
            stale.append(step.step_id)
    if stale:
        for step_id in stale:
            campaign.manifest.mark(step_id, STATUS_PENDING)
        campaign.manifest.mark("report", STATUS_PENDING)
    if stale and context.verbose:
        log.info(
            f"{len(stale)} completed point(s) lost their checkpoint; "
            "re-resolving"
        )


def _summarize_sweep(handle, result, plan, options) -> list[str]:
    """The run summary of a sweep campaign (CLI-identical)."""
    lines = [
        handle.context.read_output("report"),
        _steps_line(result, handle.directory),
    ]
    lines += self_healing_lines(result, plan)
    lines.append(f"cache: {handle.cache.stats.summary()}")
    if handle.cache.stats.sets_generated == 0:
        lines.append(
            "no measurement sets regenerated (100% cache hits)"
        )
    return lines


def _build_sweep(spec: SweepJob, env: "_Env") -> CampaignHandle:
    scenario = get_scenario(spec.scenario)
    config = scenario.resolve()
    snrs = tuple(spec.snrs) if spec.snrs else scenario.snr_grid_db
    cache = env.cache()
    options = {
        "snrs_db": sorted(float(s) for s in snrs),
        "num_sets": spec.num_sets,
        "suite": spec.suite,
    }
    directory = campaign_dir(cache, "sweep", scenario.name, options)
    campaign = Campaign(
        f"sweep[{scenario.name}]",
        sweep_steps(
            config, snrs, num_sets=spec.num_sets, suite=spec.suite
        ),
        directory,
    )
    context = CampaignContext(
        config,
        cache,
        directory,
        workers=env.workers,
        verbose=env.verbose,
    )
    return CampaignHandle(
        spec,
        campaign=campaign,
        context=context,
        cache=cache,
        registry=None,
        supports_robustness=True,
        supports_jobs=False,
        stale_hook=None,
        summarize=_summarize_sweep,
    )


def _summarize_train(handle, result, plan, options) -> list[str]:
    """The run summary of a train campaign (CLI-identical)."""
    lines = [
        handle.context.read_output("report"),
        _steps_line(result, handle.directory),
    ]
    lines += self_healing_lines(result, plan)
    lines.append(f"cache: {handle.cache.stats.summary()}")
    lines.append(f"models: {handle.registry.stats.summary()}")
    if handle.registry.stats.models_trained == 0:
        lines.append("no models retrained (100% checkpoint hits)")
    return lines


def _build_train(spec: TrainJob, env: "_Env") -> CampaignHandle:
    scenario = get_scenario(spec.scenario)
    config = scenario.resolve()
    cache = env.cache()
    registry = env.registry()
    horizons = sorted(set(spec.horizons))
    options = {
        "combinations": spec.combinations,
        "horizons": horizons,
        "seed": spec.seed,
        "model_salt": MODEL_CACHE_SALT,
    }
    directory = campaign_dir(cache, "train", scenario.name, options)
    campaign = Campaign(
        f"train[{scenario.name}]",
        train_steps(
            config,
            num_combinations=spec.combinations,
            horizons=horizons,
            seed=spec.seed,
        ),
        directory,
    )
    context = CampaignContext(
        config,
        cache,
        directory,
        workers=env.workers,
        verbose=env.verbose,
        checkpoints=registry,
    )
    return CampaignHandle(
        spec,
        campaign=campaign,
        context=context,
        cache=cache,
        registry=registry,
        supports_robustness=True,
        supports_jobs=False,
        stale_hook=lambda: _invalidate_stale_train_steps(
            campaign, context, registry
        ),
        summarize=_summarize_train,
    )


def _summarize_figure(handle, result, plan, options) -> list[str]:
    """The run summary of a figure campaign (CLI-identical)."""
    lines = []
    for name in handle.context.options["figures"]:
        lines.append(handle.context.read_output(f"figure:{name}"))
        lines.append("")
    lines.append(
        f"steps: {len(result.executed)} executed, "
        f"{len(result.skipped)} resumed; "
        f"cache: {handle.cache.stats.summary()}"
    )
    return lines


def _build_figure(spec: FigureJob, env: "_Env") -> CampaignHandle:
    scenario = get_scenario(spec.scenario)
    config = scenario.resolve()
    names: list[str] = []
    for name in spec.names:
        if name == "all":
            names.extend(f for f in FIGURE_NAMES if f not in names)
        elif name in FIGURE_NAMES:
            if name not in names:
                names.append(name)
        else:
            raise NotFoundError(
                f"unknown figure {name!r}; known figures: "
                f"{', '.join(FIGURE_NAMES)} (or 'all')"
            )
    cache = env.cache()
    options = {
        "figures": names,
        "combinations": spec.combinations,
        "vvd_seed": spec.seed,
    }
    directory = campaign_dir(cache, "figure", scenario.name, options)
    campaign = Campaign(
        f"figure[{scenario.name}]",
        figure_steps(config, names),
        directory,
    )
    context = CampaignContext(
        config,
        cache,
        directory,
        workers=env.workers,
        verbose=env.verbose,
        options={
            "figures": names,
            "combinations": spec.combinations,
            "vvd_seed": spec.seed,
        },
        checkpoints=env.registry(),
    )
    return CampaignHandle(
        spec,
        campaign=campaign,
        context=context,
        cache=cache,
        registry=context.checkpoints,
        supports_robustness=False,
        supports_jobs=False,
        stale_hook=None,
        summarize=_summarize_figure,
    )


def _summarize_stream(handle, result, plan, options) -> list[str]:
    """The run summary of a stream campaign (CLI-identical)."""
    spec = handle.spec
    meta = handle.context.options
    lines = [handle.context.read_output("report")]
    # Non-default traffic/QoS append the modeled per-class SLA summary
    # at the replayed link count (pure queueing simulation, in-process,
    # deterministic — see the capacity kind for the full sweep).
    traffic = handle._stream_traffic
    qos = handle._stream_qos
    if traffic != "periodic" or qos != "uniform":
        from ..stream.capacity import simulate_capacity

        modeled = simulate_capacity(
            meta["links"], traffic=traffic, qos=qos, seed=spec.seed
        )
        lines.append("")
        lines.append(modeled.sla_summary())
    service = handle.context.shared.get(
        f"stream-service:{spec.horizon}:{spec.seed}"
    )
    # Under jobs > 1 the policy simulations serve their predictions in
    # pool workers, so the parent service's counters stay zero — print
    # the wall-clock stats only when this process served.
    if service is not None and service.stats.predictions > 0:
        lines.append(f"\nservice: {service.stats.summary()}")
    lines.append(_steps_line(result, handle.directory))
    lines += self_healing_lines(result, plan)
    lines.append(f"cache: {handle.cache.stats.summary()}")
    needs_service = meta["model_salt"] is not None
    if needs_service:
        lines.append(f"models: {handle.registry.stats.summary()}")
    # Under jobs > 1 the stream@<policy> steps run in pool workers
    # whose private cache/registry instances are invisible to the
    # parent's counters, so a worker that (pathologically — e.g. after
    # a mid-campaign `repro cache clear`) regenerated data would not
    # show up here.  Claim the replay-purity sentinels only when no
    # simulation step executed out of process; repeat runs execute
    # nothing and keep printing them.
    workers_simulated = options.jobs > 1 and any(
        step_id.startswith("stream@") for step_id in result.executed
    )
    if handle.cache.stats.sets_generated == 0 and not workers_simulated:
        lines.append(
            "no measurement sets regenerated (100% cache hits)"
        )
    if (
        needs_service
        and handle.registry.stats.models_trained == 0
        and not workers_simulated
    ):
        lines.append("no models retrained (100% checkpoint hits)")
    return lines


def _build_stream(spec: StreamJob, env: "_Env") -> CampaignHandle:
    from ..stream.policy import build_policy
    from ..stream.traffic import get_qos_mix, validate_traffic

    scenario = get_scenario(spec.scenario)
    config = scenario.resolve()
    policies = list(dict.fromkeys(spec.policies))
    links = spec.links if spec.links is not None else scenario.stream_links
    # Heterogeneous-traffic options resolve spec > scenario and are
    # validated before any dataset generation or training runs.  They
    # drive only the modeled SLA appendix printed after the replay
    # report — never the replay steps themselves — so they are
    # deliberately NOT part of the campaign-directory hash: existing
    # stream campaign directories (and their byte-identical payloads)
    # stay untouched.
    traffic = validate_traffic(
        spec.traffic if spec.traffic is not None else scenario.traffic
    )
    qos = spec.qos if spec.qos is not None else scenario.qos
    get_qos_mix(qos)
    # Probe-build every requested policy with its actual arguments so a
    # bad defer threshold fails here, before any dataset generation or
    # model training runs.
    needs_service = any(
        build_policy(
            name,
            **(
                {"defer_threshold": spec.defer_threshold}
                if name == "proactive"
                and spec.defer_threshold is not None
                else {}
            ),
        ).uses_predictions
        for name in policies
    )
    cache = env.cache()
    registry = env.registry()
    options = {
        "links": links,
        "slots": spec.slots,
        "policies": policies,
        "deadline_slots": spec.deadline_slots,
        "horizon": spec.horizon,
        "seed": spec.seed,
        "defer_threshold": spec.defer_threshold,
        "round_deadline_s": spec.round_deadline,
        "model_salt": MODEL_CACHE_SALT if needs_service else None,
    }
    directory = campaign_dir(cache, "stream", scenario.name, options)
    campaign = Campaign(
        f"stream[{scenario.name}]",
        stream_steps(
            config,
            links,
            policies,
            slots=spec.slots,
            deadline_slots=spec.deadline_slots,
            horizon=spec.horizon,
            seed=spec.seed,
            defer_threshold=spec.defer_threshold,
            round_deadline_s=spec.round_deadline,
        ),
        directory,
    )
    context = CampaignContext(
        config,
        cache,
        directory,
        workers=env.workers,
        verbose=env.verbose,
        options=options,
        checkpoints=registry,
    )
    handle = CampaignHandle(
        spec,
        campaign=campaign,
        context=context,
        cache=cache,
        registry=registry,
        supports_robustness=True,
        supports_jobs=True,
        stale_hook=(
            (
                lambda: _invalidate_stale_train_steps(
                    campaign, context, registry
                )
            )
            if needs_service
            else None
        ),
        summarize=_summarize_stream,
    )
    handle._stream_traffic = traffic
    handle._stream_qos = qos
    return handle


def _summarize_capacity(handle, result, plan, options) -> list[str]:
    """The run summary of a capacity campaign (CLI-identical)."""
    lines = [
        handle.context.read_output("report"),
        _steps_line(result, handle.directory),
    ]
    lines += self_healing_lines(result, plan)
    link_counts = handle.context.options["links"]
    lines.append(
        f"capacity: {len(link_counts)} modeled point(s) over "
        f"{options.jobs} job(s); no datasets or checkpoints touched"
    )
    return lines


def _build_capacity(spec: CapacityJob, env: "_Env") -> CampaignHandle:
    from ..stream.traffic import get_qos_mix, validate_traffic

    traffic = validate_traffic(spec.traffic)
    get_qos_mix(spec.qos)
    link_counts = sorted({int(n) for n in spec.links})
    cache = env.cache()
    options = {
        "links": link_counts,
        "duration_s": spec.duration,
        "traffic": traffic,
        "qos": spec.qos,
        "seed": spec.seed,
        "service_pps": spec.service_pps,
        "admission_limit": spec.admission_limit,
    }
    directory = campaign_dir(cache, "capacity", spec.qos, options)
    campaign = Campaign(
        f"capacity[{traffic}/{spec.qos}]",
        capacity_steps(
            link_counts,
            duration_s=spec.duration,
            traffic=traffic,
            qos=spec.qos,
            seed=spec.seed,
            service_pps=spec.service_pps,
            admission_limit=spec.admission_limit,
        ),
        directory,
    )
    # Capacity points are pure queueing simulations — the context's
    # scenario config is never consulted, but CampaignContext wants
    # one; the stream smoke preset resolves without touching the cache.
    context = CampaignContext(
        get_scenario("stream-smoke").resolve(),
        cache,
        directory,
        workers=env.workers,
        verbose=env.verbose,
        options=options,
    )
    return CampaignHandle(
        spec,
        campaign=campaign,
        context=context,
        cache=cache,
        registry=None,
        supports_robustness=True,
        supports_jobs=True,
        stale_hook=None,
        summarize=_summarize_capacity,
    )


def _summarize_grid(handle, result, plan, options) -> list[str]:
    """The run summary of a grid campaign (CLI-identical)."""
    lines = [handle.context.read_output("report")]
    sets_generated = 0
    models_trained = 0
    for step_id in result.executed:
        if not step_id.startswith("point@"):
            continue
        provenance = json.loads(
            handle.context.read_output(step_id)
        ).get("provenance", {})
        sets_generated += provenance.get("sets_generated", 0)
        models_trained += provenance.get("models_trained", 0)
    lines.append(_steps_line(result, handle.directory))
    lines += self_healing_lines(result, plan)
    num_points = handle._grid_num_points
    lines.append(
        f"grid: {num_points} derived scenario(s) over {options.jobs} "
        f"job(s); aggregate at "
        f"{handle.directory / 'results' / 'results.json'}"
    )
    lines.append(
        f"cache: {sets_generated} set(s) generated, "
        f"{models_trained} model(s) trained (summed over executed steps)"
    )
    if sets_generated == 0:
        lines.append(
            "no measurement sets regenerated (100% cache hits)"
        )
    needs_models = handle.context.options["model_salt"] is not None
    if needs_models and models_trained == 0:
        lines.append("no models retrained (100% checkpoint hits)")
    return lines


def _build_grid(spec: GridJob, env: "_Env") -> CampaignHandle:
    grid_spec = get_grid(spec.grid)
    points = grid_spec.expand()
    needs_models = spec.vvd or "horizon" in grid_spec.axis_names
    cache = env.cache()
    registry = env.registry() if needs_models else None
    options = {
        "axes": [
            [axis, [format_axis_value(v) for v in values]]
            for axis, values in grid_spec.axes
        ],
        "base": grid_spec.base,
        "suite": spec.suite,
        "vvd": bool(spec.vvd),
        "horizon": spec.horizon if spec.vvd else None,
        "vvd_seed": spec.seed,
        "model_salt": MODEL_CACHE_SALT if needs_models else None,
    }
    directory = campaign_dir(cache, "grid", grid_spec.name, options)
    campaign = Campaign(
        f"grid[{grid_spec.name}]",
        grid_steps(
            grid_spec,
            points,
            suite=spec.suite,
            vvd=spec.vvd,
            horizon=spec.horizon,
            vvd_seed=spec.seed,
        ),
        directory,
    )
    context = CampaignContext(
        get_scenario(grid_spec.base).resolve(),
        cache,
        directory,
        workers=env.workers,
        verbose=env.verbose,
        options=options,
        checkpoints=registry,
    )
    handle = CampaignHandle(
        spec,
        campaign=campaign,
        context=context,
        cache=cache,
        registry=registry,
        supports_robustness=True,
        supports_jobs=True,
        stale_hook=(
            (
                lambda: _invalidate_stale_grid_steps(
                    campaign, context, registry
                )
            )
            if needs_models
            else None
        ),
        summarize=_summarize_grid,
    )
    handle._grid_num_points = len(points)
    return handle


@dataclass(frozen=True)
class _Env:
    """Host-side resources a handle is prepared against."""

    cache_dir: str | None = None
    model_dir: str | None = None
    workers: int | None = None
    verbose: bool = False

    def cache(self) -> DatasetCache:
        """The dataset cache rooted at this environment's cache dir."""
        return DatasetCache(self.cache_dir)

    def registry(self) -> ModelCheckpointRegistry:
        """The checkpoint registry rooted at this env's model dir."""
        return ModelCheckpointRegistry(self.model_dir)


_BUILDERS: dict[str, Callable] = {
    "sweep": _build_sweep,
    "train": _build_train,
    "figure": _build_figure,
    "stream": _build_stream,
    "capacity": _build_capacity,
    "grid": _build_grid,
}


def prepare(
    spec: JobSpec,
    *,
    cache_dir: str | None = None,
    model_dir: str | None = None,
    workers: int | None = None,
    verbose: bool = False,
) -> CampaignHandle:
    """Resolve a job spec into a runnable :class:`CampaignHandle`.

    Validates names and option values eagerly (unknown scenarios,
    grids or figures raise :class:`~repro.errors.NotFoundError`) but
    executes nothing: the campaign directory is computed, not created.
    """
    builder = _BUILDERS.get(spec.kind)
    if builder is None:
        raise ConfigurationError(
            f"unknown job kind {spec.kind!r}; accepted: "
            f"{', '.join(sorted(_BUILDERS))}"
        )
    env = _Env(
        cache_dir=cache_dir,
        model_dir=model_dir,
        workers=workers,
        verbose=verbose,
    )
    return builder(spec, env)


def run_campaign(
    spec: JobSpec,
    *,
    cache_dir: str | None = None,
    model_dir: str | None = None,
    workers: int | None = None,
    verbose: bool = False,
    options: RunOptions | None = None,
) -> CampaignOutcome:
    """Prepare and run a campaign in one call (blocking)."""
    handle = prepare(
        spec,
        cache_dir=cache_dir,
        model_dir=model_dir,
        workers=workers,
        verbose=verbose,
    )
    return handle.run(options)


def submit_grid(
    spec: GridJob,
    *,
    cache_dir: str | None = None,
    model_dir: str | None = None,
    workers: int | None = None,
    verbose: bool = False,
) -> CampaignHandle:
    """Prepare a grid campaign (convenience alias of :func:`prepare`)."""
    return prepare(
        spec,
        cache_dir=cache_dir,
        model_dir=model_dir,
        workers=workers,
        verbose=verbose,
    )
