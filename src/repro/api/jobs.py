"""Typed job specifications: the nouns of the programmatic surface.

One frozen dataclass per campaign kind (sweep/train/figure/stream/
capacity/grid).  A job spec is pure data — scenario names, grids,
seeds — and is the same object whether it arrives from an argparse
namespace, a notebook or a ``POST /v1/jobs`` body; the facade
(:func:`repro.api.prepare`) turns it into a runnable campaign.

Every spec round-trips through JSON (:meth:`to_dict` /
:func:`job_from_dict`), and the defaults are pinned to the CLI parser
defaults by a drift test — the table in
:mod:`repro.campaign.options` plays the same role for run options.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import ClassVar

from ..errors import ConfigurationError

#: kind name -> spec class; populated by :func:`_register`.
JOB_KINDS: dict[str, type] = {}


def _register(cls):
    """Class decorator adding a spec to the :data:`JOB_KINDS` registry."""
    JOB_KINDS[cls.kind] = cls
    return cls


def _canonical(data: dict) -> str:
    """Canonical JSON: sorted keys, no whitespace — diff/hash friendly."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class JobSpec:
    """Base class of all job specs: JSON round-trip plumbing."""

    kind: ClassVar[str] = ""

    def to_dict(self) -> dict:
        """Plain-data form, including the ``kind`` discriminator."""
        data = asdict(self)
        data["kind"] = self.kind
        return data

    def to_json(self) -> str:
        """Canonical JSON form (sorted keys, compact separators)."""
        return _canonical(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        """Build a spec from plain data, rejecting unknown fields."""
        payload = dict(data)
        payload.pop("kind", None)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown {cls.kind} job field(s) "
                f"{', '.join(unknown)}; accepted: {', '.join(sorted(known))}"
            )
        try:
            spec = cls(**payload)
        except TypeError as exc:
            raise ConfigurationError(
                f"invalid {cls.kind} job spec: {exc}"
            ) from None
        return spec


def _as_tuple(value, caster, name: str):
    """Normalize a JSON list/tuple field to a typed tuple."""
    if value is None:
        return None
    if not isinstance(value, (list, tuple)):
        raise ConfigurationError(
            f"job field {name!r} expects a list, got "
            f"{type(value).__name__}"
        )
    try:
        return tuple(caster(v) for v in value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"job field {name!r} expects a list of "
            f"{caster.__name__}, got {value!r}"
        ) from None


@_register
@dataclass(frozen=True)
class SweepJob(JobSpec):
    """The resumable SNR-sweep campaign of one scenario."""

    kind: ClassVar[str] = "sweep"
    scenario: str = "reduced"
    snrs: tuple | None = None
    num_sets: int | None = None
    suite: str = "baseline"

    def __post_init__(self):
        object.__setattr__(
            self, "snrs", _as_tuple(self.snrs, float, "snrs")
        )


@_register
@dataclass(frozen=True)
class TrainJob(JobSpec):
    """Train the Table 2 VVD variants through the checkpoint registry."""

    kind: ClassVar[str] = "train"
    scenario: str = "reduced"
    combinations: int | None = None
    horizons: tuple = (0,)
    seed: int = 7

    def __post_init__(self):
        object.__setattr__(
            self, "horizons", _as_tuple(self.horizons, int, "horizons")
        )


@_register
@dataclass(frozen=True)
class FigureJob(JobSpec):
    """Render paper tables/figures from the cached evaluation bundle."""

    kind: ClassVar[str] = "figure"
    names: tuple = ()
    scenario: str = "reduced"
    combinations: int = 3
    seed: int = 7

    def __post_init__(self):
        object.__setattr__(
            self, "names", _as_tuple(self.names, str, "names") or ()
        )
        if not self.names:
            raise ConfigurationError(
                "figure job needs at least one figure name "
                "('all' = the full report)"
            )


@_register
@dataclass(frozen=True)
class StreamJob(JobSpec):
    """Closed-loop link adaptation over N concurrent links."""

    kind: ClassVar[str] = "stream"
    scenario: str = "stream-smoke"
    links: int | None = None
    slots: int | None = None
    policies: tuple = ("proactive", "reactive")
    deadline_slots: int = 3
    horizon: int = 0
    seed: int = 7
    defer_threshold: float | None = None
    round_deadline: float | None = None
    traffic: str | None = None
    qos: str | None = None

    def __post_init__(self):
        object.__setattr__(
            self, "policies", _as_tuple(self.policies, str, "policies")
        )
        if not self.policies:
            raise ConfigurationError(
                "stream job needs at least one policy"
            )


@_register
@dataclass(frozen=True)
class CapacityJob(JobSpec):
    """Modeled serving-fleet sweep over link counts (pure queueing)."""

    kind: ClassVar[str] = "capacity"
    links: tuple = (16, 32, 64, 96, 128)
    duration: float = 30.0
    traffic: str = "mixed"
    qos: str = "triple"
    seed: int = 7
    service_pps: float = 900.0
    admission_limit: int = 512

    def __post_init__(self):
        object.__setattr__(
            self, "links", _as_tuple(self.links, int, "links")
        )
        if not self.links:
            raise ConfigurationError(
                "capacity job needs at least one link count"
            )


@_register
@dataclass(frozen=True)
class GridJob(JobSpec):
    """Expand a parametric grid and evaluate every derived scenario."""

    kind: ClassVar[str] = "grid"
    grid: str = "smoke-grid"
    suite: str = "quick"
    vvd: bool = False
    horizon: int = 0
    seed: int = 7


def job_from_dict(data: dict) -> JobSpec:
    """Dispatch plain data to the right spec class via its ``kind``."""
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"job spec must be an object, got {type(data).__name__}"
        )
    kind = data.get("kind")
    if kind not in JOB_KINDS:
        raise ConfigurationError(
            f"unknown job kind {kind!r}; accepted: "
            f"{', '.join(sorted(JOB_KINDS))}"
        )
    return JOB_KINDS[kind].from_dict(data)


@dataclass(frozen=True)
class StepEvent:
    """One manifest transition: the unit of campaign progress."""

    step: str
    status: str
    detail: str = ""
    updated: float = 0.0
    attempts: int = 0

    def to_dict(self) -> dict:
        """Plain-data form of the event."""
        return asdict(self)

    def to_json(self) -> str:
        """Canonical JSON form of the event."""
        return _canonical(self.to_dict())


@dataclass(frozen=True)
class CampaignStatus:
    """Point-in-time view of one campaign's manifest."""

    #: Stable campaign id (the campaign directory basename).
    job_id: str
    #: Derived state: pending/running/done/failed/quarantined.
    state: str
    #: status -> count histogram over the manifest's steps.
    counts: dict = field(default_factory=dict)
    #: Every recorded step transition, sorted by update time.
    events: tuple = ()

    def to_dict(self) -> dict:
        """Plain-data form of the status snapshot."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "counts": dict(self.counts),
            "events": [event.to_dict() for event in self.events],
        }

    def to_json(self) -> str:
        """Canonical JSON form of the status snapshot."""
        return _canonical(self.to_dict())


@dataclass(frozen=True)
class CampaignOutcome:
    """The result of one completed :meth:`CampaignHandle.run`."""

    #: Stable campaign id (the campaign directory basename).
    job_id: str
    #: Step ids executed by this run.
    executed: tuple
    #: Step ids resumed from the manifest.
    skipped: tuple
    #: Step ids quarantined by this run.
    quarantined: tuple
    #: Total step attempts retried by this run.
    retried: int
    #: Process exit code from the outcome table (0 or 3).
    exit_code: int
    #: The run's human-readable summary — byte-identical to the text
    #: the equivalent CLI invocation prints.
    text: str

    def to_dict(self) -> dict:
        """Plain-data form of the outcome."""
        return {
            "job_id": self.job_id,
            "executed": list(self.executed),
            "skipped": list(self.skipped),
            "quarantined": list(self.quarantined),
            "retried": self.retried,
            "exit_code": self.exit_code,
            "text": self.text,
        }

    def to_json(self) -> str:
        """Canonical JSON form of the outcome."""
        return _canonical(self.to_dict())
