"""``repro.api`` — the supported programmatic surface of the repo.

Everything the CLI can do, as typed calls: build a
:class:`~repro.api.jobs.JobSpec` (one dataclass per campaign kind),
:func:`~repro.api.facade.prepare` it into a
:class:`~repro.api.facade.CampaignHandle`, then ``run()`` it (blocking)
or poll ``status()``/``events()``/``results()`` from any process
sharing the cache root.  The ``repro`` CLI subcommands and the
``repro serve`` REST handlers are both thin shells over this module —
third-party code gets the exact same entry point they use.

Quickstart::

    from repro.api import GridJob, RunOptions, prepare

    handle = prepare(GridJob(grid="smoke-grid"), cache_dir=".cache")
    outcome = handle.run(RunOptions(jobs=2))
    print(outcome.text)           # the CLI summary, byte-identical
    print(handle.results())       # the parsed results.json aggregate

Exit codes and HTTP statuses come from one table in
:mod:`repro.api.errors`; job option validation shares its table with
the argparse parsers (:mod:`repro.campaign.options`), so the CLI, the
API and the service can never drift.
"""

from __future__ import annotations

from .errors import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_QUARANTINED,
    OUTCOME_TABLE,
    classify_exception,
    exit_code_for,
    http_status_for,
)
from .facade import (
    CampaignHandle,
    RunOptions,
    campaign_dir,
    prepare,
    run_campaign,
    self_healing_lines,
    submit_grid,
)
from .jobs import (
    JOB_KINDS,
    CampaignOutcome,
    CampaignStatus,
    CapacityJob,
    FigureJob,
    GridJob,
    JobSpec,
    StepEvent,
    StreamJob,
    SweepJob,
    TrainJob,
    job_from_dict,
)

__all__ = [
    # job specs
    "JobSpec",
    "SweepJob",
    "TrainJob",
    "FigureJob",
    "StreamJob",
    "CapacityJob",
    "GridJob",
    "JOB_KINDS",
    "job_from_dict",
    # status / results
    "StepEvent",
    "CampaignStatus",
    "CampaignOutcome",
    # facade
    "prepare",
    "run_campaign",
    "submit_grid",
    "CampaignHandle",
    "RunOptions",
    "campaign_dir",
    "self_healing_lines",
    # exit-code / HTTP table
    "OUTCOME_TABLE",
    "classify_exception",
    "exit_code_for",
    "http_status_for",
    "EXIT_OK",
    "EXIT_ERROR",
    "EXIT_QUARANTINED",
]
