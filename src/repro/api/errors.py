"""The one exit-code / HTTP-status table of the ``repro`` surface.

CLI subcommands and the ``repro serve`` REST handlers must agree on
what each failure class means.  This module pins that contract in a
single table: every outcome code maps to exactly one process exit code
and one HTTP status, and :func:`classify_exception` sorts any raised
exception into the table.  The CLI asks :func:`exit_code_for`, the
daemon asks :func:`http_status_for`; neither hard-codes a number.

Outcome codes:

========== ===== ===== =================================================
code       exit  HTTP  meaning
========== ===== ===== =================================================
ok           0    200  success
invalid      2    400  malformed request / bad option value
not_found    2    404  unknown scenario, grid, job or figure
conflict     2    409  operation clashes with current resource state
quarantined  3    409  campaign finished but quarantined steps
unavailable  4    503  service shutting down / transiently overloaded
internal     1    500  unexpected non-repro failure
========== ===== ===== =================================================
"""

from __future__ import annotations

from ..errors import (  # noqa: F401 — re-exported for api users
    ConfigurationError,
    ConflictError,
    NotFoundError,
    ReproError,
    UnavailableError,
)

#: Success.
OK = "ok"
#: Malformed request or bad option value.
INVALID = "invalid"
#: Unknown scenario/grid/job/figure name.
NOT_FOUND = "not_found"
#: Operation conflicts with the resource's current state.
CONFLICT = "conflict"
#: The campaign completed with quarantined steps.
QUARANTINED = "quarantined"
#: The service cannot take the request right now.
UNAVAILABLE = "unavailable"
#: Unexpected failure outside the repro error hierarchy.
INTERNAL = "internal"

#: code -> (process exit code, HTTP status).  The single source of
#: truth; the tables below are derived views.
OUTCOME_TABLE: dict[str, tuple[int, int]] = {
    OK: (0, 200),
    INVALID: (2, 400),
    NOT_FOUND: (2, 404),
    CONFLICT: (2, 409),
    QUARANTINED: (3, 409),
    UNAVAILABLE: (4, 503),
    INTERNAL: (1, 500),
}

#: Process exit code of a successful run.
EXIT_OK = OUTCOME_TABLE[OK][0]
#: Process exit code of validation/lookup failures (historical 2).
EXIT_ERROR = OUTCOME_TABLE[INVALID][0]
#: Process exit code of a run that quarantined steps (historical 3).
EXIT_QUARANTINED = OUTCOME_TABLE[QUARANTINED][0]


def exit_code_for(code: str) -> int:
    """Process exit code of one outcome code."""
    return OUTCOME_TABLE[code][0]


def http_status_for(code: str) -> int:
    """HTTP status of one outcome code."""
    return OUTCOME_TABLE[code][1]


def classify_exception(exc: BaseException) -> str:
    """Sort a raised exception into the outcome table.

    Order matters: :class:`~repro.errors.NotFoundError` subclasses
    :class:`~repro.errors.ConfigurationError` and must win over the
    generic ``invalid`` bucket, and :class:`~repro.errors
    .UnavailableError` must win over the plain transient/``invalid``
    classes it derives from.
    """
    if isinstance(exc, NotFoundError):
        return NOT_FOUND
    if isinstance(exc, UnavailableError):
        return UNAVAILABLE
    if isinstance(exc, ConflictError):
        return CONFLICT
    if isinstance(exc, ReproError):
        return INVALID
    return INTERNAL
