"""Train/validation/test set combinations (paper Table 2).

The paper evaluates every technique over 15 combinations, each holding
out one set for validation and one for testing, so that each measurement
take serves as a test set exactly once (cross-validation, Sec. 6).
:func:`paper_set_combinations` reproduces Table 2 verbatim;
:func:`rotating_set_combinations` generates the same structure for any
number of sets (used by the reduced/tiny presets).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DatasetError

#: (validation_set, test_set) pairs of Table 2, 1-based set numbering.
_PAPER_VAL_TEST: tuple[tuple[int, int], ...] = (
    (6, 8),
    (11, 15),
    (14, 9),
    (5, 2),
    (12, 4),
    (10, 1),
    (9, 6),
    (13, 3),
    (8, 5),
    (4, 7),
    (3, 10),
    (7, 11),
    (13, 12),
    (2, 13),
    (1, 14),
)


@dataclass(frozen=True)
class SetCombination:
    """One row of Table 2 (set numbers are 1-based, as in the paper)."""

    number: int
    training: tuple[int, ...]
    validation: int
    test: int

    def __post_init__(self) -> None:
        if self.validation in self.training or self.test in self.training:
            raise DatasetError(
                f"combination {self.number}: validation/test sets leak "
                f"into training"
            )
        if self.validation == self.test:
            raise DatasetError(
                f"combination {self.number}: validation == test"
            )

    def training_indices(self) -> list[int]:
        """0-based indices into a list of measurement sets."""
        return [s - 1 for s in self.training]

    @property
    def validation_index(self) -> int:
        return self.validation - 1

    @property
    def test_index(self) -> int:
        return self.test - 1


def _combination(number: int, val: int, test: int, num_sets: int) -> SetCombination:
    training = tuple(
        s for s in range(1, num_sets + 1) if s not in (val, test)
    )
    return SetCombination(
        number=number, training=training, validation=val, test=test
    )


def paper_set_combinations() -> list[SetCombination]:
    """The 15 combinations of Table 2 (15 measurement sets)."""
    return [
        _combination(i + 1, val, test, 15)
        for i, (val, test) in enumerate(_PAPER_VAL_TEST)
    ]


def rotating_set_combinations(num_sets: int) -> list[SetCombination]:
    """Table 2-style combinations for an arbitrary number of sets.

    Combination ``k`` (1-based) tests on set ``k`` and validates on set
    ``k % num_sets + 1``; every set is a test set exactly once, mirroring
    the paper's cross-validation structure.
    """
    if num_sets < 3:
        raise DatasetError(
            f"need >= 3 sets for train/val/test splits, got {num_sets}"
        )
    if num_sets == 15:
        return paper_set_combinations()
    combos = []
    for k in range(1, num_sets + 1):
        test = k
        val = k % num_sets + 1
        combos.append(_combination(k, val, test, num_sets))
    return combos
