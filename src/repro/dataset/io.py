"""Persistence of measurement sets (npz).

The paper publishes its trace; this module provides the equivalent
serialization for the simulated campaign so expensive datasets can be
generated once and reloaded by examples/benchmarks.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import DatasetError
from .trace import MeasurementSet, PacketRecord

_SCALAR_FIELDS = (
    "sequence_number",
    "time_s",
    "frame_index",
    "phase_to_canonical",
    "preamble_detected",
    "preamble_metric",
    "phase_offset",
    "noise_seed",
    "noise_power",
    "los_blocked",
    "los_clearance_m",
    "received_power",
)
_VECTOR_FIELDS = (
    "h_true",
    "h_ls",
    "h_ls_canonical",
    "h_preamble",
    "h_preamble_canonical",
)


def save_measurement_set(measurement_set: MeasurementSet, path) -> None:
    """Serialize one measurement set to an ``.npz`` file."""
    measurement_set.validate()
    arrays: dict[str, np.ndarray] = {
        "set_index": np.asarray(measurement_set.index),
        "frames": measurement_set.frames,
        "frame_times": measurement_set.frame_times,
        "human_positions": measurement_set.human_positions,
        "human_xy": np.asarray(
            [p.human_xy for p in measurement_set.packets]
        ),
    }
    for field in _SCALAR_FIELDS:
        arrays[field] = np.asarray(
            [getattr(p, field) for p in measurement_set.packets]
        )
    for field in _VECTOR_FIELDS:
        arrays[field] = np.stack(
            [getattr(p, field) for p in measurement_set.packets]
        )
    np.savez_compressed(str(path), **arrays)


def load_measurement_set(path) -> MeasurementSet:
    """Inverse of :func:`save_measurement_set`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such measurement set file: {path}")
    data = np.load(str(path))
    num_packets = len(data["sequence_number"])
    packets = []
    for i in range(num_packets):
        packets.append(
            PacketRecord(
                sequence_number=int(data["sequence_number"][i]),
                time_s=float(data["time_s"][i]),
                human_xy=(
                    float(data["human_xy"][i][0]),
                    float(data["human_xy"][i][1]),
                ),
                frame_index=int(data["frame_index"][i]),
                h_true=data["h_true"][i],
                h_ls=data["h_ls"][i],
                h_ls_canonical=data["h_ls_canonical"][i],
                phase_to_canonical=float(data["phase_to_canonical"][i]),
                h_preamble=data["h_preamble"][i],
                h_preamble_canonical=data["h_preamble_canonical"][i],
                preamble_detected=bool(data["preamble_detected"][i]),
                preamble_metric=float(data["preamble_metric"][i]),
                phase_offset=float(data["phase_offset"][i]),
                noise_seed=int(data["noise_seed"][i]),
                noise_power=float(data["noise_power"][i]),
                los_blocked=bool(data["los_blocked"][i]),
                los_clearance_m=float(data["los_clearance_m"][i]),
                received_power=float(data["received_power"][i]),
            )
        )
    measurement_set = MeasurementSet(
        index=int(data["set_index"]),
        packets=packets,
        frames=data["frames"],
        frame_times=data["frame_times"],
        human_positions=data["human_positions"],
    )
    measurement_set.validate()
    return measurement_set


def save_dataset(sets: list[MeasurementSet], directory) -> list[Path]:
    """Save a whole campaign as ``set_<k>.npz`` files."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for measurement_set in sets:
        path = directory / f"set_{measurement_set.index:02d}.npz"
        save_measurement_set(measurement_set, path)
        paths.append(path)
    return paths


def load_dataset(directory) -> list[MeasurementSet]:
    """Load every ``set_*.npz`` in a directory, ordered by set index."""
    directory = Path(directory)
    files = sorted(directory.glob("set_*.npz"))
    if not files:
        raise DatasetError(f"no set_*.npz files in {directory}")
    sets = [load_measurement_set(path) for path in files]
    return sorted(sets, key=lambda s: s.index)
