"""Trace records of the simulated measurement campaign.

The paper's public dataset stores raw signal samples, 11-tap LS estimates
and camera images per packet.  We store everything *except* the raw
waveform — per-packet noise seeds and phase offsets allow bit-exact
re-synthesis on demand (see :func:`repro.dataset.generator.
synthesize_received`), keeping a 15-set campaign in tens of megabytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DatasetError


@dataclass
class PacketRecord:
    """Everything recorded about one transmitted packet."""

    sequence_number: int
    time_s: float
    human_xy: tuple[float, float]
    frame_index: int
    #: Physical channel used for synthesis (before crystal phase).
    h_true: np.ndarray
    #: Whole-packet LS estimate — the paper's perfect estimate (Sec. 5.2).
    h_ls: np.ndarray
    #: ``h_ls`` rotated onto the dataset phase reference (Sec. 3.1).
    h_ls_canonical: np.ndarray
    #: Eq. 8 angle such that ``h_ls_canonical = h_ls * exp(-1j * theta)``.
    phase_to_canonical: float
    #: LS estimate from the SHR region (preamble-based, Fig. 9).
    h_preamble: np.ndarray
    h_preamble_canonical: np.ndarray
    #: Outcome of the preamble detector on this packet.
    preamble_detected: bool
    preamble_metric: float
    #: Re-synthesis parameters (crystal phase + AWGN seed).
    phase_offset: float
    noise_seed: int
    noise_power: float
    #: Scenario annotations.
    los_blocked: bool
    los_clearance_m: float
    received_power: float


@dataclass
class MeasurementSet:
    """One measurement take: synchronized packets and depth frames."""

    index: int
    packets: list[PacketRecord] = field(default_factory=list)
    #: Cropped depth frames in metres, shape ``(frames, rows, cols)``.
    frames: np.ndarray = field(default_factory=lambda: np.empty((0, 0, 0)))
    frame_times: np.ndarray = field(default_factory=lambda: np.empty(0))
    #: Human xy at each frame time, shape ``(frames, 2)``.
    human_positions: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2))
    )

    @property
    def num_packets(self) -> int:
        return len(self.packets)

    @property
    def num_frames(self) -> int:
        return len(self.frames)

    def gt_estimates(self, canonical: bool = True) -> np.ndarray:
        """Stack the (canonical) perfect estimates: ``(packets, taps)``."""
        if not self.packets:
            raise DatasetError(f"measurement set {self.index} is empty")
        attribute = "h_ls_canonical" if canonical else "h_ls"
        return np.stack([getattr(p, attribute) for p in self.packets])

    def validate(self) -> None:
        """Consistency checks used by tests and loaders."""
        if not self.packets:
            raise DatasetError(f"measurement set {self.index} is empty")
        if self.frames.ndim != 3:
            raise DatasetError(
                f"frames must be (frames, rows, cols), got "
                f"{self.frames.shape}"
            )
        if len(self.frame_times) != len(self.frames):
            raise DatasetError("frame_times/frames length mismatch")
        if len(self.human_positions) != len(self.frames):
            raise DatasetError("human_positions/frames length mismatch")
        for record in self.packets:
            if not 0 <= record.frame_index < len(self.frames):
                raise DatasetError(
                    f"packet {record.sequence_number} references frame "
                    f"{record.frame_index} outside [0, {len(self.frames)})"
                )
