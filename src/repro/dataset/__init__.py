"""The simulated measurement campaign (paper Sec. 3 + Table 2).

- :mod:`repro.dataset.trace` — per-packet records and measurement sets.
- :mod:`repro.dataset.sets` — the paper's 15 train/validation/test set
  combinations (Table 2) plus a generator for arbitrary set counts.
- :mod:`repro.dataset.generator` — simulates measurement takes: a walking
  human, packets every 100 ms, camera frames every 33.3 ms, LED-blink
  synchronization, whole-packet/preamble LS estimates and detection flags.
"""

from .trace import MeasurementSet, PacketRecord
from .sets import (
    SetCombination,
    paper_set_combinations,
    rotating_set_combinations,
)
from .generator import (
    SimulationComponents,
    build_components,
    generate_dataset,
    generate_measurement_set,
    synthesize_received,
    synthesize_received_batch,
)

__all__ = [
    "MeasurementSet",
    "PacketRecord",
    "SetCombination",
    "paper_set_combinations",
    "rotating_set_combinations",
    "SimulationComponents",
    "build_components",
    "generate_dataset",
    "generate_measurement_set",
    "synthesize_received",
    "synthesize_received_batch",
]
