"""Simulation of the measurement campaign (paper Sec. 3).

Each measurement take ("set") walks one human through the room for
``packets_per_set * 100 ms``, transmitting a 802.15.4 packet every 100 ms
and capturing a depth frame every 33.3 ms.  Per packet the generator
records what the paper's pipeline extracts from the USRP trace: the
whole-packet LS estimate (perfect estimate), the SHR-region LS estimate,
the preamble-detection outcome, and the LED-matched camera frame.

Raw waveforms are not stored; :func:`synthesize_received` re-creates them
bit-exactly from the recorded noise seed and crystal phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..channel import IndoorEnvironment, RandomWaypointMobility
from ..channel.noise import awgn, noise_power_for_snr
from ..config import SimulationConfig
from ..dsp.phase import canonicalize_phase
from ..phy.receiver import Receiver
from ..phy.transmitter import Transmitter
from ..vision.camera import DepthCamera
from ..vision.preprocessing import preprocess_depth
from ..vision.synchronization import FrameTimeline, match_packet_to_frame
from .trace import MeasurementSet, PacketRecord

_REFERENCE_HUMAN_XY = (0.45, 0.45)


@dataclass
class SimulationComponents:
    """Shared heavyweight objects of one campaign."""

    config: SimulationConfig
    transmitter: Transmitter
    receiver: Receiver
    environment: IndoorEnvironment
    camera: DepthCamera
    phase_reference: np.ndarray


def build_components(config: SimulationConfig) -> SimulationComponents:
    """Construct transmitter, receiver, environment and camera once."""
    transmitter = Transmitter(config.phy)
    receiver = Receiver(config.phy, config.receiver, transmitter)
    environment = IndoorEnvironment(config.room, config.channel, config.phy)
    camera = DepthCamera(config.camera, config.room, config.channel)
    phase_reference = environment.cir(_REFERENCE_HUMAN_XY)
    return SimulationComponents(
        config=config,
        transmitter=transmitter,
        receiver=receiver,
        environment=environment,
        camera=camera,
        phase_reference=phase_reference,
    )


def synthesize_received(
    components: SimulationComponents,
    record: PacketRecord,
    waveform: np.ndarray | None = None,
) -> np.ndarray:
    """Re-create the received samples of a recorded packet bit-exactly."""
    if waveform is None:
        waveform = components.transmitter.transmit(
            record.sequence_number
        ).waveform
    clean = np.convolve(waveform, record.h_true)
    rotated = clean * np.exp(1j * record.phase_offset)
    noise_rng = np.random.default_rng(record.noise_seed)
    return rotated + awgn(noise_rng, len(rotated), record.noise_power)


def _sequence_number(set_index: int, packet_index: int) -> int:
    return (set_index * 1009 + packet_index) % 65536


def generate_measurement_set(
    components: SimulationComponents, set_index: int
) -> MeasurementSet:
    """Simulate one measurement take."""
    config = components.config
    interval = config.dataset.packet_interval_s
    num_packets = config.dataset.packets_per_set
    duration = (num_packets + 1) * interval + 0.5

    walker = RandomWaypointMobility(
        config.room,
        config.mobility,
        np.random.default_rng([config.seed, 101, set_index]),
        duration_s=duration,
    )
    packet_rng = np.random.default_rng([config.seed, 202, set_index])

    # -- camera frames ----------------------------------------------------
    frame_interval = config.camera.frame_interval_s
    num_frames = int(np.ceil(duration / frame_interval))
    timeline = FrameTimeline(
        num_frames=num_frames, frame_interval_s=frame_interval
    )
    frame_times = timeline.timestamps
    human_positions = np.stack(
        [walker.position_at(float(t)) for t in frame_times]
    )
    frames = np.stack(
        [
            preprocess_depth(
                components.camera.render(position), config.camera
            ).astype(np.float32)
            for position in human_positions
        ]
    )

    # -- packets ------------------------------------------------------------
    noise_power = noise_power_for_snr(1.0, config.channel.snr_db)
    num_taps = config.channel.num_taps
    records: list[PacketRecord] = []
    for k in range(num_packets):
        time_s = (k + 1) * interval
        position = walker.position_at(time_s)
        h_true = components.environment.cir(position)
        sequence_number = _sequence_number(set_index, k)
        packet = components.transmitter.transmit(sequence_number)
        phase_offset = float(packet_rng.uniform(0.0, 2.0 * np.pi))
        noise_seed = int(packet_rng.integers(0, 2**63 - 1))

        record = PacketRecord(
            sequence_number=sequence_number,
            time_s=time_s,
            human_xy=(float(position[0]), float(position[1])),
            frame_index=match_packet_to_frame(timeline, time_s),
            h_true=h_true,
            h_ls=np.empty(0),
            h_ls_canonical=np.empty(0),
            phase_to_canonical=0.0,
            h_preamble=np.empty(0),
            h_preamble_canonical=np.empty(0),
            preamble_detected=False,
            preamble_metric=0.0,
            phase_offset=phase_offset,
            noise_seed=noise_seed,
            noise_power=noise_power,
            los_blocked=components.environment.is_los_blocked(position),
            los_clearance_m=float(
                components.environment.los_clearance(position)
            ),
            received_power=float(np.sum(np.abs(h_true) ** 2)),
        )
        received = synthesize_received(components, record, packet.waveform)

        record.h_ls = components.receiver.full_ls_estimate(
            received, packet.waveform, num_taps
        )
        record.h_ls_canonical, record.phase_to_canonical = canonicalize_phase(
            record.h_ls, components.phase_reference
        )
        record.h_preamble = components.receiver.preamble_ls_estimate(
            received, num_taps
        )
        record.h_preamble_canonical, _ = canonicalize_phase(
            record.h_preamble, components.phase_reference
        )
        detected, metric = components.receiver.detect_preamble(received)
        record.preamble_detected = detected
        record.preamble_metric = metric
        records.append(record)

    measurement_set = MeasurementSet(
        index=set_index,
        packets=records,
        frames=frames,
        frame_times=frame_times,
        human_positions=human_positions,
    )
    measurement_set.validate()
    return measurement_set


def generate_dataset(
    config: SimulationConfig,
    components: SimulationComponents | None = None,
    verbose: bool = False,
) -> list[MeasurementSet]:
    """Simulate the full campaign (``config.dataset.num_sets`` takes)."""
    components = components or build_components(config)
    sets = []
    for set_index in range(config.dataset.num_sets):
        sets.append(generate_measurement_set(components, set_index))
        if verbose:
            blocked = np.mean(
                [p.los_blocked for p in sets[-1].packets]
            )
            print(
                f"set {set_index + 1}/{config.dataset.num_sets}: "
                f"{sets[-1].num_packets} packets, "
                f"{sets[-1].num_frames} frames, "
                f"LoS blocked {100 * blocked:.0f}%"
            )
    return sets
