"""Simulation of the measurement campaign (paper Sec. 3).

Each measurement take ("set") walks one human — or, for campaign
scenarios, ``MobilityConfig.num_humans`` humans on the configured
trajectory preset — through the room for ``packets_per_set * 100 ms``,
transmitting a 802.15.4 packet every 100 ms and capturing a depth frame
every 33.3 ms.  Per packet the generator
records what the paper's pipeline extracts from the USRP trace: the
whole-packet LS estimate (perfect estimate), the SHR-region LS estimate,
the preamble-detection outcome, and the LED-matched camera frame.

Raw waveforms are not stored; :func:`synthesize_received` re-creates them
bit-exactly from the recorded noise seed and crystal phase.

Two processing engines are provided.  ``engine="batch"`` (default) runs
the whole packet loop through the vectorized PHY engine
(:mod:`repro.phy.batch`): one template matmul synthesizes every clean
waveform, the LS normal equations are solved from shared template
correlations plus sparse per-packet corrections, and synchronization,
preamble estimation and phase canonicalization operate on ``(P,
samples)`` matrices.  ``engine="scalar"`` preserves the original
packet-at-a-time loop for verification and benchmarking; both engines
produce matching measurement sets (noise seeds and trajectories are
bit-identical, estimates agree to numerical precision).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..channel import IndoorEnvironment, build_walkers
from ..channel.noise import awgn, noise_power_for_snr
from ..config import SimulationConfig
from ..dsp.phase import canonicalize_phase, canonicalize_phase_batch
from ..errors import ConfigurationError
from ..obs import log
from ..phy.batch import get_batch_engine
from ..phy.receiver import Receiver
from ..phy.transmitter import Transmitter
from ..vision.camera import DepthCamera
from ..vision.preprocessing import preprocess_depth
from ..vision.synchronization import FrameTimeline, match_packet_to_frame
from .trace import MeasurementSet, PacketRecord

_REFERENCE_HUMAN_XY = (0.45, 0.45)

#: Packets processed per batch; bounds the working set to a few tens of
#: megabytes even at paper scale (1514 packets/set).
_BATCH_CHUNK = 128


@dataclass
class SimulationComponents:
    """Shared heavyweight objects of one campaign."""

    config: SimulationConfig
    transmitter: Transmitter
    receiver: Receiver
    environment: IndoorEnvironment
    camera: DepthCamera
    phase_reference: np.ndarray


def build_components(config: SimulationConfig) -> SimulationComponents:
    """Construct transmitter, receiver, environment and camera once."""
    transmitter = Transmitter(config.phy)
    receiver = Receiver(config.phy, config.receiver, transmitter)
    environment = IndoorEnvironment(config.room, config.channel, config.phy)
    camera = DepthCamera(config.camera, config.room, config.channel)
    phase_reference = environment.cir(_REFERENCE_HUMAN_XY)
    return SimulationComponents(
        config=config,
        transmitter=transmitter,
        receiver=receiver,
        environment=environment,
        camera=camera,
        phase_reference=phase_reference,
    )


def synthesize_received(
    components: SimulationComponents,
    record: PacketRecord,
    waveform: np.ndarray | None = None,
) -> np.ndarray:
    """Re-create the received samples of a recorded packet bit-exactly."""
    if waveform is None:
        waveform = components.transmitter.transmit(
            record.sequence_number
        ).waveform
    clean = np.convolve(waveform, record.h_true)
    rotated = clean * np.exp(1j * record.phase_offset)
    noise_rng = np.random.default_rng(record.noise_seed)
    return rotated + awgn(noise_rng, len(rotated), record.noise_power)


def synthesize_received_batch(
    components: SimulationComponents,
    records: list[PacketRecord],
    reuse_buffer: bool = False,
) -> np.ndarray:
    """Batched :func:`synthesize_received` for same-length packet records.

    Returns a ``(P, samples)`` matrix whose rows match the scalar
    function per record (identical per-seed noise realizations; the
    clean convolution agrees to numerical precision).  With
    ``reuse_buffer=True`` the matrix aliases engine scratch that the
    next batched synthesis overwrites.
    """
    if not records:
        raise ConfigurationError("synthesize_received_batch needs records")
    num_taps = len(records[0].h_true)
    engine = get_batch_engine(components.transmitter, num_taps)
    deltas = [
        engine.packet_deltas(record.sequence_number) for record in records
    ]
    channels = np.stack([record.h_true for record in records])
    phases = np.array([record.phase_offset for record in records])
    seeds = np.array(
        [record.noise_seed for record in records], dtype=np.uint64
    )
    noise_power = records[0].noise_power
    return engine.synthesize_received(
        deltas,
        channels,
        phases,
        seeds,
        noise_power,
        reuse_buffer=reuse_buffer,
    )


def _sequence_number(set_index: int, packet_index: int) -> int:
    return (set_index * 1009 + packet_index) % 65536


def _empty_records(
    components: SimulationComponents,
    set_index: int,
    timeline: FrameTimeline,
    packet_rng: np.random.Generator,
    positions: np.ndarray,
    channels: np.ndarray,
    clearances: np.ndarray,
) -> list[PacketRecord]:
    """Per-packet records with synthesis parameters but no estimates yet.

    Draws the per-packet crystal phases and noise seeds in the exact
    order of the original scalar loop so stored campaigns replay
    bit-identically regardless of the processing engine.
    """
    config = components.config
    interval = config.dataset.packet_interval_s
    noise_power = noise_power_for_snr(1.0, config.channel.snr_db)
    environment = components.environment
    records = []
    for k in range(len(positions)):
        phase_offset = float(packet_rng.uniform(0.0, 2.0 * np.pi))
        noise_seed = int(packet_rng.integers(0, 2**63 - 1))
        h_true = channels[k]
        records.append(
            PacketRecord(
                sequence_number=_sequence_number(set_index, k),
                time_s=(k + 1) * interval,
                human_xy=(
                    float(positions[k][0]),
                    float(positions[k][1]),
                ),
                frame_index=match_packet_to_frame(
                    timeline, (k + 1) * interval
                ),
                h_true=h_true,
                h_ls=np.empty(0),
                h_ls_canonical=np.empty(0),
                phase_to_canonical=0.0,
                h_preamble=np.empty(0),
                h_preamble_canonical=np.empty(0),
                preamble_detected=False,
                preamble_metric=0.0,
                phase_offset=phase_offset,
                noise_seed=noise_seed,
                noise_power=noise_power,
                los_blocked=environment.los_blocked_from_clearance(
                    clearances[k]
                ),
                los_clearance_m=float(clearances[k]),
                received_power=float(np.sum(np.abs(h_true) ** 2)),
            )
        )
    return records


def _process_packets_scalar(
    components: SimulationComponents, records: list[PacketRecord]
) -> None:
    """Original packet-at-a-time estimation loop (seed behaviour)."""
    num_taps = components.config.channel.num_taps
    for record in records:
        packet = components.transmitter.transmit(record.sequence_number)
        received = synthesize_received(components, record, packet.waveform)
        record.h_ls = components.receiver.full_ls_estimate(
            received, packet.waveform, num_taps
        )
        record.h_ls_canonical, record.phase_to_canonical = canonicalize_phase(
            record.h_ls, components.phase_reference
        )
        record.h_preamble = components.receiver.preamble_ls_estimate(
            received, num_taps
        )
        record.h_preamble_canonical, _ = canonicalize_phase(
            record.h_preamble, components.phase_reference
        )
        detected, metric = components.receiver.detect_preamble(received)
        record.preamble_detected = detected
        record.preamble_metric = metric


def _process_packets_batch(
    components: SimulationComponents,
    records: list[PacketRecord],
    chunk_size: int = _BATCH_CHUNK,
) -> None:
    """Vectorized estimation over packet chunks via the batch engine."""
    num_taps = components.config.channel.num_taps
    receiver = components.receiver
    engine = get_batch_engine(components.transmitter, num_taps)
    reference = components.phase_reference
    for lo in range(0, len(records), max(1, chunk_size)):
        chunk = records[lo : lo + chunk_size]
        deltas = [
            engine.packet_deltas(record.sequence_number)
            for record in chunk
        ]
        channels = np.stack([record.h_true for record in chunk])
        phases = np.array([record.phase_offset for record in chunk])
        seeds = np.array(
            [record.noise_seed for record in chunk], dtype=np.uint64
        )
        received = engine.synthesize_received(
            deltas,
            channels,
            phases,
            seeds,
            chunk[0].noise_power,
            reuse_buffer=True,
        )
        h_ls = engine.full_ls_estimates(received, deltas)
        h_ls_canonical, thetas = canonicalize_phase_batch(h_ls, reference)
        h_preamble = receiver.preamble_ls_estimate_batch(
            received, num_taps
        )
        h_preamble_canonical, _ = canonicalize_phase_batch(
            h_preamble, reference
        )
        detected, metrics = receiver.detect_preamble_batch(received)
        for row, record in enumerate(chunk):
            record.h_ls = h_ls[row]
            record.h_ls_canonical = h_ls_canonical[row]
            record.phase_to_canonical = float(thetas[row])
            record.h_preamble = h_preamble[row]
            record.h_preamble_canonical = h_preamble_canonical[row]
            record.preamble_detected = bool(detected[row])
            record.preamble_metric = float(metrics[row])


def generate_measurement_set(
    components: SimulationComponents,
    set_index: int,
    engine: str = "batch",
) -> MeasurementSet:
    """Simulate one measurement take.

    ``engine="batch"`` (default) runs the vectorized PHY engine;
    ``engine="scalar"`` keeps the original per-packet loop.  Both produce
    equivalent sets (identical seeds/trajectories, estimates matching to
    numerical precision).
    """
    if engine not in ("batch", "scalar"):
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected 'batch' or 'scalar'"
        )
    config = components.config
    interval = config.dataset.packet_interval_s
    num_packets = config.dataset.packets_per_set
    duration = (num_packets + 1) * interval + 0.5

    # The primary human keeps the seed derivation of the original
    # single-human campaign so existing datasets replay bit-identically;
    # additional humans (campaign scenarios) extend the seed tuple.
    # build_walkers also applies grouped-follower attachment and
    # heterogeneous per-walker speed bands when the mobility config
    # activates them.
    walkers = build_walkers(
        config.room,
        config.mobility,
        (config.seed, 101, set_index),
        duration_s=duration,
    )
    multi_human = len(walkers) > 1
    packet_rng = np.random.default_rng([config.seed, 202, set_index])

    # -- camera frames ----------------------------------------------------
    frame_interval = config.camera.frame_interval_s
    num_frames = int(np.ceil(duration / frame_interval))
    timeline = FrameTimeline(
        num_frames=num_frames, frame_interval_s=frame_interval
    )
    frame_times = timeline.timestamps
    human_positions = np.stack(
        [
            [walker.position_at(float(t)) for walker in walkers]
            for t in frame_times
        ]
    )  # (F, H, 2)
    rows, cols = config.camera.output_shape
    top, left = config.camera.crop_top, config.camera.crop_left
    if multi_human:
        rendered = components.camera.render_multi_batch(human_positions)
        frames = rendered[
            :, top : top + rows, left : left + cols
        ].astype(np.float32)
    elif engine == "batch":
        rendered = components.camera.render_batch(human_positions[:, 0])
        # Batched equivalent of per-frame preprocess_depth (pure crop).
        frames = rendered[
            :, top : top + rows, left : left + cols
        ].astype(np.float32)
    else:
        frames = np.stack(
            [
                preprocess_depth(
                    components.camera.render(position), config.camera
                ).astype(np.float32)
                for position in human_positions[:, 0]
            ]
        )

    # -- packets ------------------------------------------------------------
    packet_positions_all = np.stack(
        [
            [
                walker.position_at((k + 1) * interval)
                for walker in walkers
            ]
            for k in range(num_packets)
        ]
    )  # (P, H, 2)
    packet_positions = packet_positions_all[:, 0]
    if multi_human:
        # The multi-body CIR/clearance is only implemented vectorized;
        # both engines share it (the engine flag governs packet-estimate
        # processing, not channel synthesis).
        channels = components.environment.cir_multi_batch(
            packet_positions_all
        )
        clearances = components.environment.los_clearance_multi_batch(
            packet_positions_all
        )
    elif engine == "batch":
        channels = components.environment.cir_batch(packet_positions)
        clearances = components.environment.los_clearance_batch(
            packet_positions
        )
    else:
        channels = np.stack(
            [
                components.environment.cir(position)
                for position in packet_positions
            ]
        )
        clearances = np.array(
            [
                components.environment.los_clearance(position)
                for position in packet_positions
            ]
        )
    records = _empty_records(
        components,
        set_index,
        timeline,
        packet_rng,
        packet_positions,
        channels,
        clearances,
    )
    if engine == "batch":
        _process_packets_batch(components, records)
    else:
        _process_packets_scalar(components, records)

    measurement_set = MeasurementSet(
        index=set_index,
        packets=records,
        frames=frames,
        frame_times=frame_times,
        # Single-human campaigns keep the historical (F, 2) layout;
        # multi-human scenarios store every walker as (F, H, 2).
        human_positions=(
            human_positions if multi_human else human_positions[:, 0]
        ),
    )
    measurement_set.validate()
    return measurement_set


# -- parallel campaign generation ---------------------------------------
_WORKER_STATE: dict = {}


def _generate_set_task(
    config: SimulationConfig, set_index: int, engine: str
) -> MeasurementSet:
    """Process-pool task: build components once per worker, then simulate."""
    if _WORKER_STATE.get("config") != config:
        _WORKER_STATE["config"] = config
        _WORKER_STATE["components"] = build_components(config)
    return generate_measurement_set(
        _WORKER_STATE["components"], set_index, engine=engine
    )


def generate_dataset(
    config: SimulationConfig,
    components: SimulationComponents | None = None,
    verbose: bool = False,
    workers: int | None = None,
    engine: str = "batch",
) -> list[MeasurementSet]:
    """Simulate the full campaign (``config.dataset.num_sets`` takes).

    Parameters
    ----------
    config:
        Campaign configuration.
    components:
        Pre-built simulation components (built on demand otherwise).
    verbose:
        Print one summary line per completed set.
    workers:
        Fan measurement sets out over a process pool of this size
        (``None`` or ``1`` runs serially).  Sets are independent — every
        take derives its own seeds — so the parallel campaign is
        identical to the serial one.  Each worker rebuilds its
        components from ``config``; a caller-supplied ``components``
        object is only used by the serial path, so don't combine
        ``workers`` with components that differ from
        ``build_components(config)``.
    engine:
        Packet-processing engine, ``"batch"`` (default) or ``"scalar"``.
    """
    num_sets = config.dataset.num_sets
    if workers is not None and workers > 1 and num_sets > 1:
        pool_size = min(workers, num_sets)
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            sets = list(
                pool.map(
                    _generate_set_task,
                    [config] * num_sets,
                    range(num_sets),
                    [engine] * num_sets,
                )
            )
        if verbose:
            for measurement_set in sets:
                _print_set_summary(measurement_set, num_sets)
        return sets

    components = components or build_components(config)
    sets = []
    for set_index in range(num_sets):
        sets.append(
            generate_measurement_set(components, set_index, engine=engine)
        )
        if verbose:
            _print_set_summary(sets[-1], num_sets)
    return sets


def _print_set_summary(
    measurement_set: MeasurementSet, num_sets: int
) -> None:
    blocked = np.mean(
        [p.los_blocked for p in measurement_set.packets]
    )
    log.info(
        f"set {measurement_set.index + 1}/{num_sets}: "
        f"{measurement_set.num_packets} packets, "
        f"{measurement_set.num_frames} frames, "
        f"LoS blocked {100 * blocked:.0f}%"
    )
