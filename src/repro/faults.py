"""Deterministic, seeded fault injection for chaos-testing the stack.

The execution layers (campaign runner, cache, checkpoint registry,
results store, streaming prediction service) call :func:`inject` /
:func:`corrupt_file` at named *sites*.  When no plan is active those
hooks are a single ``is None`` check — zero overhead.  When a plan is
activated (programmatically via :func:`activate`, or by the CLI through
the ``REPRO_FAULT_PLAN`` environment variable, which worker processes
inherit), each matching :class:`FaultSpec` fires a bounded number of
times, coordinated across processes through an ``O_EXCL`` claim-file
ledger in the plan's state directory.

That ledger is what makes chaos runs deterministic *and* convergent: a
spec with ``times=1`` fires exactly once campaign-wide no matter how
many workers race past the site, and — crucially — a step that crashed
because of an injected fault does not re-trigger the same fault on
retry, so a self-healing executor always makes progress.

Sites currently instrumented:

========================  ====================================================
site                      label / where
========================  ====================================================
``worker.body``           step id; start of a supervised worker process body
``step.body``             step id; start of an inline step
``cache.load``            cache key; :meth:`DatasetCache.load_or_generate`
``models.load``           checkpoint key; :meth:`ModelCheckpointRegistry.load_or_train`
``results.record``        coords key; :meth:`ResultsStore.get`
``service.flush``         batch index; :meth:`PredictionService.flush`
========================  ====================================================

Fault kinds: ``crash`` (hard ``os._exit``; only legal at
``worker.body`` so the scheduler itself is never killed), ``io_error``
(raises :class:`~repro.errors.InjectedIOError`, classified transient),
``stall`` (sleeps ``delay_s`` — pair with a per-step timeout), and
``corrupt`` (flips and truncates bytes of an on-disk artifact; only
fires through :func:`corrupt_file`).
"""

from __future__ import annotations

import fnmatch
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from .errors import ConfigurationError, InjectedIOError

#: Environment variable holding the path of the active plan file.
#: Worker processes (fork or spawn) inherit it, so one ``--faults``
#: flag arms the whole process tree.
ENV_VAR = "REPRO_FAULT_PLAN"

KIND_CRASH = "crash"
KIND_IO_ERROR = "io_error"
KIND_STALL = "stall"
KIND_CORRUPT = "corrupt"

_VALID_KINDS = (KIND_CRASH, KIND_IO_ERROR, KIND_STALL, KIND_CORRUPT)

#: The only sites where a ``crash`` spec may fire: crash faults hard-kill
#: the calling process, which must be a supervised worker, never the
#: campaign scheduler.
CRASH_SITES = ("worker.body",)


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: *kind* at *site*, for labels matching *match*.

    ``times`` bounds how often the spec fires campaign-wide (enforced
    through the cross-process ledger); ``delay_s`` is the sleep length
    of ``stall`` faults.
    """

    site: str
    kind: str
    match: str = "*"
    times: int = 1
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{_VALID_KINDS}"
            )
        if self.kind == KIND_CRASH and self.site not in CRASH_SITES:
            raise ConfigurationError(
                f"crash faults are only legal at {CRASH_SITES} "
                f"(got site {self.site!r}); a crash anywhere else "
                "would kill the scheduler, not a worker"
            )
        if self.times < 1:
            raise ConfigurationError(
                f"fault spec times must be >= 1 (got {self.times})"
            )

    def matches(self, site: str, label: str) -> bool:
        """Whether this spec is armed for the given site and label."""
        return self.site == site and fnmatch.fnmatchcase(
            label, self.match
        )

    def as_dict(self) -> dict:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {
            "site": self.site,
            "kind": self.kind,
            "match": self.match,
            "times": self.times,
            "delay_s": self.delay_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Rebuild a spec from its :meth:`as_dict` form."""
        return cls(
            site=data["site"],
            kind=data["kind"],
            match=data.get("match", "*"),
            times=int(data.get("times", 1)),
            delay_s=float(data.get("delay_s", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of armed faults plus their firing ledger.

    The ``state_dir`` holds the ``fired/`` claim files that bound each
    spec's firings across every process of a campaign; reusing a state
    directory therefore *replays* a chaos run with all faults already
    spent — which is exactly what the byte-identical-replay check in CI
    relies on.
    """

    name: str
    specs: tuple[FaultSpec, ...]
    state_dir: Path
    seed: int = 0

    def summary(self) -> str:
        """One-line human description, e.g. for CLI banners."""
        parts = [
            f"{spec.kind}@{spec.site}[{spec.match}]x{spec.times}"
            for spec in self.specs
        ]
        return f"{len(self.specs)} spec(s): " + ", ".join(parts)

    def fired_count(self) -> int:
        """How many fault firings the ledger has recorded so far."""
        fired = self.state_dir / "fired"
        if not fired.is_dir():
            return 0
        return sum(1 for _ in fired.iterdir())

    def save(self, path: str | Path) -> None:
        """Write the plan file that ``REPRO_FAULT_PLAN`` points at."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {
                    "name": self.name,
                    "seed": self.seed,
                    "state_dir": str(self.state_dir),
                    "specs": [spec.as_dict() for spec in self.specs],
                },
                indent=2,
                sort_keys=True,
            )
        )

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        """Read a plan file previously written by :meth:`save`."""
        data = json.loads(Path(path).read_text())
        return cls(
            name=data["name"],
            seed=int(data.get("seed", 0)),
            state_dir=Path(data["state_dir"]),
            specs=tuple(
                FaultSpec.from_dict(spec) for spec in data["specs"]
            ),
        )


#: Built-in named plans: name -> (description, spec factory args).
#: The ``nightly-chaos`` plan is the CI workhorse: one worker crash,
#: one transient I/O error, one stalled worker (killed by the step
#: timeout) and one corrupted cache entry, all self-healed by the
#: runner.  ``smoke-chaos`` is the same storm with a short stall for
#: interactive use.
BUILTIN_PLANS: dict[str, tuple[str, tuple[FaultSpec, ...]]] = {
    "nightly-chaos": (
        "crash + transient IO + 20s stall + cache corruption",
        (
            FaultSpec("worker.body", KIND_CRASH, match="point@*"),
            FaultSpec("worker.body", KIND_IO_ERROR, match="point@*"),
            FaultSpec(
                "worker.body", KIND_STALL, match="point@*", delay_s=20.0
            ),
            FaultSpec("cache.load", KIND_CORRUPT),
        ),
    ),
    "smoke-chaos": (
        "crash + transient IO + 2s stall + cache corruption",
        (
            FaultSpec("worker.body", KIND_CRASH),
            FaultSpec("worker.body", KIND_IO_ERROR),
            FaultSpec("worker.body", KIND_STALL, delay_s=2.0),
            FaultSpec("cache.load", KIND_CORRUPT),
        ),
    ),
}

# Module-level activation state: _UNSET until the environment has been
# consulted once, then either None (off — the inject() fast path) or
# the resolved FaultPlan.
_UNSET = object()
_ACTIVE: object = _UNSET


def resolve_plan(
    name_or_path: str, state_dir: str | Path, seed: int = 0
) -> FaultPlan:
    """Turn a ``--faults`` argument into a plan bound to *state_dir*.

    Accepts a built-in plan name (see :data:`BUILTIN_PLANS`) or the
    path of a plan JSON file with a ``specs`` list.
    """
    state_dir = Path(state_dir)
    if name_or_path in BUILTIN_PLANS:
        _, specs = BUILTIN_PLANS[name_or_path]
        return FaultPlan(
            name=name_or_path,
            specs=specs,
            state_dir=state_dir,
            seed=seed,
        )
    path = Path(name_or_path)
    if path.exists():
        data = json.loads(path.read_text())
        return FaultPlan(
            name=data.get("name", path.stem),
            seed=int(data.get("seed", seed)),
            state_dir=Path(data.get("state_dir", state_dir)),
            specs=tuple(
                FaultSpec.from_dict(spec) for spec in data["specs"]
            ),
        )
    raise ConfigurationError(
        f"unknown fault plan {name_or_path!r}; expected one of "
        f"{sorted(BUILTIN_PLANS)} or the path of a plan JSON file"
    )


def activate(plan: FaultPlan, plan_path: str | Path) -> None:
    """Arm *plan* for this process and every future child process.

    Writes the plan file, points :data:`ENV_VAR` at it (inherited by
    forked and spawned workers) and installs the plan as this process's
    active plan.
    """
    global _ACTIVE
    plan.save(plan_path)
    os.environ[ENV_VAR] = str(plan_path)
    _ACTIVE = plan


def deactivate() -> None:
    """Disarm fault injection in this process (and clear the env var)."""
    global _ACTIVE
    os.environ.pop(ENV_VAR, None)
    _ACTIVE = None


def active_plan() -> "FaultPlan | None":
    """The currently armed plan, resolving ``REPRO_FAULT_PLAN`` lazily."""
    global _ACTIVE
    if _ACTIVE is _UNSET:
        path = os.environ.get(ENV_VAR)
        _ACTIVE = FaultPlan.load(path) if path else None
    return _ACTIVE  # type: ignore[return-value]


def _claim(plan: FaultPlan, index: int, spec: FaultSpec) -> bool:
    """Atomically claim one of the spec's remaining firing slots.

    ``O_CREAT | O_EXCL`` on ``state_dir/fired/<index>.<n>`` guarantees
    each of the ``times`` slots is won by exactly one process, however
    many race on the site concurrently — and that retries of a step
    that already absorbed the fault see the slot spent.
    """
    fired = plan.state_dir / "fired"
    fired.mkdir(parents=True, exist_ok=True)
    for n in range(spec.times):
        try:
            fd = os.open(
                fired / f"{index:02d}.{n}",
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                0o644,
            )
        except FileExistsError:
            continue
        os.write(
            fd,
            f"{spec.kind}@{spec.site} pid={os.getpid()} "
            f"t={time.time():.3f}\n".encode(),
        )
        os.close(fd)
        return True
    return False


def _trace_firing(
    site: str, label: str, kind: str, index: int
) -> None:
    """Record a fault firing in the trace journal (cold path only).

    Runs strictly after a successful ledger claim, so it never adds
    cost to the unarmed hook; the import is lazy because
    ``repro.faults`` must stay importable before ``repro.obs``.
    """
    from .obs import trace

    trace.event(
        "fault.fired", site=site, label=label, kind=kind, index=index
    )


def inject(site: str, label: str) -> None:
    """Fault hook: fire any armed spec matching ``(site, label)``.

    The no-plan fast path is a single identity check, so leaving the
    hooks compiled into hot paths costs nothing in normal operation.
    ``corrupt`` specs are ignored here — they only act through
    :func:`corrupt_file`, which needs a target path.
    """
    plan = _ACTIVE
    if plan is None:
        return
    if plan is _UNSET:
        plan = active_plan()
        if plan is None:
            return
    for index, spec in enumerate(plan.specs):  # type: ignore[union-attr]
        if spec.kind == KIND_CORRUPT:
            continue
        if not spec.matches(site, label):
            continue
        if not _claim(plan, index, spec):  # type: ignore[arg-type]
            continue
        _trace_firing(site, label, spec.kind, index)
        if spec.kind == KIND_CRASH:
            os._exit(137)
        if spec.kind == KIND_STALL:
            time.sleep(spec.delay_s)
            continue
        raise InjectedIOError(
            f"injected transient I/O fault at {site} ({label})"
        )


def corrupt_file(site: str, label: str, path: str | Path) -> bool:
    """Fault hook: corrupt *path* if an armed ``corrupt`` spec matches.

    Flips every byte of the file's first half and truncates the rest —
    a superset of a torn write — guaranteeing any content digest
    mismatches.  Returns whether corruption was applied.  A missing
    file never consumes a firing slot, so the spec stays armed until a
    real artifact exists to corrupt.
    """
    plan = active_plan()
    if plan is None:
        return False
    path = Path(path)
    if not path.is_file():
        return False
    for index, spec in enumerate(plan.specs):
        if spec.kind != KIND_CORRUPT:
            continue
        if not spec.matches(site, label):
            continue
        if not _claim(plan, index, spec):
            continue
        _trace_firing(site, label, spec.kind, index)
        data = path.read_bytes()
        keep = max(1, len(data) // 2)
        path.write_bytes(bytes(byte ^ 0xFF for byte in data[:keep]))
        return True
    return False
