"""Default estimator line-ups (the technique lists of Sec. 5).

``build_full_suite`` is the Fig. 12/13/14 ten-technique comparison;
``build_baseline_suite`` omits VVD (used for fast calibration and tests);
``build_quick_suite`` keeps only the stateless techniques (CI smoke and
campaign sweeps on micro scenarios); ``build_kalman_variants`` /
``build_vvd_variants`` feed Fig. 11.  ``build_suite`` resolves a
line-up by registry name (the ``--suite`` CLI flag).

The VVD instance is shared between its standalone entry and the
Preamble-VVD Combined entry so the CNN is trained once per combination.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..config import SimulationConfig
from ..core.vvd import VVDEstimator
from ..errors import ConfigurationError
from ..estimation import (
    CombinedEstimator,
    GroundTruth,
    KalmanEstimator,
    PreambleBased,
    PreambleGenie,
    PreviousEstimation,
    StandardDecoding,
)
from ..estimation.base import ChannelEstimator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..campaign.models import ModelCheckpointRegistry


def build_baseline_suite(
    config: SimulationConfig,
) -> list[ChannelEstimator]:
    """All non-VVD techniques of Fig. 12, in the paper's display order."""
    interval = config.dataset.packet_interval_s
    order = config.kalman.default_order
    return [
        StandardDecoding(),
        PreambleBased(),
        PreviousEstimation(5, interval),
        PreviousEstimation(1, interval),
        KalmanEstimator(
            order,
            observation_noise=config.kalman.observation_noise,
            process_noise_scale=config.kalman.process_noise_scale,
        ),
        CombinedEstimator(
            KalmanEstimator(
                order,
                observation_noise=config.kalman.observation_noise,
                process_noise_scale=config.kalman.process_noise_scale,
            )
        ),
        PreambleGenie(),
        GroundTruth(),
    ]


def build_full_suite(
    config: SimulationConfig,
    vvd_seed: int = 7,
    checkpoints: "ModelCheckpointRegistry | None" = None,
) -> list[ChannelEstimator]:
    """The ten techniques of Figs. 12-14 (one shared VVD training).

    ``checkpoints`` resolves the VVD training through the campaign's
    content-addressed model registry (zero retraining on repeat runs).
    """
    interval = config.dataset.packet_interval_s
    order = config.kalman.default_order
    vvd = VVDEstimator(
        horizon_frames=0, seed=vvd_seed, checkpoints=checkpoints
    )
    return [
        StandardDecoding(),
        PreambleBased(),
        PreviousEstimation(5, interval),
        PreviousEstimation(1, interval),
        KalmanEstimator(
            order,
            observation_noise=config.kalman.observation_noise,
            process_noise_scale=config.kalman.process_noise_scale,
        ),
        vvd,
        CombinedEstimator(
            KalmanEstimator(
                order,
                observation_noise=config.kalman.observation_noise,
                process_noise_scale=config.kalman.process_noise_scale,
            )
        ),
        CombinedEstimator(vvd),
        PreambleGenie(),
        GroundTruth(),
    ]


def build_quick_suite(
    config: SimulationConfig,
) -> list[ChannelEstimator]:
    """Stateless techniques only — fast smoke evaluations.

    Omits every technique that needs per-combination fitting (VVD,
    Kalman), so the suite runs on arbitrarily small campaigns.
    """
    interval = config.dataset.packet_interval_s
    return [
        StandardDecoding(),
        PreambleBased(),
        PreviousEstimation(1, interval),
        GroundTruth(),
    ]


#: Named line-ups selectable from the campaign CLI (``--suite``).
SUITE_BUILDERS: dict[
    str, Callable[[SimulationConfig], list[ChannelEstimator]]
] = {
    "baseline": build_baseline_suite,
    "full": build_full_suite,
    "quick": build_quick_suite,
}


def build_suite(
    name: str, config: SimulationConfig
) -> list[ChannelEstimator]:
    """Build the estimator line-up registered under ``name``."""
    builder = SUITE_BUILDERS.get(name)
    if builder is None:
        raise ConfigurationError(
            f"unknown suite {name!r}; known suites: "
            f"{', '.join(sorted(SUITE_BUILDERS))}"
        )
    return builder(config)


def build_kalman_variants(
    config: SimulationConfig,
) -> list[ChannelEstimator]:
    """Kalman AR(1) / AR(5) / AR(20) for Fig. 11b."""
    return [
        KalmanEstimator(
            order,
            observation_noise=config.kalman.observation_noise,
            process_noise_scale=config.kalman.process_noise_scale,
        )
        for order in config.kalman.orders
    ]


def build_vvd_variants(
    config: SimulationConfig,
    vvd_seed: int = 7,
    checkpoints: "ModelCheckpointRegistry | None" = None,
) -> list[ChannelEstimator]:
    """VVD-Current / 33.3 ms / 100 ms future for Fig. 11a.

    Horizon offsets assume the paper's 30 fps camera and 100 ms packet
    interval: 0, 1 and 3 frames.  ``checkpoints`` resolves each horizon
    variant through the campaign's model registry.
    """
    return [
        VVDEstimator(
            horizon_frames=3, seed=vvd_seed, checkpoints=checkpoints
        ),
        VVDEstimator(
            horizon_frames=1, seed=vvd_seed, checkpoints=checkpoints
        ),
        VVDEstimator(
            horizon_frames=0, seed=vvd_seed, checkpoints=checkpoints
        ),
    ]
