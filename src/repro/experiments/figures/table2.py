"""Table 2 — the train/validation/test set combinations."""

from __future__ import annotations

from ...dataset.sets import SetCombination, paper_set_combinations
from ...dataset.trace import MeasurementSet


def generate() -> list[SetCombination]:
    """The 15 combinations exactly as printed in the paper."""
    return paper_set_combinations()


def render(sets: list[MeasurementSet] | None = None) -> str:
    """ASCII Table 2; test-set packet counts added when sets are given."""
    lines = [
        "Table 2 — set combinations used in the VVD comparison",
        f"{'Combo':>5}  {'Training sets':<42} {'Val':>4} {'Test':>5} "
        f"{'#Test pkts':>11}",
    ]
    for combo in generate():
        training = ",".join(str(s) for s in combo.training)
        if sets is not None and combo.test_index < len(sets):
            packets = str(sets[combo.test_index].num_packets)
        else:
            packets = "-"
        lines.append(
            f"{combo.number:>5}  {training:<42} {combo.validation:>4} "
            f"{combo.test:>5} {packets:>11}"
        )
    return "\n".join(lines)
