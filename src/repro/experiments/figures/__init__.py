"""One module per paper table/figure (plus post-paper figures).

Every module exposes ``generate(...)`` returning the figure's data and a
``render(...)`` producing the ASCII form printed by the benchmarks (see
EXPERIMENTS.md for paper-vs-measured values).  ``stream_timeline`` is a
post-paper figure: the closed-loop proactive-vs-reactive companion of
Fig. 15, rendered by ``repro stream``.
"""

from . import (
    fig5,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    stream_timeline,
    table1,
    table2,
)

__all__ = [
    "table1",
    "table2",
    "fig5",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "stream_timeline",
]
