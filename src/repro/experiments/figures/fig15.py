"""Fig. 15 — per-packet decode success/failure timeline.

Shows the bursty error behaviour correlated with LoS blockage (the paper
investigates 100 packets decoded with VVD).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...channel.blockage import shadow_clearance_m
from ..bundle import EvaluationBundle
from ..reporting import format_timeline


@dataclass
class TimelineData:
    successes: list[bool]
    blocked: list[bool]
    technique: str


def generate(
    bundle: EvaluationBundle,
    technique: str = "VVD-Current",
    combination_index: int = 0,
    length: int = 100,
) -> TimelineData:
    result = bundle.results[combination_index]
    outcomes = result.technique(technique).outcomes[:length]
    test_set = bundle.sets[result.combination.test_index]
    skip = bundle.config.dataset.skip_initial
    packets = test_set.packets[skip : skip + len(outcomes)]
    shadow = shadow_clearance_m(bundle.config.channel)
    return TimelineData(
        successes=[not o.packet_error for o in outcomes],
        blocked=[p.los_clearance_m <= shadow for p in packets],
        technique=technique,
    )


def render(data: TimelineData) -> str:
    header = (
        f"Fig. 15 — decoding success vs time ({data.technique}, "
        f"{len(data.successes)} packets)"
    )
    return header + "\n" + format_timeline(data.successes, data.blocked)
