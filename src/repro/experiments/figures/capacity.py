"""Capacity curve — links sustained vs. per-class SLOs.

Not a paper figure: the production-scale companion to the stream
timeline.  Each point is one modeled capacity simulation
(:mod:`repro.stream.capacity`) at a swept link count; the curve shows
the worst per-class SLO miss rate growing with fleet size and marks the
largest link count whose classes all meet their targets — the
"sustained capacity" headline of ROADMAP item 3.

``generate`` consumes the plain payload dicts persisted by
``capacity@<links>`` campaign steps, so a completed campaign replays
the figure without re-simulating anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ConfigurationError


@dataclass
class CapacityCurveData:
    """One renderable capacity curve."""

    traffic: str
    qos: str
    duration_s: float
    #: (links, worst slo-miss rate, worst class name, p99 latency of
    #: the highest-priority class in seconds, slo_met) per point.
    points: list[tuple[int, float, str, float, bool]]

    @property
    def sustained_links(self) -> int:
        """Largest swept link count meeting every class SLO."""
        sustained = 0
        for links, _, _, _, met in self.points:
            if met:
                sustained = max(sustained, links)
        return sustained


def generate(payloads: list[dict]) -> CapacityCurveData:
    """Assemble curve data from ``capacity@<links>`` step payloads."""
    if not payloads:
        raise ConfigurationError("capacity curve needs >= 1 payload")
    reference = payloads[0]
    points: list[tuple[int, float, str, float, bool]] = []
    for payload in sorted(payloads, key=lambda p: p["links"]):
        if (
            payload["traffic"] != reference["traffic"]
            or payload["qos"] != reference["qos"]
        ):
            raise ConfigurationError(
                "capacity curve payloads mix traffic/QoS settings"
            )
        classes = payload["metrics"].get("classes", {})
        if not classes:
            raise ConfigurationError(
                f"capacity payload at {payload['links']} link(s) "
                "carries no per-class metrics"
            )
        worst_name, worst_rate = max(
            (
                (name, entry["slo_miss_rate"])
                for name, entry in classes.items()
            ),
            key=lambda item: (item[1], item[0]),
        )
        first_class = sorted(classes)[0]
        p99_s = classes[first_class]["latency"]["p99_s"]
        points.append(
            (
                int(payload["links"]),
                float(worst_rate),
                worst_name,
                float(p99_s),
                bool(payload["slo_met"]),
            )
        )
    return CapacityCurveData(
        traffic=reference["traffic"],
        qos=reference["qos"],
        duration_s=float(reference["duration_s"]),
        points=points,
    )


def render(data: CapacityCurveData, width: int = 40) -> str:
    """ASCII capacity curve printed by ``repro capacity`` and CI."""
    header = (
        f"Capacity curve — {data.traffic} traffic, {data.qos} QoS, "
        f"{data.duration_s:g} s horizon"
    )
    lines = [header, "=" * len(header)]
    lines.append(
        f"{'links':>7}  {'worst miss%':>11}  {'class':<8} "
        f"{'p99 ms':>8}  {'slo':>4}  curve"
    )
    for links, rate, name, p99_s, met in data.points:
        bar = "#" * max(0, round(rate * width))
        marker = "ok" if met else "VIOL"
        lines.append(
            f"{links:>7}  {100 * rate:>10.2f}%  {name:<8} "
            f"{1e3 * p99_s:>8.2f}  {marker:>4}  |{bar}"
        )
    lines.append(
        f"sustained capacity: {data.sustained_links} link(s) within "
        "every class SLO"
    )
    return "\n".join(lines)
