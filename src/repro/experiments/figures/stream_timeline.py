"""Streaming timeline — proactive vs reactive over a blockage event.

Not a paper figure: the closed-loop companion to Fig. 15.  Where Fig. 15
shows one offline technique's decode outcomes against LoS blockage, this
figure aligns *policies* on the same link and slot grid: the reactive
previous-estimation link transmits into the fade and burns failures
(``X``), while the proactive VVD link defers (``d``) through the
predicted blockage and resumes delivering (``.``) when the walker
clears.

``generate`` consumes the plain payload dicts persisted by ``stream``
campaign steps (:meth:`repro.stream.simulator.StreamPolicyResult.
payload`), so a completed campaign replays the figure without
re-simulating anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ConfigurationError
from ..reporting import format_policy_timeline


@dataclass
class StreamTimelineData:
    """Windowed per-policy symbol strips of one link."""

    link: int
    offset: int
    width: int
    #: Policy name -> full per-slot symbol string.
    rows: dict[str, str]
    #: Per-slot LoS-blockage flags of the chosen link.
    blocked: list[bool]


def _blockage_window(
    blocked: list[bool], width: int
) -> tuple[int, int]:
    """Window ``[offset, offset+width)`` centred on the first blockage.

    Falls back to the stream's head when the link never sees blockage.
    """
    try:
        first = blocked.index(True)
    except ValueError:
        return 0, width
    offset = max(0, first - width // 4)
    return offset, width


def generate(
    payloads: list[dict],
    link: int | None = None,
    width: int = 100,
) -> StreamTimelineData:
    """Assemble timeline data from ``stream@<policy>`` step payloads.

    ``link=None`` picks the link with the most blocked slots (the most
    interesting strip); the window centres on its first blockage event.
    Payload timelines must cover the same links and slot counts — they
    come from passes over the same event stream.
    """
    if not payloads:
        raise ConfigurationError("stream timeline needs >= 1 payload")
    links = payloads[0]["links"]
    for payload in payloads:
        if payload["links"] != links:
            raise ConfigurationError(
                "stream timeline payloads cover different link counts"
            )
    reference = payloads[0]["timelines"]
    if link is None:
        link = max(
            range(links),
            key=lambda l: reference[l]["blocked"].count("#"),
        )
    if not 0 <= link < links:
        raise ConfigurationError(
            f"link {link} outside [0, {links})"
        )
    blocked = [c == "#" for c in reference[link]["blocked"]]
    offset, width = _blockage_window(blocked, width)
    rows = {
        payload["policy"]: payload["timelines"][link]["symbols"]
        for payload in payloads
    }
    return StreamTimelineData(
        link=link,
        offset=offset,
        width=width,
        rows=rows,
        blocked=blocked,
    )


def render(data: StreamTimelineData) -> str:
    """ASCII form printed by ``repro stream`` and the CI smoke."""
    span_hi = min(data.offset + data.width, len(data.blocked))
    header = (
        f"Stream timeline — link {data.link}, slots "
        f"{data.offset}..{span_hi} (closed-loop link adaptation)"
    )
    return header + "\n" + format_policy_timeline(
        data.rows, data.blocked, width=data.width, offset=data.offset
    )
