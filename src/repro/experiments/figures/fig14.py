"""Fig. 14 — channel-estimation MSE of all techniques (Eq. 9).

Standard decoding has no estimate and Ground Truth is the reference
itself, so as in the paper both are omitted; Preamble Based is omitted
because undetected packets yield no estimate to score.
"""

from __future__ import annotations

import math

from ..bundle import EvaluationBundle
from ..metrics import BoxStats, box_stats
from ..reporting import format_box_table

_EXCLUDED = {"Standard Decoding", "Ground Truth", "Preamble Based"}


def generate(bundle: EvaluationBundle) -> dict[str, BoxStats]:
    rows = {}
    for name in bundle.technique_names():
        if name in _EXCLUDED:
            continue
        values = [
            v
            for v in bundle.technique_values(name, "mse")
            if not math.isnan(v)
        ]
        if values:
            rows[name] = box_stats(values)
    return rows


def render(bundle: EvaluationBundle) -> str:
    return format_box_table(
        "Fig. 14 — channel estimation MSE of all techniques",
        generate(bundle),
        value_name="MSE vs perfect estimate",
    )
