"""Fig. 16 — aging effect on channel-estimation MSE."""

from __future__ import annotations

from typing import Sequence

from ..aging import AgingResult, run_aging_experiment
from ..bundle import EvaluationBundle
from ..reporting import format_series_table

DEFAULT_AGES_S = (0.0, 0.1, 0.5, 1.0, 2.0, 5.0)


def generate(
    bundle: EvaluationBundle, ages_s: Sequence[float] = DEFAULT_AGES_S
) -> AgingResult:
    return run_aging_experiment(
        bundle.runner,
        bundle.combinations[0],
        ages_s,
        vvd=bundle.first_vvd,
    )


def render(result: AgingResult) -> str:
    labels = [
        "Original" if age == 0 else f"-{age:g}s" for age in result.ages_s
    ]
    return format_series_table(
        "Fig. 16 — aging effect on mean squared error",
        "age",
        labels,
        {
            "Preamble Genie": result.genie_mse,
            "VVD": result.vvd_mse,
        },
    )
