"""Fig. 5 — hypothesis-testing tap magnitudes and constellation."""

from __future__ import annotations

import numpy as np

from ...dataset.trace import MeasurementSet
from ..hypothesis_testing import (
    HypothesisResult,
    run_hypothesis_test,
    tap_magnitude_table,
)


def generate(
    control_set: MeasurementSet,
    probe_sets: "MeasurementSet | list[MeasurementSet]",
) -> HypothesisResult:
    return run_hypothesis_test(control_set, probe_sets)


def render(result: HypothesisResult) -> str:
    lines = [tap_magnitude_table(result), ""]
    lines.append("Fig. 5b — constellation of tap coefficients (Re, Im)")
    for name, taps in result.constellation_points().items():
        dominant = np.argsort(np.abs(taps))[-3:][::-1]
        values = ", ".join(
            f"tap{t + 1}=({taps[t].real:+.4f},{taps[t].imag:+.4f})"
            for t in dominant
        )
        lines.append(f"  {name:<12} {values}")
    lines.append("")
    lines.append(
        f"H1 displacement {result.instances.displacement_h1_m:.2f} m, "
        f"H2 displacement {result.instances.displacement_h2_m:.2f} m; "
        f"hypotheses hold: {result.hypotheses_hold}"
    )
    return "\n".join(lines)
