"""Fig. 13 — CER of all estimation techniques (box over combinations)."""

from __future__ import annotations

from ..bundle import EvaluationBundle
from ..metrics import BoxStats, box_stats
from ..reporting import format_box_table


def generate(bundle: EvaluationBundle) -> dict[str, BoxStats]:
    return {
        name: box_stats(bundle.technique_values(name, "cer"))
        for name in bundle.technique_names()
    }


def render(bundle: EvaluationBundle) -> str:
    return format_box_table(
        "Fig. 13 — chip error rate of all estimation techniques",
        generate(bundle),
        value_name="CER",
    )
