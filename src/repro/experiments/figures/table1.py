"""Table 1 — qualitative comparison of channel-estimation techniques.

The paper classifies Blind / Pilot / Time-Series / VVD along three axes:
reliable, scalable (no per-link pilot), dynamic (adapts to environment
changes).  We generate the table from the estimators' capability flags
and, when an :class:`EvaluationBundle` is supplied, back the "reliable"
column with the measured PER (reliable <=> better than standard decoding
by a clear margin).
"""

from __future__ import annotations

import numpy as np

from ...estimation import (
    KalmanEstimator,
    PreambleBased,
    StandardDecoding,
)
from ...core.vvd import VVDEstimator
from ..bundle import EvaluationBundle

_ROWS = (
    ("Blind", StandardDecoding()),
    ("Pilot", PreambleBased()),
    ("Time-Series", KalmanEstimator(20)),
    ("VVD", VVDEstimator()),
)


def generate() -> list[dict]:
    """Capability rows exactly as printed in Table 1."""
    rows = []
    for label, estimator in _ROWS:
        caps = estimator.capabilities
        rows.append(
            {
                "technique": label,
                "reliable": caps.reliable,
                "scalable": caps.scalable,
                "dynamic": caps.dynamic,
            }
        )
    return rows


def measured_reliability(bundle: EvaluationBundle) -> dict[str, float]:
    """Mean PER backing the 'reliable' column, from a full evaluation."""
    mapping = {
        "Blind": "Standard Decoding",
        "Pilot": "Preamble Based",
        "Time-Series": f"Kalman AR({bundle.config.kalman.default_order})",
        "VVD": "VVD-Current",
    }
    return {
        label: float(np.mean(bundle.technique_values(name, "per")))
        for label, name in mapping.items()
    }


def render(bundle: EvaluationBundle | None = None) -> str:
    def mark(flag: bool) -> str:
        return "yes" if flag else "no"

    lines = [
        "Table 1 — comparison of channel estimation techniques",
        f"{'Technique':<12} {'Reliable':>9} {'Scalable':>9} {'Dynamic':>8}",
    ]
    for row in generate():
        lines.append(
            f"{row['technique']:<12} {mark(row['reliable']):>9} "
            f"{mark(row['scalable']):>9} {mark(row['dynamic']):>8}"
        )
    if bundle is not None:
        lines.append("")
        lines.append("measured mean PER backing the 'reliable' column:")
        for label, per in measured_reliability(bundle).items():
            lines.append(f"  {label:<12} PER = {per:.3f}")
    return "\n".join(lines)
