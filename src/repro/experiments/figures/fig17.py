"""Fig. 17 — aging effect on packet error rate."""

from __future__ import annotations

from typing import Sequence

from ..aging import AgingResult
from ..bundle import EvaluationBundle
from ..reporting import format_series_table
from .fig16 import DEFAULT_AGES_S, generate as _generate_aging


def generate(
    bundle: EvaluationBundle, ages_s: Sequence[float] = DEFAULT_AGES_S
) -> AgingResult:
    return _generate_aging(bundle, ages_s)


def render(result: AgingResult) -> str:
    labels = [
        "Original" if age == 0 else f"-{age:g}s" for age in result.ages_s
    ]
    return format_series_table(
        "Fig. 17 — aging effect on packet error rate",
        "age",
        labels,
        {
            "Preamble Genie": result.genie_per,
            "VVD": result.vvd_per,
        },
    )
