"""Fig. 12 — PER of all estimation techniques (box over combinations)."""

from __future__ import annotations

from ..bundle import EvaluationBundle
from ..metrics import BoxStats, box_stats
from ..reporting import format_box_table


def generate(bundle: EvaluationBundle) -> dict[str, BoxStats]:
    return {
        name: box_stats(bundle.technique_values(name, "per"))
        for name in bundle.technique_names()
    }


def render(bundle: EvaluationBundle) -> str:
    return format_box_table(
        "Fig. 12 — packet error rate of all estimation techniques",
        generate(bundle),
        value_name="PER",
    )
