"""Fig. 11 — PER of the VVD and Kalman variants.

Fig. 11a: VVD-100ms Future vs VVD-33.3ms Future vs VVD-Current (fresher
images estimate better).  Fig. 11b: Kalman AR(1) / AR(5) / AR(20) (all
similar — the channel behaves almost memoryless).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ...config import SimulationConfig
from ...dataset.sets import SetCombination
from ..metrics import BoxStats, box_stats
from ..runner import EvaluationRunner
from ..suite import build_kalman_variants, build_vvd_variants

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...campaign.models import ModelCheckpointRegistry


@dataclass
class VariantsResult:
    """Per-variant box statistics over combinations."""

    vvd: dict[str, BoxStats]
    kalman: dict[str, BoxStats]


def generate(
    runner: EvaluationRunner,
    combinations: Sequence[SetCombination],
    config: SimulationConfig,
    checkpoints: "ModelCheckpointRegistry | None" = None,
    vvd_seed: int = 7,
) -> VariantsResult:
    vvd_values: dict[str, list[float]] = {}
    kalman_values: dict[str, list[float]] = {}
    for combination in combinations:
        estimators = build_vvd_variants(
            config, vvd_seed=vvd_seed, checkpoints=checkpoints
        ) + build_kalman_variants(config)
        result = runner.run_combination(combination, estimators)
        for name, technique in result.techniques.items():
            bucket = vvd_values if name.startswith("VVD") else kalman_values
            bucket.setdefault(name, []).append(technique.per)
    return VariantsResult(
        vvd={name: box_stats(v) for name, v in vvd_values.items()},
        kalman={name: box_stats(v) for name, v in kalman_values.items()},
    )


def render(result: VariantsResult) -> str:
    lines = ["Fig. 11 — PER for variants of VVD and Kalman", ""]
    lines.append("(a) VVD estimation")
    for name, stats in result.vvd.items():
        lines.append(f"  {name:<22} {stats.as_row()}")
    lines.append("(b) Kalman estimation")
    for name, stats in result.kalman.items():
        lines.append(f"  {name:<22} {stats.as_row()}")
    return "\n".join(lines)
