"""ASCII rendering of evaluation results.

The paper presents box plots over the 15 per-combination means; the
benchmark harness prints the same five-number summaries as tables so the
figures can be compared row by row (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .metrics import BoxStats


def format_box_table(
    title: str,
    rows: Mapping[str, BoxStats],
    value_name: str = "value",
) -> str:
    """Render technique -> five-number-summary as an aligned table."""
    name_width = max([len(name) for name in rows] + [len("technique")])
    header = (
        f"{'technique':<{name_width}}  "
        f"{'min':>10} {'q1':>10} {'median':>10} {'q3':>10} "
        f"{'max':>10} {'mean':>10}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for name, stats in rows.items():
        lines.append(
            f"{name:<{name_width}}  "
            f"{stats.minimum:>10.3e} {stats.q1:>10.3e} "
            f"{stats.median:>10.3e} {stats.q3:>10.3e} "
            f"{stats.maximum:>10.3e} {stats.mean:>10.3e}"
        )
    lines.append(f"({value_name}; box over per-combination means)")
    return "\n".join(lines)


def format_series_table(
    title: str,
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence[float]],
) -> str:
    """Render one row per x value with one column per series."""
    names = list(series)
    widths = [max(len(n), 10) for n in names]
    header = f"{x_label:>12}  " + "  ".join(
        f"{n:>{w}}" for n, w in zip(names, widths)
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for i, x in enumerate(x_values):
        cells = "  ".join(
            f"{series[n][i]:>{w}.3e}" for n, w in zip(names, widths)
        )
        lines.append(f"{str(x):>12}  {cells}")
    return "\n".join(lines)


def format_grid_table(
    title: str,
    axis_names: Sequence[str],
    rows: Sequence[tuple[Mapping[str, str], Mapping[str, float]]],
) -> str:
    """Cross-scenario summary of a grid campaign.

    ``rows`` pairs each grid cell's coordinates (axis -> formatted
    value) with its metrics (name -> float); one table row per cell,
    one left-aligned column per axis and one right-aligned column per
    metric.  Metric columns follow the first row's ordering, so the
    rendering is a pure function of the rows — the grid report step
    relies on that for byte-identical ``--jobs 1`` / ``--jobs N``
    output.
    """
    axis_names = list(axis_names)
    metric_names = list(rows[0][1]) if rows else []
    axis_widths = [
        max([len(name)] + [len(str(coords.get(name, ""))) for coords, _ in rows])
        for name in axis_names
    ]
    metric_widths = [max(len(name), 10) for name in metric_names]
    header = "  ".join(
        [
            f"{name:<{w}}"
            for name, w in zip(axis_names, axis_widths)
        ]
        + [
            f"{name:>{w}}"
            for name, w in zip(metric_names, metric_widths)
        ]
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for coords, metrics in rows:
        cells = [
            f"{str(coords.get(name, '')):<{w}}"
            for name, w in zip(axis_names, axis_widths)
        ] + [
            f"{metrics[name]:>{w}.3e}"
            for name, w in zip(metric_names, metric_widths)
        ]
        lines.append("  ".join(cells))
    return "\n".join(lines)


def format_timeline(
    successes: Sequence[bool],
    blocked: Sequence[bool],
    width: int = 100,
) -> str:
    """Fig. 15-style strip: decoding success/failure vs LoS blockage."""
    n = min(len(successes), width)
    decode_row = "".join("." if successes[i] else "X" for i in range(n))
    block_row = "".join("#" if blocked[i] else " " for i in range(n))
    return (
        "decode : " + decode_row + "\n"
        "blocked: " + block_row + "\n"
        "('.'=success, 'X'=packet error, '#'=LoS blocked)"
    )


def format_policy_timeline(
    rows: Mapping[str, str],
    blocked: Sequence[bool],
    width: int = 100,
    offset: int = 0,
) -> str:
    """Aligned multi-row timeline: one symbol strip per policy vs blockage.

    ``rows`` maps a policy name to its per-slot symbol string (``.``
    success, ``X`` failed attempt, ``d`` deferred slot); ``blocked``
    flags the slots where the walker shadows the LoS.  ``offset``/
    ``width`` window the strips onto the interesting span (e.g. around a
    blockage event).  Used by the streaming link-adaptation figure.
    """
    name_width = max([len(name) for name in rows] + [len("blocked")])
    lo = max(0, offset)
    hi = lo + width
    lines = [
        f"{'blocked':<{name_width}}: "
        + "".join("#" if b else " " for b in list(blocked)[lo:hi])
    ]
    for name, symbols in rows.items():
        lines.append(f"{name:<{name_width}}: " + symbols[lo:hi])
    lines.append(
        "('.'=delivered, 'X'=failed attempt, 'd'=deferred, "
        "'#'=LoS blocked)"
    )
    return "\n".join(lines)
