"""Comparison metrics (paper Sec. 5.5), stream metrics and box statistics.

- **PER**: erroneous packets / transmitted packets.  A packet is erroneous
  when no estimate was available (preamble-detection failure for the
  preamble-based technique) or when the decoded PSDU differs from the
  transmitted one (FCS mismatch).
- **CER**: erroneous chips / total PSDU chips after equalization
  (8128 chips per 127-byte packet).
- **MSE**: Eq. 9 against the perfect (whole-packet LS) estimate, computed
  in the canonical phase domain.

:class:`StreamMetrics` aggregates the closed-loop link-adaptation
counters of :mod:`repro.stream.simulator` (goodput, outage,
deadline-miss, deferral).  Every ratio is defined for empty runs — zero
attempts, zero offered packets — so stream payloads never contain NaN
or raise on division (the edge cases are pinned in
``tests/experiments/test_stream_metrics.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from ..errors import ShapeError

#: Default bound of a :class:`LatencyReservoir`.  Big enough that p999
#: over a capacity run is estimated from thousands of samples, small
#: enough that 10k links cannot grow service memory without bound.
RESERVOIR_CAPACITY = 4096


@dataclass
class PacketOutcome:
    """Per-packet, per-technique decoding outcome."""

    packet_error: bool
    chip_errors: int
    total_chips: int
    mse: float | None
    estimate_available: bool


@dataclass
class TechniqueResult:
    """Aggregated outcomes of one technique over one test set."""

    name: str
    outcomes: list[PacketOutcome] = field(default_factory=list)

    def add(self, outcome: PacketOutcome) -> None:
        self.outcomes.append(outcome)

    @property
    def num_packets(self) -> int:
        return len(self.outcomes)

    @property
    def per(self) -> float:
        """Packet error rate; raises :class:`ShapeError` on zero packets
        (never a 0/0 NaN — an empty result is a caller bug)."""
        if not self.outcomes:
            raise ShapeError(f"no outcomes recorded for {self.name!r}")
        return float(np.mean([o.packet_error for o in self.outcomes]))

    @property
    def cer(self) -> float:
        """Chip error rate; raises :class:`ShapeError` on zero packets or
        zero recorded chips instead of dividing by zero.  All-unavailable
        results are well-defined (every chip counts as erroneous)."""
        if not self.outcomes:
            raise ShapeError(f"no outcomes recorded for {self.name!r}")
        chips = sum(o.total_chips for o in self.outcomes)
        errors = sum(o.chip_errors for o in self.outcomes)
        if chips == 0:
            raise ShapeError(f"no chips recorded for {self.name!r}")
        return errors / chips

    @property
    def mse(self) -> float:
        """Mean Eq. 9 MSE over packets that carried a canonical estimate;
        NaN when none did (zero-packet and all-unavailable results)."""
        values = [o.mse for o in self.outcomes if o.mse is not None]
        if not values:
            return float("nan")
        return float(np.mean(values))

    @property
    def availability(self) -> float:
        """Fraction of packets for which an estimate existed (0.0 for
        all-unavailable results); raises on zero packets like :attr:`per`."""
        if not self.outcomes:
            raise ShapeError(f"no outcomes recorded for {self.name!r}")
        return float(np.mean([o.estimate_available for o in self.outcomes]))


class LatencyReservoir:
    """Bounded, deterministic latency sample (Algorithm R) + exact sums.

    ``ServiceStats.latencies_s`` used to append every request forever —
    an unbounded memory leak at 10k links.  The reservoir keeps a
    uniform sample of at most ``capacity`` values plus *exact* running
    count / sum / max, so means stay exact while quantiles (p50 / p99 /
    p999) are estimated from the sample.  Replacement indices come from
    a :class:`random.Random` seeded with a *string* (string seeding
    hashes via sha512, so the stream is identical across processes and
    platforms) — the reservoir is a pure function of the seed and the
    value sequence, which keeps SLA payloads byte-identical across
    repeat runs and ``--jobs N``.
    """

    def __init__(
        self,
        capacity: int = RESERVOIR_CAPACITY,
        seed: str = "latency",
    ) -> None:
        if capacity < 1:
            raise ShapeError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.seed = str(seed)
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self.samples: list[float] = []
        self._rng = random.Random(f"reservoir:{self.seed}")
        #: Persisted (p50, p99, p999) of a payload-reloaded reservoir —
        #: samples are not persisted, only their summary, so reloaded
        #: metrics answer :meth:`quantiles` from here.
        self._loaded_quantiles: tuple[float, float, float] | None = None

    def add(self, value_s: float) -> None:
        """Record one latency sample (seconds)."""
        value_s = float(value_s)
        self.count += 1
        self.total_s += value_s
        if value_s > self.max_s:
            self.max_s = value_s
        if len(self.samples) < self.capacity:
            self.samples.append(value_s)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self.samples[slot] = value_s

    def extend(self, values_s) -> None:
        for value_s in values_s:
            self.add(value_s)

    @property
    def mean_s(self) -> float:
        """Exact mean latency (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total_s / self.count

    def percentiles(self, qs) -> list[float]:
        """Sample-estimated percentiles, ``0.0`` each when empty."""
        if not self.samples:
            return [0.0 for _ in qs]
        values = np.percentile(self.samples, list(qs))
        return [float(v) for v in values]

    def quantiles(self) -> tuple[float, float, float]:
        """(p50, p99, p999) latency in seconds — the SLA trio.

        Falls back to the persisted summary when the reservoir was
        reloaded from a payload (samples are never persisted)."""
        if not self.samples and self._loaded_quantiles is not None:
            return self._loaded_quantiles
        p50, p99, p999 = self.percentiles([50, 99, 99.9])
        return p50, p99, p999

    def merge(self, other: "LatencyReservoir") -> "LatencyReservoir":
        """Fold another reservoir in (replays its sample through
        Algorithm R, so the merge is deterministic; exact count / sum /
        max stay exact)."""
        self.total_s += other.total_s
        if other.max_s > self.max_s:
            self.max_s = other.max_s
        for value_s in other.samples:
            self.count += 1
            if len(self.samples) < self.capacity:
                self.samples.append(value_s)
                continue
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self.samples[slot] = value_s
        self.count += other.count - len(other.samples)
        return self

    def as_dict(self) -> dict:
        """Deterministic JSON-able summary (not the raw sample)."""
        p50, p99, p999 = self.quantiles()
        return {
            "count": self.count,
            "mean_s": self.mean_s,
            "max_s": self.max_s,
            "p50_s": p50,
            "p99_s": p99,
            "p999_s": p999,
        }


@dataclass
class ClassMetrics:
    """Per-QoS-class SLA counters of one capacity / stream run.

    Mirrors the :class:`StreamMetrics` philosophy: plain summing
    counters, total-function ratios (zero offered / zero duration are
    well-defined), :meth:`merge` for per-link -> aggregate folding.
    Latency is carried as a :class:`LatencyReservoir` so per-class
    p50/p99/p999 survive into payloads without unbounded lists.
    """

    #: Packets that arrived for this class.
    offered: int = 0
    #: Arrivals accepted by admission control.
    admitted: int = 0
    #: Arrivals rejected (load shedding / admission limit).
    shed: int = 0
    #: Admitted packets delivered within their deadline.
    delivered: int = 0
    #: Admitted packets dropped because their deadline passed.
    deadline_misses: int = 0
    #: Simulated time covered by the counters.
    duration_s: float = 0.0
    #: Prediction latency of served requests in this class.
    latency: LatencyReservoir = field(
        default_factory=lambda: LatencyReservoir(seed="class")
    )

    @property
    def shed_rate(self) -> float:
        """Shed arrivals / offered arrivals (0.0 when idle)."""
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered

    @property
    def deadline_miss_rate(self) -> float:
        """Deadline misses / *offered* arrivals — shedding a packet
        never improves the SLO (0.0 when idle)."""
        if self.offered == 0:
            return 0.0
        return self.deadline_misses / self.offered

    @property
    def slo_miss_rate(self) -> float:
        """(deadline misses + shed) / offered — the rate SLO verdicts
        use: shedding a packet never improves the SLO (0.0 when idle)."""
        if self.offered == 0:
            return 0.0
        return (self.deadline_misses + self.shed) / self.offered

    @property
    def delivery_rate(self) -> float:
        """Delivered / offered arrivals (0.0 when idle)."""
        if self.offered == 0:
            return 0.0
        return self.delivered / self.offered

    @property
    def goodput_pps(self) -> float:
        """Delivered packets per second of simulated time."""
        if self.duration_s <= 0.0:
            return 0.0
        return self.delivered / self.duration_s

    def merge(self, other: "ClassMetrics") -> "ClassMetrics":
        """Accumulate another link's class counters into this one."""
        self.offered += other.offered
        self.admitted += other.admitted
        self.shed += other.shed
        self.delivered += other.delivered
        self.deadline_misses += other.deadline_misses
        self.duration_s = max(self.duration_s, other.duration_s)
        self.latency.merge(other.latency)
        return self

    def as_dict(self) -> dict:
        """Deterministic JSON-able form (counters + ratios + latency)."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "delivered": self.delivered,
            "deadline_misses": self.deadline_misses,
            "duration_s": self.duration_s,
            "shed_rate": self.shed_rate,
            "deadline_miss_rate": self.deadline_miss_rate,
            "slo_miss_rate": self.slo_miss_rate,
            "delivery_rate": self.delivery_rate,
            "goodput_pps": self.goodput_pps,
            "latency": self.latency.as_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ClassMetrics":
        """Rebuild counters from :meth:`as_dict` output.

        The latency reservoir is summary-only in payloads, so the
        rebuilt instance carries the exact count / sum / max but an
        empty sample (quantiles of reloaded metrics read from the
        persisted summary, not from here).
        """
        metrics = cls(
            offered=int(payload.get("offered", 0)),
            admitted=int(payload.get("admitted", 0)),
            shed=int(payload.get("shed", 0)),
            delivered=int(payload.get("delivered", 0)),
            deadline_misses=int(payload.get("deadline_misses", 0)),
            duration_s=float(payload.get("duration_s", 0.0)),
        )
        latency = payload.get("latency", {})
        metrics.latency.count = int(latency.get("count", 0))
        metrics.latency.total_s = float(
            latency.get("count", 0)
        ) * float(latency.get("mean_s", 0.0))
        metrics.latency.max_s = float(latency.get("max_s", 0.0))
        metrics.latency._loaded_quantiles = (
            float(latency.get("p50_s", 0.0)),
            float(latency.get("p99_s", 0.0)),
            float(latency.get("p999_s", 0.0)),
        )
        return metrics


@dataclass
class StreamMetrics:
    """Closed-loop counters of one policy over one (or many) links.

    Counters are plain sums, so per-link instances combine into an
    aggregate with :meth:`merge`.  The derived ratios are total
    functions: a run with zero attempts has outage 0.0 (nothing was
    transmitted, nothing failed), a run with zero offered packets has
    deadline-miss rate 0.0, and a zero-duration run has goodput 0.0 —
    no division by zero, no NaN in persisted payloads.
    """

    #: Packets that arrived at the link's transmit queue.
    offered: int = 0
    #: Packets successfully delivered (decoded with matching PSDU).
    delivered: int = 0
    #: Transmission attempts (retransmissions included).
    attempts: int = 0
    #: Attempts that failed to decode.
    failures: int = 0
    #: Slots where the policy chose not to transmit.
    deferrals: int = 0
    #: Offered packets dropped because their deadline passed undelivered.
    deadline_misses: int = 0
    #: Packet slots this link served inside a *degraded* prediction
    #: round — the service raised or blew the round deadline, so the
    #: proactive policy could not be consulted (merged totals sum
    #: link-slots, so N links in one degraded round count N).
    degraded_rounds: int = 0
    #: Decisions delegated to the reactive fallback policy during
    #: degraded rounds.
    fallback_decisions: int = 0
    #: Simulated wall time covered by the counters.
    duration_s: float = 0.0
    #: Per-QoS-class SLA breakdown (empty for homogeneous replay runs —
    #: and *elided* from payloads when empty, so pre-SLA stream
    #: payloads stay byte-identical).
    classes: dict[str, ClassMetrics] = field(default_factory=dict)

    @property
    def goodput_pps(self) -> float:
        """Delivered packets per second of simulated time."""
        if self.duration_s <= 0.0:
            return 0.0
        return self.delivered / self.duration_s

    @property
    def outage(self) -> float:
        """Failed transmission attempts / attempts (0.0 when idle)."""
        if self.attempts == 0:
            return 0.0
        return self.failures / self.attempts

    @property
    def deadline_miss_rate(self) -> float:
        """Deadline-expired packets / offered packets (0.0 when idle)."""
        if self.offered == 0:
            return 0.0
        return self.deadline_misses / self.offered

    @property
    def defer_rate(self) -> float:
        """Deferred slots / decision slots (0.0 when idle)."""
        decisions = self.attempts + self.deferrals
        if decisions == 0:
            return 0.0
        return self.deferrals / decisions

    @property
    def delivery_rate(self) -> float:
        """Delivered / offered packets (0.0 when idle)."""
        if self.offered == 0:
            return 0.0
        return self.delivered / self.offered

    def merge(self, other: "StreamMetrics") -> "StreamMetrics":
        """Accumulate another link's counters into this instance."""
        self.offered += other.offered
        self.delivered += other.delivered
        self.attempts += other.attempts
        self.failures += other.failures
        self.deferrals += other.deferrals
        self.deadline_misses += other.deadline_misses
        self.degraded_rounds += other.degraded_rounds
        self.fallback_decisions += other.fallback_decisions
        self.duration_s = max(self.duration_s, other.duration_s)
        for name, theirs in other.classes.items():
            if name in self.classes:
                self.classes[name].merge(theirs)
            else:
                mine = ClassMetrics()
                mine.merge(theirs)
                self.classes[name] = mine
        return self

    def as_dict(self) -> dict:
        """Deterministic JSON-able form (counters + derived ratios).

        ``classes`` is emitted only when non-empty: homogeneous replay
        payloads (the byte-identity back-compat pin) never carried the
        key and must not start doing so.
        """
        payload = {
            "offered": self.offered,
            "delivered": self.delivered,
            "attempts": self.attempts,
            "failures": self.failures,
            "deferrals": self.deferrals,
            "deadline_misses": self.deadline_misses,
            "degraded_rounds": self.degraded_rounds,
            "fallback_decisions": self.fallback_decisions,
            "duration_s": self.duration_s,
            "goodput_pps": self.goodput_pps,
            "outage": self.outage,
            "deadline_miss_rate": self.deadline_miss_rate,
            "defer_rate": self.defer_rate,
            "delivery_rate": self.delivery_rate,
        }
        if self.classes:
            payload["classes"] = {
                name: self.classes[name].as_dict()
                for name in sorted(self.classes)
            }
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "StreamMetrics":
        """Rebuild the counters from :meth:`as_dict` output.

        The degraded-mode counters default to 0 and ``classes`` to an
        empty map, so payloads persisted before they existed keep
        loading.
        """
        return cls(
            offered=int(payload["offered"]),
            delivered=int(payload["delivered"]),
            attempts=int(payload["attempts"]),
            failures=int(payload["failures"]),
            deferrals=int(payload["deferrals"]),
            deadline_misses=int(payload["deadline_misses"]),
            degraded_rounds=int(payload.get("degraded_rounds", 0)),
            fallback_decisions=int(
                payload.get("fallback_decisions", 0)
            ),
            duration_s=float(payload["duration_s"]),
            classes={
                name: ClassMetrics.from_dict(entry)
                for name, entry in sorted(
                    payload.get("classes", {}).items()
                )
            },
        )


def packet_error_rate(results: list[TechniqueResult]) -> np.ndarray:
    """PER per test set for one technique across combinations."""
    return np.array([r.per for r in results])


def chip_error_rate(results: list[TechniqueResult]) -> np.ndarray:
    return np.array([r.cer for r in results])


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary used to reproduce the paper's box plots."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    def as_row(self) -> str:
        return (
            f"min={self.minimum:.3e} q1={self.q1:.3e} "
            f"med={self.median:.3e} q3={self.q3:.3e} "
            f"max={self.maximum:.3e} mean={self.mean:.3e}"
        )


def box_stats(values) -> BoxStats:
    """Five-number summary of the 15 per-combination means (Sec. 6)."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ShapeError("box_stats of an empty sequence")
    finite = array[np.isfinite(array)]
    if finite.size == 0:
        raise ShapeError("box_stats of all-NaN values")
    q1, median, q3 = np.percentile(finite, [25, 50, 75])
    return BoxStats(
        minimum=float(finite.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(finite.max()),
        mean=float(finite.mean()),
    )
