"""Comparison metrics (paper Sec. 5.5) and box-plot statistics.

- **PER**: erroneous packets / transmitted packets.  A packet is erroneous
  when no estimate was available (preamble-detection failure for the
  preamble-based technique) or when the decoded PSDU differs from the
  transmitted one (FCS mismatch).
- **CER**: erroneous chips / total PSDU chips after equalization
  (8128 chips per 127-byte packet).
- **MSE**: Eq. 9 against the perfect (whole-packet LS) estimate, computed
  in the canonical phase domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ShapeError


@dataclass
class PacketOutcome:
    """Per-packet, per-technique decoding outcome."""

    packet_error: bool
    chip_errors: int
    total_chips: int
    mse: float | None
    estimate_available: bool


@dataclass
class TechniqueResult:
    """Aggregated outcomes of one technique over one test set."""

    name: str
    outcomes: list[PacketOutcome] = field(default_factory=list)

    def add(self, outcome: PacketOutcome) -> None:
        self.outcomes.append(outcome)

    @property
    def num_packets(self) -> int:
        return len(self.outcomes)

    @property
    def per(self) -> float:
        if not self.outcomes:
            raise ShapeError("no outcomes recorded")
        return float(np.mean([o.packet_error for o in self.outcomes]))

    @property
    def cer(self) -> float:
        if not self.outcomes:
            raise ShapeError("no outcomes recorded")
        chips = sum(o.total_chips for o in self.outcomes)
        errors = sum(o.chip_errors for o in self.outcomes)
        if chips == 0:
            raise ShapeError("no chips recorded")
        return errors / chips

    @property
    def mse(self) -> float:
        values = [o.mse for o in self.outcomes if o.mse is not None]
        if not values:
            return float("nan")
        return float(np.mean(values))

    @property
    def availability(self) -> float:
        """Fraction of packets for which an estimate existed."""
        if not self.outcomes:
            raise ShapeError("no outcomes recorded")
        return float(np.mean([o.estimate_available for o in self.outcomes]))


def packet_error_rate(results: list[TechniqueResult]) -> np.ndarray:
    """PER per test set for one technique across combinations."""
    return np.array([r.per for r in results])


def chip_error_rate(results: list[TechniqueResult]) -> np.ndarray:
    return np.array([r.cer for r in results])


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary used to reproduce the paper's box plots."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    def as_row(self) -> str:
        return (
            f"min={self.minimum:.3e} q1={self.q1:.3e} "
            f"med={self.median:.3e} q3={self.q3:.3e} "
            f"max={self.maximum:.3e} mean={self.mean:.3e}"
        )


def box_stats(values) -> BoxStats:
    """Five-number summary of the 15 per-combination means (Sec. 6)."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ShapeError("box_stats of an empty sequence")
    finite = array[np.isfinite(array)]
    if finite.size == 0:
        raise ShapeError("box_stats of all-NaN values")
    q1, median, q3 = np.percentile(finite, [25, 50, 75])
    return BoxStats(
        minimum=float(finite.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(finite.max()),
        mean=float(finite.mean()),
    )
