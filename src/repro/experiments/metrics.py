"""Comparison metrics (paper Sec. 5.5), stream metrics and box statistics.

- **PER**: erroneous packets / transmitted packets.  A packet is erroneous
  when no estimate was available (preamble-detection failure for the
  preamble-based technique) or when the decoded PSDU differs from the
  transmitted one (FCS mismatch).
- **CER**: erroneous chips / total PSDU chips after equalization
  (8128 chips per 127-byte packet).
- **MSE**: Eq. 9 against the perfect (whole-packet LS) estimate, computed
  in the canonical phase domain.

:class:`StreamMetrics` aggregates the closed-loop link-adaptation
counters of :mod:`repro.stream.simulator` (goodput, outage,
deadline-miss, deferral).  Every ratio is defined for empty runs — zero
attempts, zero offered packets — so stream payloads never contain NaN
or raise on division (the edge cases are pinned in
``tests/experiments/test_stream_metrics.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ShapeError


@dataclass
class PacketOutcome:
    """Per-packet, per-technique decoding outcome."""

    packet_error: bool
    chip_errors: int
    total_chips: int
    mse: float | None
    estimate_available: bool


@dataclass
class TechniqueResult:
    """Aggregated outcomes of one technique over one test set."""

    name: str
    outcomes: list[PacketOutcome] = field(default_factory=list)

    def add(self, outcome: PacketOutcome) -> None:
        self.outcomes.append(outcome)

    @property
    def num_packets(self) -> int:
        return len(self.outcomes)

    @property
    def per(self) -> float:
        """Packet error rate; raises :class:`ShapeError` on zero packets
        (never a 0/0 NaN — an empty result is a caller bug)."""
        if not self.outcomes:
            raise ShapeError(f"no outcomes recorded for {self.name!r}")
        return float(np.mean([o.packet_error for o in self.outcomes]))

    @property
    def cer(self) -> float:
        """Chip error rate; raises :class:`ShapeError` on zero packets or
        zero recorded chips instead of dividing by zero.  All-unavailable
        results are well-defined (every chip counts as erroneous)."""
        if not self.outcomes:
            raise ShapeError(f"no outcomes recorded for {self.name!r}")
        chips = sum(o.total_chips for o in self.outcomes)
        errors = sum(o.chip_errors for o in self.outcomes)
        if chips == 0:
            raise ShapeError(f"no chips recorded for {self.name!r}")
        return errors / chips

    @property
    def mse(self) -> float:
        """Mean Eq. 9 MSE over packets that carried a canonical estimate;
        NaN when none did (zero-packet and all-unavailable results)."""
        values = [o.mse for o in self.outcomes if o.mse is not None]
        if not values:
            return float("nan")
        return float(np.mean(values))

    @property
    def availability(self) -> float:
        """Fraction of packets for which an estimate existed (0.0 for
        all-unavailable results); raises on zero packets like :attr:`per`."""
        if not self.outcomes:
            raise ShapeError(f"no outcomes recorded for {self.name!r}")
        return float(np.mean([o.estimate_available for o in self.outcomes]))


@dataclass
class StreamMetrics:
    """Closed-loop counters of one policy over one (or many) links.

    Counters are plain sums, so per-link instances combine into an
    aggregate with :meth:`merge`.  The derived ratios are total
    functions: a run with zero attempts has outage 0.0 (nothing was
    transmitted, nothing failed), a run with zero offered packets has
    deadline-miss rate 0.0, and a zero-duration run has goodput 0.0 —
    no division by zero, no NaN in persisted payloads.
    """

    #: Packets that arrived at the link's transmit queue.
    offered: int = 0
    #: Packets successfully delivered (decoded with matching PSDU).
    delivered: int = 0
    #: Transmission attempts (retransmissions included).
    attempts: int = 0
    #: Attempts that failed to decode.
    failures: int = 0
    #: Slots where the policy chose not to transmit.
    deferrals: int = 0
    #: Offered packets dropped because their deadline passed undelivered.
    deadline_misses: int = 0
    #: Packet slots this link served inside a *degraded* prediction
    #: round — the service raised or blew the round deadline, so the
    #: proactive policy could not be consulted (merged totals sum
    #: link-slots, so N links in one degraded round count N).
    degraded_rounds: int = 0
    #: Decisions delegated to the reactive fallback policy during
    #: degraded rounds.
    fallback_decisions: int = 0
    #: Simulated wall time covered by the counters.
    duration_s: float = 0.0

    @property
    def goodput_pps(self) -> float:
        """Delivered packets per second of simulated time."""
        if self.duration_s <= 0.0:
            return 0.0
        return self.delivered / self.duration_s

    @property
    def outage(self) -> float:
        """Failed transmission attempts / attempts (0.0 when idle)."""
        if self.attempts == 0:
            return 0.0
        return self.failures / self.attempts

    @property
    def deadline_miss_rate(self) -> float:
        """Deadline-expired packets / offered packets (0.0 when idle)."""
        if self.offered == 0:
            return 0.0
        return self.deadline_misses / self.offered

    @property
    def defer_rate(self) -> float:
        """Deferred slots / decision slots (0.0 when idle)."""
        decisions = self.attempts + self.deferrals
        if decisions == 0:
            return 0.0
        return self.deferrals / decisions

    @property
    def delivery_rate(self) -> float:
        """Delivered / offered packets (0.0 when idle)."""
        if self.offered == 0:
            return 0.0
        return self.delivered / self.offered

    def merge(self, other: "StreamMetrics") -> "StreamMetrics":
        """Accumulate another link's counters into this instance."""
        self.offered += other.offered
        self.delivered += other.delivered
        self.attempts += other.attempts
        self.failures += other.failures
        self.deferrals += other.deferrals
        self.deadline_misses += other.deadline_misses
        self.degraded_rounds += other.degraded_rounds
        self.fallback_decisions += other.fallback_decisions
        self.duration_s = max(self.duration_s, other.duration_s)
        return self

    def as_dict(self) -> dict:
        """Deterministic JSON-able form (counters + derived ratios)."""
        return {
            "offered": self.offered,
            "delivered": self.delivered,
            "attempts": self.attempts,
            "failures": self.failures,
            "deferrals": self.deferrals,
            "deadline_misses": self.deadline_misses,
            "degraded_rounds": self.degraded_rounds,
            "fallback_decisions": self.fallback_decisions,
            "duration_s": self.duration_s,
            "goodput_pps": self.goodput_pps,
            "outage": self.outage,
            "deadline_miss_rate": self.deadline_miss_rate,
            "defer_rate": self.defer_rate,
            "delivery_rate": self.delivery_rate,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StreamMetrics":
        """Rebuild the counters from :meth:`as_dict` output.

        The degraded-mode counters default to 0 so payloads persisted
        before they existed keep loading.
        """
        return cls(
            offered=int(payload["offered"]),
            delivered=int(payload["delivered"]),
            attempts=int(payload["attempts"]),
            failures=int(payload["failures"]),
            deferrals=int(payload["deferrals"]),
            deadline_misses=int(payload["deadline_misses"]),
            degraded_rounds=int(payload.get("degraded_rounds", 0)),
            fallback_decisions=int(
                payload.get("fallback_decisions", 0)
            ),
            duration_s=float(payload["duration_s"]),
        )


def packet_error_rate(results: list[TechniqueResult]) -> np.ndarray:
    """PER per test set for one technique across combinations."""
    return np.array([r.per for r in results])


def chip_error_rate(results: list[TechniqueResult]) -> np.ndarray:
    return np.array([r.cer for r in results])


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary used to reproduce the paper's box plots."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    def as_row(self) -> str:
        return (
            f"min={self.minimum:.3e} q1={self.q1:.3e} "
            f"med={self.median:.3e} q3={self.q3:.3e} "
            f"max={self.maximum:.3e} mean={self.mean:.3e}"
        )


def box_stats(values) -> BoxStats:
    """Five-number summary of the 15 per-combination means (Sec. 6)."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ShapeError("box_stats of an empty sequence")
    finite = array[np.isfinite(array)]
    if finite.size == 0:
        raise ShapeError("box_stats of all-NaN values")
    q1, median, q3 = np.percentile(finite, [25, 50, 75])
    return BoxStats(
        minimum=float(finite.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(finite.max()),
        mean=float(finite.mean()),
    )
