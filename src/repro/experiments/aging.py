"""Aging experiments (paper Sec. 6.5, Figs. 16-17).

An estimate aged by ``k`` packets (``k * 100 ms``) is used to decode the
current packet: Preamble-Genie ages its SHR estimate; VVD ages its input
image (the frame ``k * 3`` frames in the past).  MSE is measured against
the current perfect estimate; PER through the normal decode path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.vvd import VVDEstimator
from ..dataset.sets import SetCombination
from ..errors import ConfigurationError
from ..estimation.base import (
    Capabilities,
    ChannelEstimate,
    ChannelEstimator,
    PacketContext,
)
from .runner import EvaluationRunner


class AgedPreambleGenie(ChannelEstimator):
    """Preamble-Genie estimate from ``lag_packets`` packets ago."""

    capabilities = Capabilities(reliable=True, scalable=False, dynamic=False)

    def __init__(self, lag_packets: int) -> None:
        if lag_packets < 0:
            raise ConfigurationError("lag_packets must be >= 0")
        self.lag_packets = lag_packets
        self.name = f"Preamble Genie (-{lag_packets * 0.1:.1f}s)"

    def estimate(self, ctx: PacketContext) -> Optional[ChannelEstimate]:
        source = max(ctx.index - self.lag_packets, 0)
        record = ctx.measurement_set.packets[source]
        if self.lag_packets == 0:
            return ChannelEstimate(
                taps=record.h_preamble,
                needs_phase_alignment=False,
                canonical_taps=record.h_preamble_canonical,
            )
        return ChannelEstimate(
            taps=record.h_preamble_canonical,
            needs_phase_alignment=True,
            canonical_taps=record.h_preamble_canonical,
        )


class AgedVVD(ChannelEstimator):
    """A trained VVD evaluated on an aged input image."""

    capabilities = Capabilities(reliable=True, scalable=True, dynamic=True)

    def __init__(self, vvd: VVDEstimator, lag_frames: int) -> None:
        if lag_frames < 0:
            raise ConfigurationError("lag_frames must be >= 0")
        self.vvd = vvd
        self.lag_frames = lag_frames
        self.name = f"VVD (-{lag_frames / 30:.1f}s)"

    def prepare(self, training_sets, validation_sets, config) -> None:
        self.vvd.prepare(training_sets, validation_sets, config)

    def reset(self, test_set) -> None:
        self.vvd.reset(test_set)

    def estimate(self, ctx: PacketContext) -> Optional[ChannelEstimate]:
        frame_index = max(ctx.record.frame_index - self.lag_frames, 0)
        taps = self.vvd._predict_frame(ctx.measurement_set, frame_index)
        return ChannelEstimate(
            taps=taps, needs_phase_alignment=True, canonical_taps=taps
        )


@dataclass
class AgingResult:
    """Figs. 16-17 series: metric vs estimate age."""

    ages_s: list[float]
    genie_mse: list[float]
    vvd_mse: list[float]
    genie_per: list[float]
    vvd_per: list[float]


def run_aging_experiment(
    runner: EvaluationRunner,
    combination: SetCombination,
    ages_s: Sequence[float],
    vvd: VVDEstimator | None = None,
    frames_per_packet: int = 3,
) -> AgingResult:
    """Evaluate aged Genie and aged VVD over one combination.

    ``ages_s`` must be multiples of the packet interval; age 0 is the
    "Original" column of Figs. 16-17.  ``skip_initial`` is raised to the
    largest lag so every evaluated packet has a full history.
    """
    interval = runner.components.config.dataset.packet_interval_s
    lags = [int(round(age / interval)) for age in ages_s]
    packets_per_set = runner.components.config.dataset.packets_per_set
    if max(lags) >= packets_per_set:
        raise ConfigurationError(
            f"age {max(ages_s)}s needs more than {packets_per_set} packets "
            "per set; increase packets_per_set or reduce ages"
        )
    shared_vvd = vvd or VVDEstimator(horizon_frames=0)
    estimators: list[ChannelEstimator] = []
    for lag in lags:
        estimators.append(AgedPreambleGenie(lag))
        estimators.append(
            AgedVVD(shared_vvd, lag * frames_per_packet)
        )
    result = runner.run_combination(
        combination, estimators, skip_initial=max(max(lags), 1)
    )
    genie_mse, vvd_mse, genie_per, vvd_per = [], [], [], []
    for lag in lags:
        genie = result.technique(f"Preamble Genie (-{lag * 0.1:.1f}s)")
        aged_vvd = result.technique(
            f"VVD (-{lag * frames_per_packet / 30:.1f}s)"
        )
        genie_mse.append(genie.mse)
        vvd_mse.append(aged_vvd.mse)
        genie_per.append(genie.per)
        vvd_per.append(aged_vvd.per)
    return AgingResult(
        ages_s=list(ages_s),
        genie_mse=genie_mse,
        vvd_mse=vvd_mse,
        genie_per=genie_per,
        vvd_per=vvd_per,
    )
