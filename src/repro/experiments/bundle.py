"""One-stop evaluation bundle shared by the figure generators.

Figures 12, 13, 14 and 15 all aggregate the same underlying evaluation
(the ten-technique suite over Table 2 combinations); building it once and
sharing it across figure benches keeps the harness affordable in pure
numpy.  Figure 11 and the aging figures need different estimator line-ups
and run their own (smaller) evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..config import SimulationConfig
from ..core.vvd import VVDEstimator
from ..dataset import (
    SimulationComponents,
    build_components,
    generate_dataset,
    rotating_set_combinations,
)
from ..dataset.sets import SetCombination
from ..dataset.trace import MeasurementSet
from ..errors import ConfigurationError
from .runner import CombinationResult, EvaluationRunner
from .suite import build_full_suite

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..campaign.cache import DatasetCache
    from ..campaign.models import ModelCheckpointRegistry


@dataclass
class EvaluationBundle:
    """Everything the figure generators need, computed once."""

    config: SimulationConfig
    components: SimulationComponents
    sets: list[MeasurementSet]
    runner: EvaluationRunner
    combinations: list[SetCombination]
    results: list[CombinationResult]
    #: The trained VVD of the first combination (reused by aging figures).
    first_vvd: VVDEstimator | None = field(default=None, repr=False)

    def technique_values(self, name: str, metric: str) -> list[float]:
        """Per-combination means of ``metric`` for one technique."""
        return [
            getattr(result.technique(name), metric)
            for result in self.results
        ]

    def technique_names(self) -> list[str]:
        return list(self.results[0].techniques)


def build_evaluation_bundle(
    config: SimulationConfig,
    num_combinations: int | None = None,
    verbose: bool = False,
    workers: int | None = None,
    cache: "DatasetCache | None" = None,
    sets: list[MeasurementSet] | None = None,
    checkpoints: "ModelCheckpointRegistry | None" = None,
    vvd_seed: int = 7,
) -> EvaluationBundle:
    """Generate the dataset and run the full suite over combinations.

    ``num_combinations`` limits the Table 2 rows evaluated (the benchmark
    preset uses a subset; passing ``None`` runs all of them).
    ``workers`` fans dataset generation out over a process pool.
    ``cache`` resolves the measurement sets through the campaign's
    content-addressed dataset cache instead of regenerating them, and
    ``sets`` short-circuits resolution entirely with already-loaded
    measurement sets (they must belong to ``config``).  ``checkpoints``
    resolves every per-combination VVD training through the campaign's
    content-addressed model registry, so a warmed registry rebuilds the
    bundle without retraining a single CNN — provided ``vvd_seed``
    matches the seed the registry was warmed with (``repro train
    --seed``).
    """
    components = build_components(config)
    if sets is not None:
        sets = list(sets)
    elif cache is not None:
        sets = cache.load_or_generate(
            config, workers=workers, verbose=verbose
        )
    else:
        sets = generate_dataset(
            config, components, verbose=verbose, workers=workers
        )
    runner = EvaluationRunner(components, sets)
    combinations = rotating_set_combinations(config.dataset.num_sets)
    if num_combinations is not None:
        if num_combinations < 1:
            raise ConfigurationError("num_combinations must be >= 1")
        combinations = combinations[:num_combinations]

    results: list[CombinationResult] = []
    first_vvd: VVDEstimator | None = None
    for combination in combinations:
        suite = build_full_suite(
            config, vvd_seed=vvd_seed, checkpoints=checkpoints
        )
        results.append(
            runner.run_combination(combination, suite, verbose=verbose)
        )
        if first_vvd is None:
            first_vvd = next(
                e for e in suite if isinstance(e, VVDEstimator)
            )
    return EvaluationBundle(
        config=config,
        components=components,
        sets=sets,
        runner=runner,
        combinations=combinations,
        results=results,
        first_vvd=first_vvd,
    )
