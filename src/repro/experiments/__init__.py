"""Evaluation harness: runs the techniques of Sec. 5 over the Table 2 set
combinations and regenerates every table and figure of the paper.

- :mod:`repro.experiments.metrics` — PER / CER / channel-MSE (Sec. 5.5)
  and box-plot statistics.
- :mod:`repro.experiments.runner` — the per-combination evaluation loop
  (identical receiver processing for every technique).
- :mod:`repro.experiments.suite` — the default estimator line-ups.
- :mod:`repro.experiments.hypothesis_testing` — Sec. 3.1 / Fig. 5.
- :mod:`repro.experiments.aging` — Sec. 6.5 / Figs. 16-17.
- :mod:`repro.experiments.figures` — one module per paper figure/table.
- :mod:`repro.experiments.reporting` — ASCII rendering of results.
"""

from .metrics import (
    BoxStats,
    PacketOutcome,
    TechniqueResult,
    box_stats,
    chip_error_rate,
    packet_error_rate,
)
from .runner import CombinationResult, EvaluationRunner
from .suite import (
    SUITE_BUILDERS,
    build_baseline_suite,
    build_full_suite,
    build_kalman_variants,
    build_quick_suite,
    build_suite,
    build_vvd_variants,
)
from .reporting import format_box_table, format_series_table

__all__ = [
    "BoxStats",
    "PacketOutcome",
    "TechniqueResult",
    "box_stats",
    "chip_error_rate",
    "packet_error_rate",
    "CombinationResult",
    "EvaluationRunner",
    "SUITE_BUILDERS",
    "build_baseline_suite",
    "build_full_suite",
    "build_kalman_variants",
    "build_quick_suite",
    "build_suite",
    "build_vvd_variants",
    "format_box_table",
    "format_series_table",
]
