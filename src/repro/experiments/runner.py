"""The evaluation loop (paper Sec. 6).

For each Table 2 combination: prepare every technique on the training +
validation sets, then decode every test-set packet with every technique
under identical receiver processing.  Per packet the received waveform is
re-synthesized once and shared across techniques — only the channel
estimate differs, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..config import SimulationConfig
from ..dataset.generator import (
    SimulationComponents,
    build_components,
    synthesize_received_batch,
)
from ..dataset.sets import SetCombination
from ..dataset.trace import MeasurementSet, PacketRecord
from ..dsp.metrics import complex_mse
from ..dsp.phase import correct_phase
from ..errors import DatasetError
from ..obs import log
from ..estimation.base import (
    ChannelEstimate,
    ChannelEstimator,
    PacketContext,
)
from ..phy.transmitter import TransmittedPacket
from .metrics import PacketOutcome, TechniqueResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..campaign.cache import DatasetCache


@dataclass
class CombinationResult:
    """All technique results for one Table 2 combination."""

    combination: SetCombination
    techniques: dict[str, TechniqueResult]

    def technique(self, name: str) -> TechniqueResult:
        if name not in self.techniques:
            raise DatasetError(
                f"no result for technique {name!r}; have "
                f"{sorted(self.techniques)}"
            )
        return self.techniques[name]


class EvaluationRunner:
    """Evaluates estimator suites over set combinations."""

    def __init__(
        self,
        components: SimulationComponents,
        sets: Sequence[MeasurementSet],
    ) -> None:
        self.components = components
        self.sets = list(sets)

    @classmethod
    def from_cache(
        cls,
        config: SimulationConfig,
        cache: "DatasetCache",
        workers: int | None = None,
    ) -> "EvaluationRunner":
        """Build a runner whose sets resolve through the dataset cache.

        Used by :func:`~repro.experiments.snr_sweep.evaluate_snr_point`
        (and thus the campaign CLI): components are constructed from
        ``config`` and the measurement sets are loaded from (or, on a
        miss, generated into) ``cache``.
        """
        components = build_components(config)
        sets = cache.load_or_generate(config, workers=workers)
        return cls(components, sets)

    # -- single-packet decoding ------------------------------------------
    def decode_packet(
        self,
        estimate: ChannelEstimate | None,
        packet: TransmittedPacket,
        received: np.ndarray,
        record: PacketRecord,
    ) -> PacketOutcome:
        """Decode one packet with one technique's estimate (Sec. 5.5)."""
        receiver = self.components.receiver
        layout = receiver.layout
        psdu_slice = layout.psdu_chip_slice
        reference_chips = packet.chips[psdu_slice]
        total_chips = len(reference_chips)

        if estimate is None:
            # Preamble-detection failure: the signal is assumed erroneous.
            return PacketOutcome(
                packet_error=True,
                chip_errors=total_chips,
                total_chips=total_chips,
                mse=None,
                estimate_available=False,
            )

        if estimate.taps is None:
            decoded = receiver.decode_standard(received)
        else:
            taps = estimate.taps
            if estimate.needs_phase_alignment:
                theta = receiver.blind_phase_shift(received, taps)
                taps = correct_phase(taps, theta)
            decoded = receiver.decode_with_estimate(received, taps)

        chip_errors = int(
            np.sum(decoded.hard_chips[psdu_slice] != reference_chips)
        )
        packet_error = decoded.psdu != packet.psdu
        mse = None
        if estimate.canonical_taps is not None:
            mse = complex_mse(
                estimate.canonical_taps, record.h_ls_canonical
            )
        return PacketOutcome(
            packet_error=bool(packet_error),
            chip_errors=chip_errors,
            total_chips=total_chips,
            mse=mse,
            estimate_available=True,
        )

    # -- combination loop --------------------------------------------------
    def run_combination(
        self,
        combination: SetCombination,
        estimators: Sequence[ChannelEstimator],
        skip_initial: int | None = None,
        verbose: bool = False,
    ) -> CombinationResult:
        """Evaluate ``estimators`` on one Table 2 combination."""
        config = self.components.config
        if skip_initial is None:
            skip_initial = config.dataset.skip_initial
        training = [self.sets[i] for i in combination.training_indices()]
        validation = [self.sets[combination.validation_index]]
        test = self.sets[combination.test_index]

        for estimator in estimators:
            estimator.prepare(training, validation, config)
            estimator.reset(test)

        results = {
            estimator.name: TechniqueResult(estimator.name)
            for estimator in estimators
        }
        # Waveform re-synthesis is shared across techniques and batched
        # over packet chunks; the estimator loop itself stays sequential
        # because tracking techniques (Kalman, previous) carry state from
        # packet to packet.
        chunk_size = 64
        for lo in range(0, len(test.packets), chunk_size):
            chunk = test.packets[lo : lo + chunk_size]
            received_rows = synthesize_received_batch(
                self.components, chunk, reuse_buffer=True
            )
            for offset, record in enumerate(chunk):
                index = lo + offset
                packet = self.components.transmitter.transmit(
                    record.sequence_number
                )
                received = received_rows[offset]
                ctx = PacketContext(
                    measurement_set=test,
                    index=index,
                    record=record,
                    received=received,
                    receiver=self.components.receiver,
                )
                for estimator in estimators:
                    estimate = estimator.estimate(ctx)
                    outcome = self.decode_packet(
                        estimate, packet, received, record
                    )
                    if index >= skip_initial:
                        results[estimator.name].add(outcome)
                for estimator in estimators:
                    estimator.observe(ctx)
        if verbose:
            summary = ", ".join(
                f"{name}: PER={result.per:.3f}"
                for name, result in results.items()
            )
            log.info(
                f"combination {combination.number}: {summary}"
            )
        return CombinationResult(
            combination=combination, techniques=results
        )

    def run_combinations(
        self,
        combinations: Sequence[SetCombination],
        estimator_factory: Callable[[], Sequence[ChannelEstimator]],
        skip_initial: int | None = None,
        verbose: bool = False,
    ) -> list[CombinationResult]:
        """Evaluate a fresh estimator suite per combination.

        A factory is required because data-driven techniques (VVD, Kalman)
        must be re-fit for every train/validation/test split.
        """
        results = []
        for combination in combinations:
            estimators = estimator_factory()
            results.append(
                self.run_combination(
                    combination,
                    estimators,
                    skip_initial=skip_initial,
                    verbose=verbose,
                )
            )
        return results
