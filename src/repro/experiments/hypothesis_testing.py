"""Hypothesis testing (paper Sec. 3.1, Figs. 4-5).

Hypothesis 1: mobility with displacement changes MPC amplitude/phase.
Hypothesis 2: identical displacement at different times yields similar
MPCs (up to the mean crystal phase, removed via Eq. 8).

The paper demonstrates this with three frames: a control frame, a frame
with a clearly different human position (H1), and a frame from a later
take with nearly the same position (H2).  We reproduce the analysis by
searching two measurement sets for such packet pairs and comparing their
canonical tap vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataset.trace import MeasurementSet, PacketRecord
from ..dsp.metrics import complex_mse
from ..errors import DatasetError


@dataclass
class HypothesisInstances:
    """The control / H1 / H2 packet triple of Fig. 4."""

    control: PacketRecord
    different: PacketRecord
    similar: PacketRecord
    displacement_h1_m: float
    displacement_h2_m: float


@dataclass
class HypothesisResult:
    """Fig. 5 data plus the quantitative test outcomes."""

    instances: HypothesisInstances
    control_taps: np.ndarray
    different_taps: np.ndarray
    similar_taps: np.ndarray
    mse_h1: float
    mse_h2: float

    @property
    def hypotheses_hold(self) -> bool:
        """H1 and H2 jointly hold when displacement dominates time."""
        return self.mse_h2 < self.mse_h1

    def constellation_points(self) -> dict[str, np.ndarray]:
        """Fig. 5b: complex tap coefficients per instance."""
        return {
            "control": self.control_taps,
            "hypothesis1": self.different_taps,
            "hypothesis2": self.similar_taps,
        }


def _position(record: PacketRecord) -> np.ndarray:
    return np.asarray(record.human_xy, dtype=np.float64)


def find_instances(
    control_set: MeasurementSet,
    probe_sets: "MeasurementSet | list[MeasurementSet]",
    min_time_gap_s: float = 1.0,
) -> HypothesisInstances:
    """Pick control/H1/H2 packets following the Fig. 4 recipe.

    The control packet is chosen near the LoS (maximally interesting
    channel state); H2 is the probe packet closest in position after
    ``min_time_gap_s``; H1 the probe packet farthest in position.
    Several probe sets can be supplied — a short take may simply never
    revisit the control displacement (the paper searched across takes
    recorded an hour apart).
    """
    if isinstance(probe_sets, MeasurementSet):
        probe_sets = [probe_sets]
    if not control_set.packets or not any(s.packets for s in probe_sets):
        raise DatasetError("hypothesis testing needs non-empty sets")
    candidates = [
        p
        for probe_set in probe_sets
        for p in probe_set.packets
        if abs(p.time_s - control_set.packets[0].time_s) >= min_time_gap_s
        or probe_set.index != control_set.index
    ]
    if not candidates:
        raise DatasetError("no probe packets outside the time gap")
    candidate_positions = np.stack([_position(p) for p in candidates])

    # Choose the control packet whose closest probe-set position is the
    # tightest match available — H2 needs a genuinely similar displacement
    # (the paper hand-picked frames 497/4266 for the same reason).
    # Prefer interesting (LoS-blocking) controls when the match quality
    # is comparable.
    best = None
    for control in control_set.packets:
        deltas = np.linalg.norm(
            candidate_positions - _position(control), axis=1
        )
        nearest = float(np.min(deltas))
        preference = nearest - (0.05 if control.los_blocked else 0.0)
        if best is None or preference < best[0]:
            best = (preference, control, deltas)
    _, control, distances = best
    similar = candidates[int(np.argmin(distances))]
    different = candidates[int(np.argmax(distances))]
    return HypothesisInstances(
        control=control,
        different=different,
        similar=similar,
        displacement_h1_m=float(np.max(distances)),
        displacement_h2_m=float(np.min(distances)),
    )


def run_hypothesis_test(
    control_set: MeasurementSet,
    probe_sets: "MeasurementSet | list[MeasurementSet]",
    min_time_gap_s: float = 1.0,
) -> HypothesisResult:
    """Produce the Fig. 5 comparison for the selected instances."""
    instances = find_instances(control_set, probe_sets, min_time_gap_s)
    control = instances.control.h_ls_canonical
    different = instances.different.h_ls_canonical
    similar = instances.similar.h_ls_canonical
    return HypothesisResult(
        instances=instances,
        control_taps=control,
        different_taps=different,
        similar_taps=similar,
        mse_h1=complex_mse(different, control),
        mse_h2=complex_mse(similar, control),
    )


def tap_magnitude_table(result: HypothesisResult) -> str:
    """Fig. 5a as an ASCII table (tap index vs |coefficient|)."""
    lines = [
        "Fig. 5a — tap coefficient magnitudes",
        f"{'tap':>4} {'control':>10} {'hyp1':>10} {'hyp2':>10}",
    ]
    for tap in range(len(result.control_taps)):
        lines.append(
            f"{tap + 1:>4} "
            f"{abs(result.control_taps[tap]):>10.4f} "
            f"{abs(result.different_taps[tap]):>10.4f} "
            f"{abs(result.similar_taps[tap]):>10.4f}"
        )
    lines.append(
        f"MSE(control, H1) = {result.mse_h1:.3e}   "
        f"MSE(control, H2) = {result.mse_h2:.3e}"
    )
    return "\n".join(lines)
