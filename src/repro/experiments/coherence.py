"""Coherence-time analysis (paper Sec. 6.6).

The discussion estimates ~50 ms indoor coherence time at 2.4 GHz with
human-speed mobility and argues VVD is real-time capable because its
inference latency is below that.  This module measures the channel's
temporal autocorrelation from a simulated campaign and extracts the
coherence time at a configurable correlation level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataset.trace import MeasurementSet
from ..errors import ShapeError


@dataclass
class CoherenceResult:
    """Temporal autocorrelation of the CIR across packet lags."""

    lags_s: np.ndarray
    correlation: np.ndarray
    coherence_time_s: float
    threshold: float


def channel_autocorrelation(
    measurement_set: MeasurementSet, max_lag_packets: int
) -> np.ndarray:
    """Normalized autocorrelation of the canonical CIR vs packet lag.

    ``rho[k] = |E[<h_t, h_{t+k}>]| / E[||h_t||^2]`` over the set.
    """
    if max_lag_packets < 1:
        raise ShapeError("max_lag_packets must be >= 1")
    estimates = measurement_set.gt_estimates(canonical=True)
    if len(estimates) <= max_lag_packets:
        raise ShapeError(
            f"set has {len(estimates)} packets, need > {max_lag_packets}"
        )
    centred = estimates - estimates.mean(axis=0, keepdims=True)
    power = float(np.mean(np.sum(np.abs(centred) ** 2, axis=1)))
    if power == 0:
        raise ShapeError("degenerate set: zero channel variance")
    correlation = np.empty(max_lag_packets + 1)
    for lag in range(max_lag_packets + 1):
        head = centred[: len(centred) - lag]
        tail = centred[lag:]
        inner = np.mean(np.sum(tail * np.conj(head), axis=1))
        correlation[lag] = abs(inner) / power
    return correlation


def estimate_coherence_time(
    measurement_set: MeasurementSet,
    packet_interval_s: float,
    max_lag_packets: int = 30,
    threshold: float = 0.5,
) -> CoherenceResult:
    """Lag at which the autocorrelation first drops below ``threshold``."""
    if not 0 < threshold < 1:
        raise ShapeError(f"threshold must be in (0, 1), got {threshold}")
    correlation = channel_autocorrelation(measurement_set, max_lag_packets)
    lags_s = np.arange(max_lag_packets + 1) * packet_interval_s
    below = np.nonzero(correlation < threshold)[0]
    if len(below) == 0:
        coherence = float(lags_s[-1])
    else:
        coherence = float(lags_s[below[0]])
    return CoherenceResult(
        lags_s=lags_s,
        correlation=correlation,
        coherence_time_s=coherence,
        threshold=threshold,
    )


def realtime_capable(
    coherence: CoherenceResult, inference_latency_s: float
) -> bool:
    """The paper's Sec. 6.6 argument: latency must beat coherence time."""
    if inference_latency_s < 0:
        raise ShapeError("inference_latency_s must be >= 0")
    return inference_latency_s < coherence.coherence_time_s
