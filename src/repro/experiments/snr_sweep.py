"""SNR sensitivity sweep (Sec. 6.6's varying-transmission-power discussion).

The paper notes that "varying transmission power may increase the need
for the dataset as the noise will be critical with decreasing power".
This ablation regenerates the evaluation at several SNR operating points
and reports how each technique's PER degrades, quantifying that
discussion for the simulated link.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

from ..config import SimulationConfig
from ..dataset import build_components, generate_dataset
from ..dataset.sets import rotating_set_combinations
from ..errors import ConfigurationError
from .runner import EvaluationRunner
from .suite import build_baseline_suite


@dataclass
class SNRSweepResult:
    """PER per technique per SNR operating point."""

    snrs_db: list[float]
    per: dict[str, list[float]]

    def degradation(self, name: str) -> float:
        """PER increase from the highest to the lowest SNR point."""
        series = self.per[name]
        return series[0] - series[-1]


def run_snr_sweep(
    config: SimulationConfig,
    snrs_db: Sequence[float],
    num_sets: int | None = None,
    workers: int | None = None,
) -> SNRSweepResult:
    """Evaluate the baseline suite at several SNR points.

    Each point re-simulates the campaign with the same seeds (so the
    trajectories and crystal phases are identical; only the noise floor
    moves) and evaluates one Table 2 combination.  ``workers`` fans each
    point's dataset generation out over a process pool.
    """
    if len(snrs_db) < 2:
        raise ConfigurationError("sweep needs at least two SNR points")
    ordered = sorted(snrs_db)
    per: dict[str, list[float]] = {}
    for snr in ordered:
        point_config = config.replace(
            channel=dataclasses.replace(config.channel, snr_db=snr)
        )
        if num_sets is not None:
            point_config = point_config.replace(
                dataset=dataclasses.replace(
                    point_config.dataset, num_sets=num_sets
                )
            )
        components = build_components(point_config)
        sets = generate_dataset(point_config, components, workers=workers)
        runner = EvaluationRunner(components, sets)
        combination = rotating_set_combinations(
            point_config.dataset.num_sets
        )[0]
        result = runner.run_combination(
            combination, build_baseline_suite(point_config)
        )
        for name, technique in result.techniques.items():
            per.setdefault(name, []).append(technique.per)
    return SNRSweepResult(snrs_db=list(ordered), per=per)
