"""SNR sensitivity sweep (Sec. 6.6's varying-transmission-power discussion).

The paper notes that "varying transmission power may increase the need
for the dataset as the noise will be critical with decreasing power".
This ablation regenerates the evaluation at several SNR operating points
and reports how each technique's PER degrades, quantifying that
discussion for the simulated link.

The sweep is factored into per-point helpers (:func:`snr_point_config`,
:func:`evaluate_snr_point`) so the campaign runner can execute each SNR
point as its own resumable step, resolving datasets through the
content-addressed cache instead of regenerating them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..config import SimulationConfig
from ..dataset import build_components, generate_dataset
from ..dataset.sets import rotating_set_combinations
from ..errors import ConfigurationError
from .metrics import TechniqueResult
from .runner import EvaluationRunner
from .suite import build_suite

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..campaign.cache import DatasetCache


@dataclass
class SNRSweepResult:
    """PER per technique per SNR operating point."""

    snrs_db: list[float]
    per: dict[str, list[float]]

    def degradation(self, name: str) -> float:
        """PER increase from the highest to the lowest SNR point."""
        series = self.per[name]
        return series[0] - series[-1]


def snr_point_config(
    config: SimulationConfig,
    snr_db: float,
    num_sets: int | None = None,
) -> SimulationConfig:
    """The campaign configuration of one sweep operating point.

    Same seeds as ``config`` (trajectories and crystal phases are
    identical across points; only the noise floor moves), with the
    channel SNR replaced and the set count optionally reduced.
    """
    point = config.replace(
        channel=dataclasses.replace(config.channel, snr_db=float(snr_db))
    )
    if num_sets is not None:
        point = point.replace(
            dataset=dataclasses.replace(point.dataset, num_sets=num_sets)
        )
    return point


def evaluate_snr_point(
    config: SimulationConfig,
    suite: str = "baseline",
    cache: "DatasetCache | None" = None,
    workers: int | None = None,
    sets: "list | None" = None,
) -> dict[str, TechniqueResult]:
    """Evaluate one Table 2 combination of one operating point.

    ``sets`` short-circuits dataset resolution with already-loaded
    measurement sets (the campaign runner hands over sets its dataset
    step just generated).  Otherwise ``cache`` resolves them through the
    content-addressed dataset cache (generated once, loaded on every
    later call), and with neither they are regenerated in-process.
    Returns the per-technique results of the first rotating combination.
    """
    if sets is not None:
        runner = EvaluationRunner(build_components(config), sets)
    elif cache is not None:
        runner = EvaluationRunner.from_cache(
            config, cache, workers=workers
        )
    else:
        components = build_components(config)
        runner = EvaluationRunner(
            components,
            generate_dataset(config, components, workers=workers),
        )
    combination = rotating_set_combinations(config.dataset.num_sets)[0]
    result = runner.run_combination(
        combination, build_suite(suite, config)
    )
    return result.techniques


def run_snr_sweep(
    config: SimulationConfig,
    snrs_db: Sequence[float],
    num_sets: int | None = None,
    workers: int | None = None,
    cache: "DatasetCache | None" = None,
    suite: str = "baseline",
) -> SNRSweepResult:
    """Evaluate an estimator suite at several SNR points.

    Each point re-simulates the campaign with the same seeds (so the
    trajectories and crystal phases are identical; only the noise floor
    moves) and evaluates one Table 2 combination.  ``workers`` fans each
    point's dataset generation out over a process pool; ``cache``
    resolves each point's dataset through the campaign cache so repeated
    sweeps never regenerate measurement sets.
    """
    if len(snrs_db) < 2:
        raise ConfigurationError("sweep needs at least two SNR points")
    ordered = sorted(snrs_db)
    per: dict[str, list[float]] = {}
    for snr in ordered:
        point_config = snr_point_config(config, snr, num_sets=num_sets)
        techniques = evaluate_snr_point(
            point_config, suite=suite, cache=cache, workers=workers
        )
        for name, technique in techniques.items():
            per.setdefault(name, []).append(technique.per)
    return SNRSweepResult(snrs_db=list(ordered), per=per)
