"""Trace-journal analysis: summary, timeline, critical path, Chrome.

Everything here is a pure function over the merged ``trace.jsonl``
records produced by :mod:`repro.obs.trace` — no clocks, no globals —
so the ``repro trace`` subcommands are trivially testable against
synthetic journals.

The summary's accounting contract: the **wall time** of a run is the
duration of its root span (a span with no parent; ``campaign.run`` in
practice), and the per-step breakdown over the root's direct children
must account for >= 95% of it on a serial run — the acceptance
criterion pinned in ``tests/obs/test_analysis.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

from . import log
from .trace import JOURNAL_NAME, SHARD_PREFIX, read_records


def load_journal(path) -> list[dict]:
    """Read a merged journal (or raw shard), warning on corrupt lines.

    Missing files yield an empty list — ``repro trace summary`` on a
    journal-less run directory must exit cleanly, not raise.
    """
    records, skipped = read_records(path)
    if skipped:
        log.warning(
            f"warning: skipped {skipped} corrupt trace line(s) "
            f"in {Path(path).name}"
        )
    return records


def discover_journal(cache_dir) -> Path | None:
    """The most recently written ``trace.jsonl`` under ``cache_dir``.

    Searches ``<cache_dir>/campaigns/*/trace/trace.jsonl`` (the layout
    the CLI arms) plus any loose shards' parent directories, returning
    ``None`` when nothing is found.
    """
    root = Path(cache_dir)
    candidates = sorted(
        root.glob(f"campaigns/*/trace/{JOURNAL_NAME}"),
        key=lambda p: p.stat().st_mtime,
    )
    if not candidates:
        return None
    return candidates[-1]


def spans(records: list[dict]) -> list[dict]:
    """Only the span records (events carry no duration)."""
    return [r for r in records if r.get("kind") == "span"]


def root_spans(records: list[dict]) -> list[dict]:
    """Spans with no parent, oldest first (the run roots)."""
    return sorted(
        (s for s in spans(records) if s.get("parent") is None),
        key=lambda s: s["start"],
    )


def children_of(records: list[dict], span_id: str) -> list[dict]:
    """Direct child spans of ``span_id``, by start time."""
    return sorted(
        (s for s in spans(records) if s.get("parent") == span_id),
        key=lambda s: s["start"],
    )


def site_totals(records: list[dict]) -> dict:
    """Per-site aggregate: name -> count / total / mean / max seconds."""
    totals: dict[str, dict] = {}
    for record in spans(records):
        entry = totals.setdefault(
            record["name"],
            {"count": 0, "total_s": 0.0, "max_s": 0.0},
        )
        duration = float(record.get("dur", 0.0))
        entry["count"] += 1
        entry["total_s"] += duration
        if duration > entry["max_s"]:
            entry["max_s"] = duration
    for entry in totals.values():
        entry["mean_s"] = entry["total_s"] / entry["count"]
    return totals


def wall_accounting(records: list[dict]) -> dict:
    """Wall time vs. the direct-children breakdown of the run root.

    Returns ``{"wall_s", "accounted_s", "fraction", "steps"}`` where
    ``steps`` is the list of direct children of the newest root span
    (step label, duration).  ``fraction`` is accounted / wall, the
    >= 95% acceptance metric; 0.0 when the journal has no root.
    """
    roots = root_spans(records)
    if not roots:
        return {
            "wall_s": 0.0,
            "accounted_s": 0.0,
            "fraction": 0.0,
            "steps": [],
        }
    root = roots[-1]
    wall = float(root.get("dur", 0.0))
    steps = []
    accounted = 0.0
    for child in children_of(records, str(root["id"])):
        duration = float(child.get("dur", 0.0))
        accounted += duration
        steps.append(
            {
                "name": child["name"],
                "label": _label(child),
                "dur_s": duration,
            }
        )
    fraction = accounted / wall if wall > 0.0 else 0.0
    return {
        "wall_s": wall,
        "accounted_s": accounted,
        "fraction": fraction,
        "steps": steps,
    }


def _label(record: dict) -> str:
    """Human label of a span: its step/key/point attr, else its name."""
    attrs = record.get("attrs", {}) or {}
    for key in ("step", "key", "point", "site"):
        if key in attrs:
            return f"{record['name']}[{attrs[key]}]"
    return str(record["name"])


def render_summary(records: list[dict]) -> str:
    """The ``repro trace summary`` report: wall, steps, sites."""
    if not records:
        return "trace journal is empty — nothing to summarize"
    accounting = wall_accounting(records)
    lines = [
        f"Trace summary — {len(spans(records))} span(s), "
        f"{len(records) - len(spans(records))} event(s)"
    ]
    if accounting["wall_s"] > 0.0:
        lines.append(
            f"wall time: {accounting['wall_s']:.3f}s, "
            f"accounted by steps: {accounting['accounted_s']:.3f}s "
            f"({100.0 * accounting['fraction']:.1f}%)"
        )
        for step in accounting["steps"]:
            share = (
                step["dur_s"] / accounting["wall_s"]
                if accounting["wall_s"] > 0.0
                else 0.0
            )
            lines.append(
                f"  {step['label']}: {step['dur_s']:.3f}s"
                f" ({100.0 * share:.1f}%)"
            )
    lines.append("per-site totals:")
    totals = site_totals(records)
    for name in sorted(
        totals, key=lambda n: totals[n]["total_s"], reverse=True
    ):
        entry = totals[name]
        lines.append(
            f"  {name}: n={entry['count']} total={entry['total_s']:.3f}s"
            f" mean={entry['mean_s']:.4f}s max={entry['max_s']:.4f}s"
        )
    return "\n".join(lines)


def render_timeline(records: list[dict]) -> str:
    """Chronological span/event listing with nesting depth."""
    if not records:
        return "trace journal is empty — nothing to render"
    depth: dict[str, int] = {}
    for record in spans(records):
        parent = record.get("parent")
        depth[str(record["id"])] = (
            depth.get(str(parent), -1) + 1 if parent else 0
        )
    origin = min(float(r["start"]) for r in records)
    lines = ["Trace timeline (seconds since run start):"]
    for record in sorted(
        records, key=lambda r: (float(r["start"]), str(r["id"]))
    ):
        offset = float(record["start"]) - origin
        indent = "  " * depth.get(str(record.get("id")), 0)
        if record.get("kind") == "span":
            lines.append(
                f"{offset:9.3f}s {indent}{_label(record)} "
                f"({float(record.get('dur', 0.0)):.3f}s)"
            )
        else:
            lines.append(f"{offset:9.3f}s {indent}* {_label(record)}")
    return "\n".join(lines)


def critical_path(records: list[dict]) -> list[dict]:
    """The dominant-child chain from the run root downward.

    At each level the child with the largest duration is followed —
    the classic "where did the time go" drill-down for serial runs.
    """
    roots = root_spans(records)
    if not roots:
        return []
    path = [roots[-1]]
    while True:
        offspring = children_of(records, str(path[-1]["id"]))
        if not offspring:
            break
        path.append(
            max(offspring, key=lambda s: float(s.get("dur", 0.0)))
        )
    return path


def render_critical_path(records: list[dict]) -> str:
    """The ``repro trace critical-path`` report."""
    path = critical_path(records)
    if not path:
        return "trace journal is empty — nothing to render"
    wall = float(path[0].get("dur", 0.0))
    lines = ["Critical path (dominant child at each level):"]
    for depth, record in enumerate(path):
        duration = float(record.get("dur", 0.0))
        share = duration / wall if wall > 0.0 else 0.0
        lines.append(
            f"  {'  ' * depth}{_label(record)}: {duration:.3f}s"
            f" ({100.0 * share:.1f}% of wall)"
        )
    return "\n".join(lines)


def to_chrome(records: list[dict]) -> dict:
    """Chrome ``chrome://tracing`` JSON (``traceEvents`` schema).

    Spans map to complete events (``ph: "X"``, microsecond ``ts`` /
    ``dur``); instant events map to ``ph: "i"`` with process scope.
    """
    events = []
    for record in sorted(
        records, key=lambda r: (float(r["start"]), str(r["id"]))
    ):
        base = {
            "name": record["name"],
            "pid": int(record.get("pid", 0)),
            "tid": int(record.get("pid", 0)),
            "ts": float(record["start"]) * 1e6,
            "args": record.get("attrs", {}) or {},
        }
        if record.get("kind") == "span":
            base["ph"] = "X"
            base["dur"] = float(record.get("dur", 0.0)) * 1e6
            base["cat"] = "span"
        else:
            base["ph"] = "i"
            base["s"] = "p"
            base["cat"] = "event"
        events.append(base)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(records: list[dict], output) -> Path:
    """Serialize :func:`to_chrome` output to ``output`` atomically."""
    from ..campaign.locking import atomic_write_text

    output = Path(output)
    atomic_write_text(
        output, json.dumps(to_chrome(records), sort_keys=True) + "\n"
    )
    return output


__all__ = [
    "JOURNAL_NAME",
    "SHARD_PREFIX",
    "critical_path",
    "discover_journal",
    "load_journal",
    "render_critical_path",
    "render_summary",
    "render_timeline",
    "site_totals",
    "to_chrome",
    "wall_accounting",
    "write_chrome",
]
