"""Crash-tolerant structured tracing with a zero-cost disarmed path.

The tracer mirrors the arming discipline of :mod:`repro.faults`: a
module-level ``_ACTIVE`` slot is resolved lazily from
:data:`ENV_VAR` (``REPRO_TRACE_DIR``), instrumentation sites call
:func:`span`/:func:`event` unconditionally, and when tracing is
disarmed the fast path is a single identity check returning a cached
no-op span — no allocation, no clock read, no branch into I/O.  The
stream-throughput and grid benchmark floors are the enforcement.

When armed, every process appends JSON lines to its **own** shard
(``shard-<pid>.jsonl``) opened ``O_APPEND``, so a worker killed
mid-write can at worst truncate its final line — never corrupt another
process's records.  Forked workers inherit the armed tracer and the
parent's open-span stack, which is exactly what links a worker-side
span to the campaign-level span that forked it; the first emit after a
fork detects the pid change and switches to a fresh shard.  The parent
merges all shards into ``trace.jsonl`` at the end of a campaign run,
skipping torn lines with a counted warning (the same quarantine
philosophy as ``ResultsStore``).

Span records carry a wall-clock ``start`` (epoch seconds, comparable
across processes) and a monotonic ``dur`` (``perf_counter`` delta,
immune to clock steps).  **Nothing here may ever feed cache keys,
manifests' semantic fields, result payloads, or figures** — that is
the determinism firewall, enforced by
``tests/campaign/test_trace_firewall.py``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

#: Environment variable naming the trace directory; set by
#: :func:`arm` and inherited by worker processes.
ENV_VAR = "REPRO_TRACE_DIR"

#: Merged journal filename inside the trace directory.
JOURNAL_NAME = "trace.jsonl"

#: Shard filename prefix; one shard per writing process.
SHARD_PREFIX = "shard-"

_UNSET = object()
#: Lazily resolved tracer: ``_UNSET`` -> consult the environment,
#: ``None`` -> disarmed, otherwise the armed :class:`Tracer`.
_ACTIVE: object = _UNSET


class Span:
    """One timed, attributed, nestable unit of work.

    Use via ``with trace.span("cache.load", key=key):`` — entering
    records the start clocks and pushes onto the per-process span
    stack; exiting pops, stamps the duration, captures the exception
    class name (re-raising untouched), and appends one JSON line to
    the process shard.
    """

    __slots__ = (
        "_tracer",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "_start_epoch",
        "_start_perf",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = ""
        self.parent_id = None
        self._start_epoch = 0.0
        self._start_perf = 0.0

    def set(self, key: str, value) -> "Span":
        """Attach one more attribute mid-span; returns self."""
        self.attrs[key] = value
        return self

    def __enter__(self) -> "Span":
        """Start the clocks and enter the span stack."""
        tracer = self._tracer
        tracer._ensure_process()
        self.span_id = tracer._next_id()
        stack = tracer._stack
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self._start_epoch = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Stamp duration, record the error class, append the record."""
        duration = time.perf_counter() - self._start_perf
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] == self.span_id:
            tracer._stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        tracer._write(
            {
                "kind": "span",
                "name": self.name,
                "id": self.span_id,
                "parent": self.parent_id,
                "pid": tracer._pid,
                "start": self._start_epoch,
                "dur": duration,
                "attrs": self.attrs,
            }
        )
        return False


class _NullSpan:
    """The disarmed span: every operation is a no-op.

    A single module-level instance is returned from every disarmed
    :func:`span` call, so the hot path allocates nothing.
    """

    __slots__ = ()

    def set(self, key: str, value) -> "_NullSpan":
        """Ignore the attribute; returns self."""
        return self

    def __enter__(self) -> "_NullSpan":
        """No-op context entry."""
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """No-op context exit; never swallows exceptions."""
        return False


#: The shared disarmed span instance.
NULL_SPAN = _NullSpan()


class Tracer:
    """Appends span/event JSON lines to a per-process shard.

    The shard file descriptor is opened lazily on first emit and
    re-opened whenever ``os.getpid()`` changes (fork detection).  The
    inherited span stack is deliberately **kept** across forks so a
    worker's first span parents to the campaign span that spawned it.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self._fd: int | None = None
        self._pid: int | None = None
        self._counter = 0
        self._stack: list[str] = []

    def _ensure_process(self) -> None:
        """Open (or re-open after a fork) this process's shard."""
        pid = os.getpid()
        if self._fd is not None and self._pid == pid:
            return
        if self._fd is not None:
            # Inherited descriptor from the parent: close our copy so
            # the child never appends to the parent's shard.
            try:
                os.close(self._fd)
            except OSError:
                pass
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"{SHARD_PREFIX}{pid}.jsonl"
        self._fd = os.open(
            path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        if self._pid != pid:
            # Only a *fork* resets the id counter; re-opening after a
            # same-process merge keeps counting so span ids never
            # collide between two runs that share a trace directory.
            self._counter = 0
        self._pid = pid

    def _next_id(self) -> str:
        """Allocate a process-unique span id (``pid:counter``)."""
        self._counter += 1
        return f"{self._pid}:{self._counter}"

    def _write(self, payload: dict) -> None:
        """Append one JSON line atomically via ``O_APPEND``."""
        line = json.dumps(payload, sort_keys=True) + "\n"
        os.write(self._fd, line.encode("utf-8"))

    def span(self, name: str, **attrs) -> Span:
        """Create (not yet enter) a span under this tracer."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record an instantaneous event (retry fired, fault fired)."""
        self._ensure_process()
        self._write(
            {
                "kind": "event",
                "name": name,
                "id": self._next_id(),
                "parent": self._stack[-1] if self._stack else None,
                "pid": self._pid,
                "start": time.time(),
                "attrs": attrs,
            }
        )

    def close(self) -> None:
        """Close the shard descriptor (idempotent)."""
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None


def active_tracer() -> Tracer | None:
    """The armed tracer, or ``None``; resolved lazily from the env.

    Worker processes spawned with a clean interpreter (no inherited
    module state) land here: the parent's :func:`arm` exported
    :data:`ENV_VAR`, so their first instrumented call re-arms against
    the same directory.
    """
    global _ACTIVE
    if _ACTIVE is _UNSET:
        directory = os.environ.get(ENV_VAR)
        _ACTIVE = Tracer(directory) if directory else None
    return _ACTIVE


def arm(directory) -> Tracer:
    """Arm tracing against ``directory`` and export it to children."""
    global _ACTIVE
    tracer = Tracer(directory)
    _ACTIVE = tracer
    os.environ[ENV_VAR] = str(directory)
    return tracer


def disarm() -> None:
    """Disarm tracing and clear the environment export."""
    global _ACTIVE
    if isinstance(_ACTIVE, Tracer):
        _ACTIVE.close()
    _ACTIVE = None
    os.environ.pop(ENV_VAR, None)


def reset() -> None:
    """Forget the cached arming decision (test hook)."""
    global _ACTIVE
    if isinstance(_ACTIVE, Tracer):
        _ACTIVE.close()
    _ACTIVE = _UNSET


def span(name: str, **attrs):
    """A context-managed span, or the shared no-op when disarmed.

    This is the instrumentation entry point; the disarmed cost is one
    global read, one identity check, and one ``None`` check.
    """
    tracer = _ACTIVE
    if tracer is _UNSET:
        tracer = active_tracer()
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """Record an instant event when armed; free when disarmed."""
    tracer = _ACTIVE
    if tracer is _UNSET:
        tracer = active_tracer()
    if tracer is None:
        return
    tracer.event(name, **attrs)


def read_records(path) -> tuple[list[dict], int]:
    """Parse one JSONL file, skipping torn/corrupt lines.

    Returns ``(records, skipped)``.  A line is skipped when it is not
    valid JSON, not an object, or lacks the required keys — the exact
    failure mode of a worker killed mid-``os.write`` — mirroring the
    corrupt-record quarantine semantics of ``ResultsStore``.
    """
    path = Path(path)
    records: list[dict] = []
    skipped = 0
    if not path.exists():
        return records, skipped
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if (
                not isinstance(record, dict)
                or "kind" not in record
                or "name" not in record
                or "id" not in record
                or "start" not in record
            ):
                skipped += 1
                continue
            records.append(record)
    return records, skipped


def merge_shards(directory) -> Path:
    """Fold all per-pid shards into ``trace.jsonl`` and remove them.

    Re-merging is idempotent: the existing journal is read back in,
    records are de-duplicated by span id, and the result is sorted by
    ``(start, id)`` before an atomic replace — so a crash during the
    merge leaves either the old journal or the new one, never a tear.
    Corrupt lines are dropped with one counted warning per file.
    """
    from . import log
    from ..campaign.locking import atomic_write_text

    directory = Path(directory)
    journal = directory / JOURNAL_NAME
    merged: dict[str, dict] = {}
    sources = [journal] + sorted(directory.glob(f"{SHARD_PREFIX}*.jsonl"))
    for source in sources:
        records, skipped = read_records(source)
        if skipped:
            log.warning(
                f"warning: skipped {skipped} corrupt trace line(s) "
                f"in {source.name}"
            )
        for record in records:
            merged[str(record["id"])] = record
    ordered = sorted(
        merged.values(), key=lambda r: (r["start"], str(r["id"]))
    )
    directory.mkdir(parents=True, exist_ok=True)
    text = "".join(
        json.dumps(record, sort_keys=True) + "\n" for record in ordered
    )
    atomic_write_text(journal, text)
    active = _ACTIVE
    if isinstance(active, Tracer) and active.directory == directory:
        # Drop our own shard descriptor before unlinking: the next
        # emit in this process re-opens a fresh shard instead of
        # appending to an unlinked inode (a second campaign run in
        # one process would otherwise trace into the void).
        active.close()
    for source in sources[1:]:
        try:
            source.unlink()
        except OSError:
            pass
    return journal
