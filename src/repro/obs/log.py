"""Leveled, sentinel-preserving logging for the reproduction stack.

Every user-facing message in ``src/repro`` routes through this module
instead of bare ``print()``.  Three properties are load-bearing:

- **Verbatim messages.**  No prefixes, no timestamps: nightly CI greps
  exact sentinel strings ("100% cache hits", "self-healing: ...",
  "cache corruption detected") out of stdout, and the capacity job
  byte-diffs a serial log against a ``--jobs 2`` log.  Formatting the
  message would break both.
- **Late stream binding.**  Messages go through :func:`print` at call
  time, so ``pytest`` capture (``capsys``) and CI ``tee`` pipelines see
  them without any handler plumbing.
- **Environment inheritance.**  :func:`set_level` also writes
  :data:`ENV_VAR`, so forked and spawned campaign workers inherit the
  parent's verbosity exactly like ``repro.faults`` plans are inherited.

Levels are the conventional DEBUG < INFO < WARNING < ERROR.  The
default is INFO: sentinels and summaries print, diagnostics stay quiet.
``--quiet`` maps to WARNING (summaries suppressed, corruption warnings
still visible); ``--verbose`` keeps its historical meaning of *more
INFO lines* rather than switching levels, so existing CLI contracts
hold.
"""

from __future__ import annotations

import os
import sys

from ..errors import ConfigurationError

#: Environment variable carrying the minimum level name; read lazily on
#: first emit and re-written by :func:`set_level` so worker processes
#: inherit the parent's choice.
ENV_VAR = "REPRO_LOG_LEVEL"

#: Ordered level names -> numeric severity.
LEVELS = {"DEBUG": 10, "INFO": 20, "WARNING": 30, "ERROR": 40}

#: Default minimum level when neither :func:`set_level` nor the
#: environment says otherwise.
DEFAULT_LEVEL = "INFO"

_UNSET = object()
#: Process-local forced level name; ``_UNSET`` means "consult the
#: environment" (the same lazy-resolution idiom as ``repro.faults``).
_FORCED: object = _UNSET


def _resolve(name: str) -> int:
    """Map a level name to its severity, raising on unknown names."""
    try:
        return LEVELS[name.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown log level {name!r}; expected one of "
            f"{', '.join(sorted(LEVELS))}"
        ) from None


def level_name() -> str:
    """The effective minimum level name for this process."""
    forced = _FORCED
    if forced is not _UNSET:
        return str(forced)
    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_LEVEL
    upper = raw.upper()
    if upper not in LEVELS:
        return DEFAULT_LEVEL
    return upper


def threshold() -> int:
    """The effective numeric severity floor for this process."""
    return LEVELS[level_name()]


def set_level(name: str) -> None:
    """Force the minimum level and export it to child processes.

    Writing :data:`ENV_VAR` is what makes ``--quiet`` reach forked
    campaign workers: they re-resolve the level lazily on their first
    emit, exactly like fault plans.
    """
    upper = name.upper()
    _resolve(upper)
    global _FORCED
    _FORCED = upper
    os.environ[ENV_VAR] = upper


def reset() -> None:
    """Clear the forced level and the environment export (test hook)."""
    global _FORCED
    _FORCED = _UNSET
    os.environ.pop(ENV_VAR, None)


def log(name: str, message: str) -> None:
    """Emit ``message`` verbatim if ``name`` clears the level floor.

    WARNING and below go to stdout (CI tees and greps stdout); ERROR
    goes to stderr, matching the CLI's historical error channel.
    """
    severity = _resolve(name)
    if severity < threshold():
        return
    stream = sys.stderr if severity >= LEVELS["ERROR"] else sys.stdout
    print(message, file=stream)


def debug(message: str) -> None:
    """Diagnostic chatter; hidden unless ``REPRO_LOG_LEVEL=DEBUG``."""
    log("DEBUG", message)


def info(message: str) -> None:
    """Default-level output: summaries, sentinels, progress lines."""
    log("INFO", message)


def warning(message: str) -> None:
    """Recoverable-anomaly output (quarantines, degraded rounds).

    Warnings stay on **stdout**: the nightly chaos job greps "cache
    corruption detected" out of a ``tee`` of stdout, and ``--quiet``
    must not silence them.
    """
    log("WARNING", message)


def error(message: str) -> None:
    """Failure output; routed to stderr like the CLI's error handler."""
    log("ERROR", message)
