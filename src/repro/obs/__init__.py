"""Unified telemetry: tracing, metrics, leveled logging, analysis.

``repro.obs`` gives the reproduction stack the span/metric discipline
of a production inference service while staying outside the
determinism firewall: everything produced here is wall-clock
side-channel data that must never reach cache keys, manifests'
semantic fields, result payloads, or figures.

- :mod:`repro.obs.log` — leveled, sentinel-preserving logging
  (``REPRO_LOG_LEVEL``), the replacement for bare ``print()``.
- :mod:`repro.obs.trace` — armable tracer (``REPRO_TRACE_DIR``) with
  per-pid crash-tolerant JSONL shards and a no-op disarmed path.
- :mod:`repro.obs.metrics` — counters / gauges / reservoir histograms
  exported as ``metrics.json`` + ``metrics.prom`` per run.
- :mod:`repro.obs.analysis` — journal analysis backing ``repro trace
  summary|timeline|critical-path|export``.

Import order matters: :mod:`log` and :mod:`trace` are stdlib-only, so
instrumented modules anywhere in ``repro`` may import them without
creating cycles; :mod:`metrics` and :mod:`analysis` lazily import
their ``repro`` dependencies inside functions for the same reason.
"""

from . import log
from . import trace
from . import metrics
from . import analysis

__all__ = ["analysis", "log", "metrics", "trace"]
