"""Process-local metrics registry with JSON + Prometheus export.

The registry unifies the stack's ad-hoc stats — ``ServiceStats``,
``DatasetCache`` hit/miss/corrupt counters, ``ModelCheckpointRegistry``
hit/miss, campaign retry/quarantine counts — under three instrument
types: :class:`Counter`, :class:`Gauge`, and :class:`Histogram` (backed
by the bounded, deterministic ``LatencyReservoir``).

Absorption is **pull-model**: nothing on a hot path touches the
registry.  At the end of a run, :func:`collect` reads the existing
stats objects into a fresh registry and :meth:`MetricsRegistry.write`
emits ``metrics.json`` (sorted-key snapshot) and ``metrics.prom``
(Prometheus text exposition) into the campaign directory, so a future
``repro serve`` daemon can scrape the same names unchanged.

Metric values are wall-clock telemetry and live outside the
determinism firewall: they must never feed cache keys, manifests'
semantic fields, result payloads, or figures.
"""

from __future__ import annotations

import json
from pathlib import Path


class Counter:
    """A monotonically increasing count (requests, hits, retries)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount

    def as_dict(self) -> dict:
        """JSON-able snapshot of this counter."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (pending requests, wall seconds)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's current value."""
        self.value = float(value)

    def as_dict(self) -> dict:
        """JSON-able snapshot of this gauge."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A bounded latency/duration distribution (reservoir-backed).

    Wraps the PR 8 ``LatencyReservoir``: exact count / sum / max with
    sampled p50/p99/p999, deterministic under a string seed.
    """

    __slots__ = ("name", "reservoir")

    def __init__(self, name: str, reservoir=None) -> None:
        from ..experiments.metrics import LatencyReservoir

        self.name = name
        self.reservoir = (
            reservoir
            if reservoir is not None
            else LatencyReservoir(seed=name)
        )

    def observe(self, value_s: float) -> None:
        """Record one observation (seconds)."""
        self.reservoir.add(value_s)

    def as_dict(self) -> dict:
        """JSON-able snapshot (count, mean, max, quantile trio)."""
        payload = self.reservoir.as_dict()
        payload["type"] = "histogram"
        return payload


class MetricsRegistry:
    """Named instruments plus JSON / Prometheus exporters.

    Instrument accessors are get-or-create and type-checked, so two
    subsystems asking for ``repro_cache_hits`` share one counter and a
    name can never silently change type mid-run.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, kind, *args):
        """Get-or-create an instrument, enforcing its type."""
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, *args)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is {type(instrument).__name__}, "
                f"not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on demand)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on demand)."""
        return self._get(name, Gauge)

    def histogram(self, name: str, reservoir=None) -> Histogram:
        """The histogram under ``name``; optionally adopt an existing
        ``LatencyReservoir`` (pull-model absorption of service stats)."""
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Histogram(name, reservoir)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Histogram):
            raise TypeError(
                f"metric {name!r} is {type(instrument).__name__}, "
                "not Histogram"
            )
        return instrument

    def snapshot(self) -> dict:
        """Sorted-name snapshot of every instrument."""
        return {
            name: self._instruments[name].as_dict()
            for name in sorted(self._instruments)
        }

    def to_json(self) -> str:
        """The snapshot as canonical (sorted, indented) JSON text."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"

    def to_prometheus(self) -> str:
        """Prometheus text exposition of every instrument.

        Counters and gauges are scalars; histograms render as the
        ``summary`` type with ``quantile`` labels plus ``_sum`` and
        ``_count`` series, which is what a scrape of the future
        ``repro serve`` daemon would return.
        """
        lines: list[str] = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {instrument.value}")
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_format_value(instrument.value)}")
            else:
                reservoir = instrument.reservoir
                p50, p99, p999 = reservoir.quantiles()
                lines.append(f"# TYPE {name} summary")
                lines.append(
                    f'{name}{{quantile="0.5"}} {_format_value(p50)}'
                )
                lines.append(
                    f'{name}{{quantile="0.99"}} {_format_value(p99)}'
                )
                lines.append(
                    f'{name}{{quantile="0.999"}} {_format_value(p999)}'
                )
                lines.append(
                    f"{name}_sum {_format_value(reservoir.total_s)}"
                )
                lines.append(f"{name}_count {reservoir.count}")
        return "\n".join(lines) + "\n"

    def write(self, directory) -> tuple[Path, Path]:
        """Atomically export ``metrics.json`` + ``metrics.prom``."""
        from ..campaign.locking import atomic_write_text

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        json_path = directory / "metrics.json"
        prom_path = directory / "metrics.prom"
        atomic_write_text(json_path, self.to_json())
        atomic_write_text(prom_path, self.to_prometheus())
        return json_path, prom_path


def _format_value(value: float) -> str:
    """Render a float in Prometheus style (repr-exact, no padding)."""
    return repr(float(value))


def collect(
    cache_stats=None,
    model_stats=None,
    service_stats=None,
    campaign_result=None,
    registry: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Absorb the stack's ad-hoc stats objects into one registry.

    Every argument is optional and duck-typed, so callers pass
    whatever their run actually touched: ``DatasetCache.stats``,
    ``ModelCheckpointRegistry.stats``, ``PredictionService.stats``,
    and/or a ``CampaignResult``.  Reading happens once, at export
    time — hot paths keep their existing plain-attribute counters.
    """
    registry = registry if registry is not None else MetricsRegistry()
    if cache_stats is not None:
        registry.counter("repro_cache_hits").inc(cache_stats.hits)
        registry.counter("repro_cache_misses").inc(cache_stats.misses)
        registry.counter("repro_cache_sets_loaded").inc(
            cache_stats.sets_loaded
        )
        registry.counter("repro_cache_sets_generated").inc(
            cache_stats.sets_generated
        )
        registry.counter("repro_cache_sets_corrupt").inc(
            cache_stats.sets_corrupt
        )
    if model_stats is not None:
        registry.counter("repro_model_hits").inc(model_stats.hits)
        registry.counter("repro_model_misses").inc(model_stats.misses)
        registry.counter("repro_models_trained").inc(
            model_stats.models_trained
        )
        registry.counter("repro_models_loaded").inc(
            model_stats.models_loaded
        )
    if service_stats is not None:
        registry.counter("repro_service_requests").inc(
            service_stats.requests
        )
        registry.counter("repro_service_predictions").inc(
            service_stats.predictions
        )
        registry.counter("repro_service_batches").inc(
            service_stats.batches
        )
        registry.counter("repro_service_shed_requests").inc(
            service_stats.shed_requests
        )
        registry.gauge("repro_service_flush_seconds").set(
            service_stats.flush_seconds
        )
        registry.histogram(
            "repro_service_latency_seconds", service_stats.latency
        )
    if campaign_result is not None:
        registry.counter("repro_campaign_steps_executed").inc(
            len(campaign_result.executed)
        )
        registry.counter("repro_campaign_steps_resumed").inc(
            len(campaign_result.skipped)
        )
        registry.counter("repro_campaign_retries").inc(
            campaign_result.retried
        )
        registry.counter("repro_campaign_steps_quarantined").inc(
            len(campaign_result.quarantined)
        )
    return registry
