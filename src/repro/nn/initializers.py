"""Weight initializers."""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def glorot_uniform(
    rng: np.random.Generator,
    shape: tuple[int, ...],
    fan_in: int,
    fan_out: int,
) -> np.ndarray:
    """Glorot/Xavier uniform initialization (Keras default)."""
    if fan_in <= 0 or fan_out <= 0:
        raise ShapeError(
            f"fan_in/fan_out must be positive, got {fan_in}/{fan_out}"
        )
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def zeros_init(shape: tuple[int, ...]) -> np.ndarray:
    """Zero initialization (biases)."""
    return np.zeros(shape, dtype=np.float64)
