"""Minimal CNN framework in pure numpy (no autograd dependencies).

Implements exactly what the paper's Keras model needs — 2-D convolutions,
average/max pooling, dense layers, ReLU, batch-norm (for the Sec. 4
ablation), MSE loss, and the Nadam optimizer with per-epoch learning-rate
decay — with hand-derived backward passes that are gradient-checked in the
test suite.

Data layout is NHWC; all math is float64 for numerical robustness.
"""

from .initializers import glorot_uniform, zeros_init
from .layers import (
    CONV_IMPLEMENTATIONS,
    AveragePooling2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Flatten,
    Layer,
    MaxPooling2D,
    Parameter,
    ReLU,
)
from .losses import MeanSquaredError
from .optimizers import SGD, Adam, Nadam, Optimizer
from .model import Sequential, TrainingHistory
from .gradcheck import numerical_gradient, check_layer_gradients

__all__ = [
    "glorot_uniform",
    "zeros_init",
    "Parameter",
    "Layer",
    "Dense",
    "ReLU",
    "Flatten",
    "Conv2D",
    "CONV_IMPLEMENTATIONS",
    "AveragePooling2D",
    "MaxPooling2D",
    "BatchNorm2D",
    "MeanSquaredError",
    "Optimizer",
    "SGD",
    "Adam",
    "Nadam",
    "Sequential",
    "TrainingHistory",
    "numerical_gradient",
    "check_layer_gradients",
]
