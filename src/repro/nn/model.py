"""Sequential model container: fit / evaluate / predict / save / load.

Reproduces the paper's training protocol (Sec. 4): mini-batch training
with Nadam, learning rate multiplied by ``1 - decay`` after every epoch,
MSE validation after each epoch, and restoration of the weights from the
best-validation epoch ("the ML model weights after a specific epoch that
give best validation set performance are saved and used for evaluation").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import NotFittedError, ShapeError
from ..obs import log
from .layers import Layer, Parameter
from .losses import MeanSquaredError
from .optimizers import Optimizer


@dataclass
class TrainingHistory:
    """Per-epoch training record."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    learning_rates: list[float] = field(default_factory=list)
    best_epoch: int = -1

    @property
    def best_val_loss(self) -> float:
        if self.best_epoch < 0:
            return float("nan")
        return self.val_loss[self.best_epoch]


class Sequential:
    """A linear stack of layers."""

    def __init__(
        self, layers: list[Layer], seed: int = 0, dtype=np.float32
    ) -> None:
        if not layers:
            raise ShapeError("Sequential needs at least one layer")
        self.layers = list(layers)
        self.dtype = dtype
        self._rng = np.random.default_rng(seed)
        self._built = False
        self.input_shape: tuple[int, ...] | None = None
        self.output_shape: tuple[int, ...] | None = None

    # -- construction -----------------------------------------------------
    def build(self, input_shape: tuple[int, ...]) -> None:
        """Allocate parameters for the given per-sample input shape."""
        shape = tuple(input_shape)
        self.input_shape = shape
        for layer in self.layers:
            shape = layer.build(shape, self._rng, self.dtype)
        self.output_shape = tuple(shape)
        self._built = True

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def num_parameters(self) -> int:
        return sum(p.value.size for p in self.parameters())

    # -- forward / backward --------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not self._built:
            self.build(x.shape[1:])
        out = np.asarray(x, dtype=self.dtype)
        for layer in self.layers:
            out = layer.forward(out, training)
        return out

    def backward(
        self, grad: np.ndarray, need_input_grad: bool = True
    ) -> np.ndarray | None:
        """Backpropagate ``grad``; returns the input gradient.

        ``need_input_grad=False`` (the training loop's setting) lets the
        first layer skip its input-gradient computation — nobody consumes
        it — and returns ``None``.
        """
        for layer in reversed(self.layers[1:]):
            grad = layer.backward(grad)
        first = self.layers[0]
        if need_input_grad:
            return first.backward(grad)
        return first.backward_params_only(grad)

    # -- training ---------------------------------------------------------
    def train_batch(
        self,
        x: np.ndarray,
        y: np.ndarray,
        optimizer: Optimizer,
        loss: MeanSquaredError,
    ) -> float:
        prediction = self.forward(x, training=True)
        y = np.asarray(y, dtype=self.dtype)
        value = loss.value(prediction, y)
        self.backward(loss.gradient(prediction, y), need_input_grad=False)
        optimizer.step(self.parameters())
        return value

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        optimizer: Optimizer,
        epochs: int,
        batch_size: int = 32,
        validation_data: tuple[np.ndarray, np.ndarray] | None = None,
        lr_decay_per_epoch: float = 0.0,
        shuffle_seed: int = 0,
        restore_best_weights: bool = True,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train with per-epoch LR decay and best-val-epoch selection."""
        if len(x) != len(y):
            raise ShapeError(f"x ({len(x)}) and y ({len(y)}) length mismatch")
        if epochs < 1:
            raise ShapeError(f"epochs must be >= 1, got {epochs}")
        if not self._built:
            self.build(x.shape[1:])
        loss = MeanSquaredError()
        history = TrainingHistory()
        shuffler = np.random.default_rng(shuffle_seed)
        base_lr = optimizer.learning_rate
        best_val = float("inf")
        best_weights: list[np.ndarray] | None = None

        for epoch in range(epochs):
            optimizer.learning_rate = base_lr * (
                (1.0 - lr_decay_per_epoch) ** epoch
            )
            order = shuffler.permutation(len(x))
            epoch_losses = []
            for start in range(0, len(x), batch_size):
                batch = order[start : start + batch_size]
                epoch_losses.append(
                    self.train_batch(x[batch], y[batch], optimizer, loss)
                )
            train_loss = float(np.mean(epoch_losses))
            history.train_loss.append(train_loss)
            history.learning_rates.append(optimizer.learning_rate)

            if validation_data is not None:
                val_loss = self.evaluate(*validation_data)
                history.val_loss.append(val_loss)
                if val_loss < best_val:
                    best_val = val_loss
                    history.best_epoch = epoch
                    best_weights = [p.value.copy() for p in self.parameters()]
            if verbose:
                msg = f"epoch {epoch + 1}/{epochs} loss={train_loss:.3e}"
                if validation_data is not None:
                    msg += f" val={history.val_loss[-1]:.3e}"
                log.info(msg)

        if (
            restore_best_weights
            and validation_data is not None
            and best_weights is not None
        ):
            self.set_weights(best_weights)
        elif validation_data is None:
            history.best_epoch = epochs - 1
        return history

    # -- inference ---------------------------------------------------------
    def predict(self, x: np.ndarray, batch_size: int = 64) -> np.ndarray:
        if not self._built:
            raise NotFittedError("model used before build()/fit()")
        outputs = [
            self.forward(x[start : start + batch_size], training=False)
            for start in range(0, len(x), batch_size)
        ]
        return np.concatenate(outputs, axis=0)

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 64
    ) -> float:
        prediction = self.predict(x, batch_size=batch_size)
        return MeanSquaredError().value(prediction, y)

    # -- weight management ------------------------------------------------
    def get_weights(self) -> list[np.ndarray]:
        return [p.value.copy() for p in self.parameters()]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        params = self.parameters()
        if len(weights) != len(params):
            raise ShapeError(
                f"expected {len(params)} weight arrays, got {len(weights)}"
            )
        for parameter, value in zip(params, weights):
            if parameter.value.shape != value.shape:
                raise ShapeError(
                    f"weight shape mismatch for {parameter.name}: "
                    f"{parameter.value.shape} vs {value.shape}"
                )
            parameter.value = value.copy()

    def save(self, path: str) -> None:
        """Serialize weights (npz); architecture is code, not data."""
        if not self._built:
            raise NotFittedError("cannot save an unbuilt model")
        arrays = {
            f"weight_{i}": p.value for i, p in enumerate(self.parameters())
        }
        arrays["input_shape"] = np.asarray(self.input_shape)
        np.savez(path, **arrays)

    def load(self, path: str) -> None:
        """Load weights saved by :meth:`save` into an identical stack."""
        data = np.load(path)
        input_shape = tuple(int(v) for v in data["input_shape"])
        if not self._built:
            self.build(input_shape)
        weights = [
            data[f"weight_{i}"] for i in range(len(self.parameters()))
        ]
        self.set_weights(weights)

    def summary(self) -> str:
        """Human-readable architecture description."""
        lines = ["Sequential:"]
        for layer in self.layers:
            params = sum(p.value.size for p in layer.parameters())
            lines.append(f"  {type(layer).__name__:<18} params={params}")
        lines.append(f"  total parameters: {self.num_parameters()}")
        return "\n".join(lines)
