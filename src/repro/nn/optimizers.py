"""First-order optimizers: SGD, Adam, and the paper's Nadam.

The paper uses Nadam with initial learning rate 1e-4 and a multiplicative
decay to 0.996x after every epoch (Sec. 4); the epoch schedule is applied
by :meth:`repro.nn.model.Sequential.fit` via the mutable
``learning_rate`` attribute.

Updates are *fused*: :meth:`Optimizer.step` gathers all parameters of one
dtype into a single flat buffer and applies the update math once per
group instead of once per tensor.  Every update rule here is purely
elementwise, so the fused step is bitwise identical to a per-parameter
loop while cutting the Python/ufunc dispatch overhead from
``O(#tensors)`` to ``O(#groups)`` per step — which matters for the small,
many-tensor CNNs this repo trains in pure numpy.  After a step each
``Parameter.value`` is a view into its group buffer; the buffer is
re-gathered whenever the parameter list or an externally replaced value
(e.g. :meth:`~repro.nn.model.Sequential.set_weights`) invalidates it.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .layers import Parameter


class _ParameterGroup:
    """Flattened view over all parameters sharing one dtype."""

    __slots__ = (
        "parameters",
        "sizes",
        "offsets",
        "value",
        "grad",
        "views",
        "state",
    )

    def __init__(self, parameters: list[Parameter]) -> None:
        self.parameters = parameters
        sizes = [p.value.size for p in parameters]
        self.sizes = tuple(sizes)
        self.offsets = np.concatenate([[0], np.cumsum(sizes)])
        self.value = np.concatenate([p.value.ravel() for p in parameters])
        self.grad = np.empty_like(self.value)
        self.state: dict[str, np.ndarray] = {}
        self.views: list[np.ndarray] = []
        for index, parameter in enumerate(parameters):
            lo, hi = self.offsets[index], self.offsets[index + 1]
            view = self.value[lo:hi].reshape(parameter.value.shape)
            parameter.value = view
            self.views.append(view)

    def matches(self, parameters: list[Parameter]) -> bool:
        """Whether the cached layout still views these exact arrays."""
        if len(parameters) != len(self.parameters):
            return False
        for index, parameter in enumerate(parameters):
            if (
                parameter is not self.parameters[index]
                or parameter.value is not self.views[index]
            ):
                return False
        return True

    def gather_grads(self) -> None:
        for index, parameter in enumerate(self.parameters):
            lo, hi = self.offsets[index], self.offsets[index + 1]
            self.grad[lo:hi] = parameter.grad.ravel()

    def zero_grads(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()


class Optimizer:
    """Base optimizer; subclasses implement :meth:`_update_group`."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ShapeError(
                f"learning_rate must be positive, got {learning_rate}"
            )
        self.learning_rate = learning_rate
        self._groups: dict[str, _ParameterGroup] = {}
        self._step = 0

    def _grouped(
        self, parameters: list[Parameter]
    ) -> list[_ParameterGroup]:
        """Resolve (building/refreshing as needed) the dtype groups."""
        by_dtype: dict[str, list[Parameter]] = {}
        for parameter in parameters:
            key = np.dtype(parameter.value.dtype).str
            by_dtype.setdefault(key, []).append(parameter)
        groups = []
        for key, members in by_dtype.items():
            group = self._groups.get(key)
            if group is None or not group.matches(members):
                # First step, a new model, or values replaced from the
                # outside (set_weights / load): rebuild the flat buffer.
                # Optimizer state survives ONLY when the per-parameter
                # layout is unchanged — a coincidentally equal total
                # size (e.g. a different model) must start from fresh
                # moments, never consume another layout's state at
                # misaligned offsets.
                previous = group
                group = _ParameterGroup(members)
                if previous is not None and previous.sizes == group.sizes:
                    group.state = {
                        name: array
                        for name, array in previous.state.items()
                        if array.shape == group.value.shape
                    }
                self._groups[key] = group
            groups.append(group)
        return groups

    def step(self, parameters: list[Parameter]) -> None:
        """Apply one fused update per dtype group, then clear gradients."""
        self._step += 1
        for group in self._grouped(parameters):
            group.gather_grads()
            self._update_group(group.value, group.grad, group.state)
            group.zero_grads()

    def _update_group(
        self,
        value: np.ndarray,
        grad: np.ndarray,
        state: dict[str, np.ndarray],
    ) -> None:
        """Elementwise in-place update of one flattened group."""
        raise NotImplementedError


class SGD(Optimizer):
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(self, learning_rate: float = 1e-2, momentum: float = 0.0):
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ShapeError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum

    def _update_group(self, value, grad, state):
        if self.momentum > 0:
            velocity = state.setdefault("velocity", np.zeros_like(value))
            velocity *= self.momentum
            velocity -= self.learning_rate * grad
            value += velocity
        else:
            value -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba)."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta_1: float = 0.9,
        beta_2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        self.beta_1 = beta_1
        self.beta_2 = beta_2
        self.epsilon = epsilon

    def _update_group(self, value, grad, state):
        m = state.setdefault("m", np.zeros_like(value))
        v = state.setdefault("v", np.zeros_like(value))
        m *= self.beta_1
        m += (1 - self.beta_1) * grad
        v *= self.beta_2
        v += (1 - self.beta_2) * grad * grad
        m_hat = m / (1 - self.beta_1**self._step)
        v_hat = v / (1 - self.beta_2**self._step)
        value -= (
            self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
        )


class Nadam(Adam):
    """Adam with Nesterov momentum (Dozat) — the paper's optimizer."""

    def _update_group(self, value, grad, state):
        m = state.setdefault("m", np.zeros_like(value))
        v = state.setdefault("v", np.zeros_like(value))
        m *= self.beta_1
        m += (1 - self.beta_1) * grad
        v *= self.beta_2
        v += (1 - self.beta_2) * grad * grad
        bias_1 = 1 - self.beta_1**self._step
        bias_2 = 1 - self.beta_2**self._step
        m_hat = m / bias_1
        v_hat = v / bias_2
        nesterov = self.beta_1 * m_hat + (1 - self.beta_1) * grad / bias_1
        value -= (
            self.learning_rate * nesterov / (np.sqrt(v_hat) + self.epsilon)
        )
