"""First-order optimizers: SGD, Adam, and the paper's Nadam.

The paper uses Nadam with initial learning rate 1e-4 and a multiplicative
decay to 0.996x after every epoch (Sec. 4); the epoch schedule is applied
by :meth:`repro.nn.model.Sequential.fit` via the mutable
``learning_rate`` attribute.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .layers import Parameter


class Optimizer:
    """Base optimizer; subclasses implement :meth:`_update_one`."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ShapeError(
                f"learning_rate must be positive, got {learning_rate}"
            )
        self.learning_rate = learning_rate
        self._state: dict[int, dict[str, np.ndarray]] = {}
        self._step = 0

    def step(self, parameters: list[Parameter]) -> None:
        """Apply one update to every parameter, then clear gradients."""
        self._step += 1
        for index, parameter in enumerate(parameters):
            state = self._state.setdefault(index, {})
            self._update_one(parameter, state)
            parameter.zero_grad()

    def _update_one(self, parameter: Parameter, state: dict) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(self, learning_rate: float = 1e-2, momentum: float = 0.0):
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ShapeError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum

    def _update_one(self, parameter, state):
        if self.momentum > 0:
            velocity = state.setdefault(
                "velocity", np.zeros_like(parameter.value)
            )
            velocity *= self.momentum
            velocity -= self.learning_rate * parameter.grad
            parameter.value += velocity
        else:
            parameter.value -= self.learning_rate * parameter.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba)."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta_1: float = 0.9,
        beta_2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        self.beta_1 = beta_1
        self.beta_2 = beta_2
        self.epsilon = epsilon

    def _update_one(self, parameter, state):
        m = state.setdefault("m", np.zeros_like(parameter.value))
        v = state.setdefault("v", np.zeros_like(parameter.value))
        g = parameter.grad
        m *= self.beta_1
        m += (1 - self.beta_1) * g
        v *= self.beta_2
        v += (1 - self.beta_2) * g * g
        m_hat = m / (1 - self.beta_1**self._step)
        v_hat = v / (1 - self.beta_2**self._step)
        parameter.value -= (
            self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
        )


class Nadam(Adam):
    """Adam with Nesterov momentum (Dozat) — the paper's optimizer."""

    def _update_one(self, parameter, state):
        m = state.setdefault("m", np.zeros_like(parameter.value))
        v = state.setdefault("v", np.zeros_like(parameter.value))
        g = parameter.grad
        m *= self.beta_1
        m += (1 - self.beta_1) * g
        v *= self.beta_2
        v += (1 - self.beta_2) * g * g
        bias_1 = 1 - self.beta_1**self._step
        bias_2 = 1 - self.beta_2**self._step
        m_hat = m / bias_1
        v_hat = v / bias_2
        nesterov = self.beta_1 * m_hat + (1 - self.beta_1) * g / bias_1
        parameter.value -= (
            self.learning_rate * nesterov / (np.sqrt(v_hat) + self.epsilon)
        )
