"""Numerical gradient checking for layer implementations.

Used by the test suite to validate every hand-derived backward pass, and
exported as a library utility for downstream layer authors.
"""

from __future__ import annotations

import numpy as np

from .layers import Layer


def numerical_gradient(
    func, array: np.ndarray, epsilon: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of scalar ``func`` w.r.t. ``array``.

    ``func`` is called with no arguments and must read ``array`` (which is
    perturbed in place and restored).
    """
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = func()
        flat[i] = original - epsilon
        minus = func()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * epsilon)
    return grad


def check_layer_gradients(
    layer: Layer,
    input_shape: tuple[int, ...],
    seed: int = 0,
    epsilon: float = 1e-6,
    training: bool = True,
) -> dict[str, float]:
    """Compare analytic vs numerical gradients of a layer.

    Uses the scalar objective ``sum(forward(x) * R)`` for a fixed random
    ``R``, whose analytic input gradient is ``backward(R)``.  Returns the
    max absolute error for the input and each parameter.
    """
    rng = np.random.default_rng(seed)
    x = rng.normal(size=input_shape)
    layer.build(input_shape[1:], rng, dtype=np.float64)
    out = layer.forward(x, training=training)
    weights_r = rng.normal(size=out.shape)

    def objective() -> float:
        return float(np.sum(layer.forward(x, training=training) * weights_r))

    errors: dict[str, float] = {}

    analytic_dx = layer.backward(weights_r)
    for parameter in layer.parameters():
        parameter.zero_grad()
    # Re-run to repopulate parameter grads from a clean slate.
    layer.forward(x, training=training)
    layer.backward(weights_r)

    numeric_dx = numerical_gradient(objective, x, epsilon)
    errors["input"] = float(np.max(np.abs(analytic_dx - numeric_dx)))

    for parameter in layer.parameters():
        analytic = parameter.grad.copy()
        numeric = numerical_gradient(objective, parameter.value, epsilon)
        errors[parameter.name] = float(np.max(np.abs(analytic - numeric)))
    return errors
