"""Neural-network layers with hand-derived backward passes.

Every layer follows the same contract:

- ``build(input_shape, rng, dtype) -> output_shape`` allocates parameters
  lazily (shapes exclude the batch dimension);
- ``forward(x, training)`` caches whatever the backward pass needs;
- ``backward(grad)`` consumes the cache and returns the input gradient,
  accumulating parameter gradients into :class:`Parameter` slots.

Convolutions default to an im2col formulation: the input patches are
materialized once per forward pass (via stride tricks) so the forward
pass, the weight gradient and the input gradient each collapse into a
single large GEMM.  The original per-kernel-position shifted-matmul
implementation survives as ``conv_impl="reference"`` and is used by the
equivalence suite to pin the im2col path down to 1e-10.  Models default
to float32 (the paper's GPU precision); the gradient-check tests build
float64 stacks.
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError, ShapeError
from .initializers import glorot_uniform, zeros_init


class Parameter:
    """A trainable tensor with its accumulated gradient."""

    __slots__ = ("name", "value", "grad")

    def __init__(self, name: str, value: np.ndarray) -> None:
        self.name = name
        self.value = value
        self.grad = np.zeros_like(value)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)


class Layer:
    """Base class; stateless layers only override forward/backward."""

    def __init__(self) -> None:
        self.built = False
        self.dtype = np.float32

    def build(
        self,
        input_shape: tuple[int, ...],
        rng: np.random.Generator,
        dtype=np.float32,
    ) -> tuple[int, ...]:
        self.built = True
        self.dtype = dtype
        return input_shape

    def parameters(self) -> list[Parameter]:
        return []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward_params_only(self, grad: np.ndarray):
        """Backward pass for a layer whose input gradient is unused.

        Layers with an expensive input gradient (convolutions) override
        this to accumulate parameter gradients only; the default simply
        delegates to :meth:`backward`.  May return ``None``.
        """
        return self.backward(grad)

    def _require_built(self) -> None:
        if not self.built:
            raise NotFittedError(
                f"{type(self).__name__} used before model.build()"
            )


class Dense(Layer):
    """Fully connected layer: ``y = x W + b``."""

    def __init__(self, units: int) -> None:
        super().__init__()
        if units < 1:
            raise ShapeError(f"units must be >= 1, got {units}")
        self.units = units
        self.weight: Parameter | None = None
        self.bias: Parameter | None = None
        self._cache_x: np.ndarray | None = None

    def build(self, input_shape, rng, dtype=np.float32):
        if len(input_shape) != 1:
            raise ShapeError(
                f"Dense expects flat input, got shape {input_shape}"
            )
        self.dtype = dtype
        fan_in = input_shape[0]
        self.weight = Parameter(
            "dense/weight",
            glorot_uniform(rng, (fan_in, self.units), fan_in, self.units)
            .astype(dtype),
        )
        self.bias = Parameter(
            "dense/bias", zeros_init((self.units,)).astype(dtype)
        )
        self.built = True
        return (self.units,)

    def parameters(self):
        return [self.weight, self.bias]

    def forward(self, x, training=False):
        self._require_built()
        self._cache_x = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad):
        x = self._cache_x
        self.weight.grad += x.T @ grad
        self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value.T


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x, training=False):
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad):
        return grad * self._mask


class Flatten(Layer):
    """Collapse all non-batch dimensions."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: tuple[int, ...] | None = None

    def build(self, input_shape, rng, dtype=np.float32):
        self.built = True
        self.dtype = dtype
        self._features = int(np.prod(input_shape))
        return (self._features,)

    def forward(self, x, training=False):
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad):
        return grad.reshape(self._input_shape)


#: Conv2D implementations selectable per layer.
CONV_IMPLEMENTATIONS = ("im2col", "reference")


class Conv2D(Layer):
    """2-D convolution, valid padding, NHWC layout.

    ``out[b, i, j, :] = sum_{di, dj} x[b, i*s+di, j*s+dj, :] @ W[di, dj]``

    Two numerically equivalent implementations are provided:

    ``conv_impl="im2col"`` (default)
        Width-axis im2col via stride tricks: one contiguous
        ``(B, H, Wo, kw*C)`` window gather per forward pass, after
        which forward, weight gradient and input gradient each run as
        ``kh`` batched GEMMs over contiguous row blocks (the input
        gradient is followed by a ``kw``-step col2im fold).  See the
        implementation-section comment for why the gather stays an
        order of magnitude smaller than a full ``(B*Ho*Wo, kh*kw*C)``
        patch matrix.
    ``conv_impl="reference"``
        The original per-kernel-position shifted-matmul loop, kept as
        the verification baseline for the equivalence suite.

    ``kernel_size`` may be an int (square kernel) or an ``(kh, kw)``
    pair; ``stride`` applies to both spatial axes.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int | tuple[int, int] = 3,
        stride: int = 1,
        conv_impl: str = "im2col",
    ) -> None:
        super().__init__()
        if filters < 1:
            raise ShapeError(f"filters must be >= 1, got {filters}")
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        kh, kw = (int(k) for k in kernel_size)
        if kh < 1 or kw < 1:
            raise ShapeError(
                f"kernel dims must be >= 1, got {kh}x{kw}"
            )
        if stride < 1:
            raise ShapeError(f"stride must be >= 1, got {stride}")
        if conv_impl not in CONV_IMPLEMENTATIONS:
            raise ShapeError(
                f"conv_impl must be one of {CONV_IMPLEMENTATIONS}, "
                f"got {conv_impl!r}"
            )
        self.filters = filters
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.conv_impl = conv_impl
        self.weight: Parameter | None = None
        self.bias: Parameter | None = None
        self._cache_cols: np.ndarray | None = None
        self._cache_slices: list[np.ndarray] | None = None
        self._cache_input_shape: tuple[int, ...] | None = None

    def _output_hw(self, h: int, w: int) -> tuple[int, int]:
        kh, kw = self.kernel_size
        return (h - kh) // self.stride + 1, (w - kw) // self.stride + 1

    def build(self, input_shape, rng, dtype=np.float32):
        if len(input_shape) != 3:
            raise ShapeError(
                f"Conv2D expects (H, W, C) input, got {input_shape}"
            )
        self.dtype = dtype
        h, w, c = input_shape
        kh, kw = self.kernel_size
        if h < 1 or w < 1 or c < 1:
            raise ShapeError(
                f"Conv2D input {input_shape} has a zero-size dimension"
            )
        if h < kh or w < kw:
            raise ShapeError(
                f"input {input_shape} smaller than kernel {kh}x{kw}"
            )
        fan_in = kh * kw * c
        fan_out = kh * kw * self.filters
        self.weight = Parameter(
            "conv/weight",
            glorot_uniform(rng, (kh, kw, c, self.filters), fan_in, fan_out)
            .astype(dtype),
        )
        self.bias = Parameter(
            "conv/bias", zeros_init((self.filters,)).astype(dtype)
        )
        self.built = True
        ho, wo = self._output_hw(h, w)
        return (ho, wo, self.filters)

    def parameters(self):
        return [self.weight, self.bias]

    def _check_spatial(self, x: np.ndarray) -> tuple[int, int]:
        b, h, w, c = x.shape
        kh, kw = self.kernel_size
        if h < 1 or w < 1 or c < 1:
            raise ShapeError(
                f"Conv2D input {x.shape} has a zero-size dimension"
            )
        if h < kh or w < kw:
            raise ShapeError(
                f"input {x.shape} smaller than kernel {kh}x{kw}"
            )
        return self._output_hw(h, w)

    def forward(self, x, training=False):
        self._require_built()
        ho, wo = self._check_spatial(x)
        self._cache_input_shape = x.shape
        if self.conv_impl == "reference":
            return self._forward_reference(x, ho, wo)
        return self._forward_im2col(x, ho, wo)

    def backward(self, grad):
        if self.conv_impl == "reference":
            return self._backward_reference(grad)
        return self._backward_im2col(grad)

    def backward_params_only(self, grad):
        """Parameter gradients only — skips the input-gradient GEMMs.

        Used by :meth:`~repro.nn.model.Sequential.backward` for the
        first layer of a stack, whose input gradient nobody consumes.
        Returns ``None``.
        """
        if self.conv_impl == "reference":
            return self._backward_reference(grad, need_input_grad=False)
        return self._backward_im2col(grad, need_input_grad=False)

    # -- im2col path ------------------------------------------------------
    # The patch matrix is materialized along the *width* axis only: one
    # stride-tricks gather yields ``rows`` of shape ``(B, H, Wo, kw*C)``
    # (every width-window of every input row, an order of magnitude
    # smaller than the full ``(B*Ho*Wo, kh*kw*C)`` patch matrix), and the
    # kernel-row dimension rides the batched-GEMM axis: forward, weight
    # gradient and input gradient are each ``kh`` matmuls over contiguous
    # row blocks instead of ``kh*kw`` shifted matmuls with per-shift
    # copies.  This keeps the GEMM reduction depth at ``kw*C`` (vs the
    # reference's ``C``), which is what makes the small-channel layers of
    # the VVD CNN fast on a CPU.

    def _row_windows(self, x) -> np.ndarray:
        """Contiguous ``(B, H, Wo, kw*C)`` width-window gather of ``x``."""
        kh, kw = self.kernel_size
        s = self.stride
        b, h, w, c = x.shape
        wo = (w - kw) // s + 1
        flat = x.reshape(b, h, w * c)
        windows = np.lib.stride_tricks.sliding_window_view(
            flat, kw * c, axis=2
        )[:, :, :: c * s]
        return np.ascontiguousarray(windows[:, :, :wo])

    def _forward_im2col(self, x, ho, wo):
        kh, kw = self.kernel_size
        s = self.stride
        b, h, w, c = x.shape
        rows = self._row_windows(x)
        self._cache_cols = rows
        w_rows = self.weight.value.reshape(kh, kw * c, self.filters)
        # Allocate in the parameter dtype (as the reference path does):
        # a float64 input through a float32-built layer must not widen
        # the activations downstream.
        out = np.empty(
            (b, ho, wo, self.filters), dtype=self.bias.value.dtype
        )
        out[:] = self.bias.value
        for di in range(kh):
            # (B, Ho, Wo, kw*C) strided view; matmul batches over (B, Ho)
            # with contiguous (Wo, kw*C) blocks — no copy.
            out += rows[:, di : di + s * (ho - 1) + 1 : s] @ w_rows[di]
        return out

    def _backward_im2col(self, grad, need_input_grad=True):
        kh, kw = self.kernel_size
        s = self.stride
        b, h, w, c = self._cache_input_shape
        ho, wo = self._output_hw(h, w)
        grad = np.ascontiguousarray(grad)
        grad_rows = grad.reshape(b, ho * wo, self.filters)
        self.bias.grad += grad.reshape(-1, self.filters).sum(axis=0)
        rows = self._cache_cols
        w_rows = self.weight.value.reshape(kh, kw * c, self.filters)
        w_grad = self.weight.grad.reshape(kh, kw * c, self.filters)
        for di in range(kh):
            block = rows[:, di : di + s * (ho - 1) + 1 : s].reshape(
                b, ho * wo, kw * c
            )
            w_grad[di] += np.matmul(
                block.transpose(0, 2, 1), grad_rows
            ).sum(axis=0)
        if not need_input_grad:
            self._cache_cols = None
            return None
        drows = np.zeros_like(rows)
        for di in range(kh):
            drows[:, di : di + s * (ho - 1) + 1 : s] += grad @ w_rows[di].T
        # Fold the width windows back onto the input grid (col2im along
        # the width axis only).
        dx = np.zeros((b, h, w, c), dtype=grad.dtype)
        folded = drows.reshape(b, h, -1, kw, c)
        for dj in range(kw):
            dx[:, :, dj : dj + s * (wo - 1) + 1 : s, :] += folded[
                :, :, :, dj, :
            ]
        self._cache_cols = None
        return dx

    # -- reference path ---------------------------------------------------
    def _forward_reference(self, x, ho, wo):
        kh, kw = self.kernel_size
        s = self.stride
        b, h, w, c = x.shape
        # One contiguous (B*Ho*Wo, C) copy per kernel shift feeds a single
        # large GEMM, which is far faster than batched small matmuls.
        slices = []
        out_flat = np.empty(
            (b * ho * wo, self.filters), dtype=self.bias.value.dtype
        )
        out_flat[:] = self.bias.value
        for di in range(kh):
            for dj in range(kw):
                x_slice = np.ascontiguousarray(
                    x[
                        :,
                        di : di + s * (ho - 1) + 1 : s,
                        dj : dj + s * (wo - 1) + 1 : s,
                        :,
                    ]
                ).reshape(-1, c)
                slices.append(x_slice)
                out_flat += x_slice @ self.weight.value[di, dj]
        self._cache_slices = slices
        return out_flat.reshape(b, ho, wo, self.filters)

    def _backward_reference(self, grad, need_input_grad=True):
        kh, kw = self.kernel_size
        s = self.stride
        b, h, w, c = self._cache_input_shape
        ho, wo = self._output_hw(h, w)
        grad_flat = np.ascontiguousarray(grad).reshape(-1, self.filters)
        self.bias.grad += grad_flat.sum(axis=0)
        dx = (
            np.zeros((b, h, w, c), dtype=grad.dtype)
            if need_input_grad
            else None
        )
        index = 0
        for di in range(kh):
            for dj in range(kw):
                x_slice = self._cache_slices[index]
                index += 1
                self.weight.grad[di, dj] += x_slice.T @ grad_flat
                if dx is None:
                    continue
                dx_slice = grad_flat @ self.weight.value[di, dj].T
                dx[
                    :,
                    di : di + s * (ho - 1) + 1 : s,
                    dj : dj + s * (wo - 1) + 1 : s,
                    :,
                ] += dx_slice.reshape(b, ho, wo, c)
        self._cache_slices = None
        return dx


class AveragePooling2D(Layer):
    """2x2 average pooling with stride 2 (the paper's pooling layers)."""

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size < 1:
            raise ShapeError(f"pool_size must be >= 1, got {pool_size}")
        self.pool_size = pool_size
        self._cache_input_shape: tuple[int, ...] | None = None

    def build(self, input_shape, rng, dtype=np.float32):
        h, w, c = input_shape
        p = self.pool_size
        if h < p or w < p:
            raise ShapeError(
                f"input {input_shape} smaller than pool {p}x{p}"
            )
        self.built = True
        self.dtype = dtype
        return (h // p, w // p, c)

    def forward(self, x, training=False):
        p = self.pool_size
        b, h, w, c = x.shape
        ho, wo = h // p, w // p
        self._cache_input_shape = x.shape
        trimmed = x[:, : ho * p, : wo * p, :]
        blocks = trimmed.reshape(b, ho, p, wo, p, c)
        return blocks.mean(axis=(2, 4))

    def backward(self, grad):
        p = self.pool_size
        b, h, w, c = self._cache_input_shape
        ho, wo = h // p, w // p
        # Broadcast-fill the upsampled gradient in one pass (a pair of
        # np.repeat calls would allocate and copy the buffer twice).
        upsampled = np.empty((b, ho, p, wo, p, c), dtype=grad.dtype)
        upsampled[:] = (grad / (p * p))[:, :, None, :, None, :]
        upsampled = upsampled.reshape(b, ho * p, wo * p, c)
        if ho * p == h and wo * p == w:
            return upsampled
        dx = np.zeros((b, h, w, c), dtype=grad.dtype)
        dx[:, : ho * p, : wo * p, :] = upsampled
        return dx


class MaxPooling2D(Layer):
    """2x2 max pooling (evaluated by the paper, slightly worse than avg)."""

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size < 1:
            raise ShapeError(f"pool_size must be >= 1, got {pool_size}")
        self.pool_size = pool_size
        self._cache_argmax: np.ndarray | None = None
        self._cache_input_shape: tuple[int, ...] | None = None

    def build(self, input_shape, rng, dtype=np.float32):
        h, w, c = input_shape
        p = self.pool_size
        if h < p or w < p:
            raise ShapeError(
                f"input {input_shape} smaller than pool {p}x{p}"
            )
        self.built = True
        self.dtype = dtype
        return (h // p, w // p, c)

    def forward(self, x, training=False):
        p = self.pool_size
        b, h, w, c = x.shape
        ho, wo = h // p, w // p
        self._cache_input_shape = x.shape
        trimmed = x[:, : ho * p, : wo * p, :]
        blocks = trimmed.reshape(b, ho, p, wo, p, c)
        blocks = blocks.transpose(0, 1, 3, 5, 2, 4).reshape(
            b, ho, wo, c, p * p
        )
        self._cache_argmax = blocks.argmax(axis=-1)
        return blocks.max(axis=-1)

    def backward(self, grad):
        p = self.pool_size
        b, h, w, c = self._cache_input_shape
        ho, wo = h // p, w // p
        one_hot = np.zeros((b, ho, wo, c, p * p), dtype=grad.dtype)
        np.put_along_axis(
            one_hot, self._cache_argmax[..., None], 1.0, axis=-1
        )
        blocks = one_hot * grad[..., None]
        blocks = blocks.reshape(b, ho, wo, c, p, p).transpose(
            0, 1, 4, 2, 5, 3
        )
        dx = np.zeros((b, h, w, c), dtype=grad.dtype)
        dx[:, : ho * p, : wo * p, :] = blocks.reshape(
            b, ho * p, wo * p, c
        )
        return dx


class BatchNorm2D(Layer):
    """Per-channel batch normalization over (B, H, W).

    The paper removed batch-norm from the reference architecture after
    observing no benefit (Sec. 4); the layer exists for the ablation
    benchmark.
    """

    def __init__(self, momentum: float = 0.99, epsilon: float = 1e-5) -> None:
        super().__init__()
        if not 0.0 < momentum < 1.0:
            raise ShapeError(f"momentum must be in (0, 1), got {momentum}")
        self.momentum = momentum
        self.epsilon = epsilon
        self.gamma: Parameter | None = None
        self.beta: Parameter | None = None
        self.running_mean: np.ndarray | None = None
        self.running_var: np.ndarray | None = None
        self._cache: tuple | None = None

    def build(self, input_shape, rng, dtype=np.float32):
        if len(input_shape) != 3:
            raise ShapeError(
                f"BatchNorm2D expects (H, W, C) input, got {input_shape}"
            )
        self.dtype = dtype
        channels = input_shape[2]
        self.gamma = Parameter("bn/gamma", np.ones(channels, dtype=dtype))
        self.beta = Parameter("bn/beta", np.zeros(channels, dtype=dtype))
        self.running_mean = np.zeros(channels, dtype=dtype)
        self.running_var = np.ones(channels, dtype=dtype)
        self.built = True
        return input_shape

    def parameters(self):
        return [self.gamma, self.beta]

    def forward(self, x, training=False):
        self._require_built()
        if training:
            mean = x.mean(axis=(0, 1, 2))
            var = x.var(axis=(0, 1, 2))
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            ).astype(self.dtype)
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            ).astype(self.dtype)
        else:
            mean = self.running_mean
            var = self.running_var
        std = np.sqrt(var + self.epsilon)
        normalized = (x - mean) / std
        self._cache = (normalized, std)
        return self.gamma.value * normalized + self.beta.value

    def backward(self, grad):
        normalized, std = self._cache
        self.gamma.grad += (grad * normalized).sum(axis=(0, 1, 2))
        self.beta.grad += grad.sum(axis=(0, 1, 2))
        g = grad * self.gamma.value
        mean_g = g.mean(axis=(0, 1, 2))
        mean_gx = (g * normalized).mean(axis=(0, 1, 2))
        return (g - mean_g - normalized * mean_gx) / std
