"""Neural-network layers with hand-derived backward passes.

Every layer follows the same contract:

- ``build(input_shape, rng, dtype) -> output_shape`` allocates parameters
  lazily (shapes exclude the batch dimension);
- ``forward(x, training)`` caches whatever the backward pass needs;
- ``backward(grad)`` consumes the cache and returns the input gradient,
  accumulating parameter gradients into :class:`Parameter` slots.

Convolutions are computed as ``kernel_size**2`` shifted matmuls instead of
im2col: the arithmetic is identical but no patch matrix is materialized,
which makes pure-numpy training memory-bandwidth friendly.  Models default
to float32 (the paper's GPU precision); the gradient-check tests build
float64 stacks.
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError, ShapeError
from .initializers import glorot_uniform, zeros_init


class Parameter:
    """A trainable tensor with its accumulated gradient."""

    __slots__ = ("name", "value", "grad")

    def __init__(self, name: str, value: np.ndarray) -> None:
        self.name = name
        self.value = value
        self.grad = np.zeros_like(value)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)


class Layer:
    """Base class; stateless layers only override forward/backward."""

    def __init__(self) -> None:
        self.built = False
        self.dtype = np.float32

    def build(
        self,
        input_shape: tuple[int, ...],
        rng: np.random.Generator,
        dtype=np.float32,
    ) -> tuple[int, ...]:
        self.built = True
        self.dtype = dtype
        return input_shape

    def parameters(self) -> list[Parameter]:
        return []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _require_built(self) -> None:
        if not self.built:
            raise NotFittedError(
                f"{type(self).__name__} used before model.build()"
            )


class Dense(Layer):
    """Fully connected layer: ``y = x W + b``."""

    def __init__(self, units: int) -> None:
        super().__init__()
        if units < 1:
            raise ShapeError(f"units must be >= 1, got {units}")
        self.units = units
        self.weight: Parameter | None = None
        self.bias: Parameter | None = None
        self._cache_x: np.ndarray | None = None

    def build(self, input_shape, rng, dtype=np.float32):
        if len(input_shape) != 1:
            raise ShapeError(
                f"Dense expects flat input, got shape {input_shape}"
            )
        self.dtype = dtype
        fan_in = input_shape[0]
        self.weight = Parameter(
            "dense/weight",
            glorot_uniform(rng, (fan_in, self.units), fan_in, self.units)
            .astype(dtype),
        )
        self.bias = Parameter(
            "dense/bias", zeros_init((self.units,)).astype(dtype)
        )
        self.built = True
        return (self.units,)

    def parameters(self):
        return [self.weight, self.bias]

    def forward(self, x, training=False):
        self._require_built()
        self._cache_x = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad):
        x = self._cache_x
        self.weight.grad += x.T @ grad
        self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value.T


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x, training=False):
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad):
        return grad * self._mask


class Flatten(Layer):
    """Collapse all non-batch dimensions."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: tuple[int, ...] | None = None

    def build(self, input_shape, rng, dtype=np.float32):
        self.built = True
        self.dtype = dtype
        self._features = int(np.prod(input_shape))
        return (self._features,)

    def forward(self, x, training=False):
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad):
        return grad.reshape(self._input_shape)


class Conv2D(Layer):
    """2-D convolution, stride 1, valid padding, NHWC layout.

    ``out[b, i, j, :] = sum_{di, dj} x[b, i+di, j+dj, :] @ W[di, dj]``
    computed as ``kernel_size**2`` batched matmuls over input shifts.
    """

    def __init__(self, filters: int, kernel_size: int = 3) -> None:
        super().__init__()
        if filters < 1:
            raise ShapeError(f"filters must be >= 1, got {filters}")
        if kernel_size < 1:
            raise ShapeError(f"kernel_size must be >= 1, got {kernel_size}")
        self.filters = filters
        self.kernel_size = kernel_size
        self.weight: Parameter | None = None
        self.bias: Parameter | None = None
        self._cache_slices: list[np.ndarray] | None = None
        self._cache_input_shape: tuple[int, ...] | None = None

    def build(self, input_shape, rng, dtype=np.float32):
        if len(input_shape) != 3:
            raise ShapeError(
                f"Conv2D expects (H, W, C) input, got {input_shape}"
            )
        self.dtype = dtype
        h, w, c = input_shape
        k = self.kernel_size
        if h < k or w < k:
            raise ShapeError(
                f"input {input_shape} smaller than kernel {k}x{k}"
            )
        fan_in = k * k * c
        fan_out = k * k * self.filters
        self.weight = Parameter(
            "conv/weight",
            glorot_uniform(rng, (k, k, c, self.filters), fan_in, fan_out)
            .astype(dtype),
        )
        self.bias = Parameter(
            "conv/bias", zeros_init((self.filters,)).astype(dtype)
        )
        self.built = True
        return (h - k + 1, w - k + 1, self.filters)

    def parameters(self):
        return [self.weight, self.bias]

    def forward(self, x, training=False):
        self._require_built()
        k = self.kernel_size
        b, h, w, c = x.shape
        ho, wo = h - k + 1, w - k + 1
        self._cache_input_shape = x.shape
        # One contiguous (B*Ho*Wo, C) copy per kernel shift feeds a single
        # large GEMM, which is far faster than batched small matmuls.
        slices = []
        out_flat = np.empty(
            (b * ho * wo, self.filters), dtype=self.bias.value.dtype
        )
        out_flat[:] = self.bias.value
        for di in range(k):
            for dj in range(k):
                x_slice = np.ascontiguousarray(
                    x[:, di : di + ho, dj : dj + wo, :]
                ).reshape(-1, c)
                slices.append(x_slice)
                out_flat += x_slice @ self.weight.value[di, dj]
        self._cache_slices = slices
        return out_flat.reshape(b, ho, wo, self.filters)

    def backward(self, grad):
        k = self.kernel_size
        b, h, w, c = self._cache_input_shape
        ho, wo = h - k + 1, w - k + 1
        grad_flat = np.ascontiguousarray(grad).reshape(-1, self.filters)
        self.bias.grad += grad_flat.sum(axis=0)
        dx = np.zeros((b, h, w, c), dtype=grad.dtype)
        index = 0
        for di in range(k):
            for dj in range(k):
                x_slice = self._cache_slices[index]
                index += 1
                self.weight.grad[di, dj] += x_slice.T @ grad_flat
                dx_slice = grad_flat @ self.weight.value[di, dj].T
                dx[:, di : di + ho, dj : dj + wo, :] += dx_slice.reshape(
                    b, ho, wo, c
                )
        self._cache_slices = None
        return dx


class AveragePooling2D(Layer):
    """2x2 average pooling with stride 2 (the paper's pooling layers)."""

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size < 1:
            raise ShapeError(f"pool_size must be >= 1, got {pool_size}")
        self.pool_size = pool_size
        self._cache_input_shape: tuple[int, ...] | None = None

    def build(self, input_shape, rng, dtype=np.float32):
        h, w, c = input_shape
        p = self.pool_size
        if h < p or w < p:
            raise ShapeError(
                f"input {input_shape} smaller than pool {p}x{p}"
            )
        self.built = True
        self.dtype = dtype
        return (h // p, w // p, c)

    def forward(self, x, training=False):
        p = self.pool_size
        b, h, w, c = x.shape
        ho, wo = h // p, w // p
        self._cache_input_shape = x.shape
        trimmed = x[:, : ho * p, : wo * p, :]
        blocks = trimmed.reshape(b, ho, p, wo, p, c)
        return blocks.mean(axis=(2, 4))

    def backward(self, grad):
        p = self.pool_size
        b, h, w, c = self._cache_input_shape
        ho, wo = h // p, w // p
        upsampled = np.repeat(
            np.repeat(grad / (p * p), p, axis=1), p, axis=2
        )
        dx = np.zeros((b, h, w, c), dtype=grad.dtype)
        dx[:, : ho * p, : wo * p, :] = upsampled
        return dx


class MaxPooling2D(Layer):
    """2x2 max pooling (evaluated by the paper, slightly worse than avg)."""

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size < 1:
            raise ShapeError(f"pool_size must be >= 1, got {pool_size}")
        self.pool_size = pool_size
        self._cache_argmax: np.ndarray | None = None
        self._cache_input_shape: tuple[int, ...] | None = None

    def build(self, input_shape, rng, dtype=np.float32):
        h, w, c = input_shape
        p = self.pool_size
        if h < p or w < p:
            raise ShapeError(
                f"input {input_shape} smaller than pool {p}x{p}"
            )
        self.built = True
        self.dtype = dtype
        return (h // p, w // p, c)

    def forward(self, x, training=False):
        p = self.pool_size
        b, h, w, c = x.shape
        ho, wo = h // p, w // p
        self._cache_input_shape = x.shape
        trimmed = x[:, : ho * p, : wo * p, :]
        blocks = trimmed.reshape(b, ho, p, wo, p, c)
        blocks = blocks.transpose(0, 1, 3, 5, 2, 4).reshape(
            b, ho, wo, c, p * p
        )
        self._cache_argmax = blocks.argmax(axis=-1)
        return blocks.max(axis=-1)

    def backward(self, grad):
        p = self.pool_size
        b, h, w, c = self._cache_input_shape
        ho, wo = h // p, w // p
        one_hot = np.zeros((b, ho, wo, c, p * p), dtype=grad.dtype)
        np.put_along_axis(
            one_hot, self._cache_argmax[..., None], 1.0, axis=-1
        )
        blocks = one_hot * grad[..., None]
        blocks = blocks.reshape(b, ho, wo, c, p, p).transpose(
            0, 1, 4, 2, 5, 3
        )
        dx = np.zeros((b, h, w, c), dtype=grad.dtype)
        dx[:, : ho * p, : wo * p, :] = blocks.reshape(
            b, ho * p, wo * p, c
        )
        return dx


class BatchNorm2D(Layer):
    """Per-channel batch normalization over (B, H, W).

    The paper removed batch-norm from the reference architecture after
    observing no benefit (Sec. 4); the layer exists for the ablation
    benchmark.
    """

    def __init__(self, momentum: float = 0.99, epsilon: float = 1e-5) -> None:
        super().__init__()
        if not 0.0 < momentum < 1.0:
            raise ShapeError(f"momentum must be in (0, 1), got {momentum}")
        self.momentum = momentum
        self.epsilon = epsilon
        self.gamma: Parameter | None = None
        self.beta: Parameter | None = None
        self.running_mean: np.ndarray | None = None
        self.running_var: np.ndarray | None = None
        self._cache: tuple | None = None

    def build(self, input_shape, rng, dtype=np.float32):
        if len(input_shape) != 3:
            raise ShapeError(
                f"BatchNorm2D expects (H, W, C) input, got {input_shape}"
            )
        self.dtype = dtype
        channels = input_shape[2]
        self.gamma = Parameter("bn/gamma", np.ones(channels, dtype=dtype))
        self.beta = Parameter("bn/beta", np.zeros(channels, dtype=dtype))
        self.running_mean = np.zeros(channels, dtype=dtype)
        self.running_var = np.ones(channels, dtype=dtype)
        self.built = True
        return input_shape

    def parameters(self):
        return [self.gamma, self.beta]

    def forward(self, x, training=False):
        self._require_built()
        if training:
            mean = x.mean(axis=(0, 1, 2))
            var = x.var(axis=(0, 1, 2))
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            ).astype(self.dtype)
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            ).astype(self.dtype)
        else:
            mean = self.running_mean
            var = self.running_var
        std = np.sqrt(var + self.epsilon)
        normalized = (x - mean) / std
        self._cache = (normalized, std)
        return self.gamma.value * normalized + self.beta.value

    def backward(self, grad):
        normalized, std = self._cache
        self.gamma.grad += (grad * normalized).sum(axis=(0, 1, 2))
        self.beta.grad += grad.sum(axis=(0, 1, 2))
        g = grad * self.gamma.value
        mean_g = g.mean(axis=(0, 1, 2))
        mean_gx = (g * normalized).mean(axis=(0, 1, 2))
        return (g - mean_g - normalized * mean_gx) / std
