"""Loss functions.

The paper trains and model-selects on mean squared error (Sec. 4).

Convention (pinned by ``tests/nn/test_mse_convention.py``): the loss is
the mean over **every element** of the batch, ``mean((pred - target)^2)``
over all ``B * D`` entries, and :meth:`MeanSquaredError.gradient` is the
exact derivative of that value, ``2 * (pred - target) / (B * D)``.  This
matches Keras' ``'mse'`` up to reduction order (Keras averages per-sample
means, which equals the per-element mean for equal-sized samples), so the
paper's Nadam learning rates transfer unchanged.  A *per-sample* MSE
(sum over the ``D`` outputs, mean over the batch) would scale gradients —
and therefore the effective learning rate — by ``D`` (22 for the 11-tap
Fig. 6 output); do not change the reduction without rescaling
``VVDConfig.learning_rate``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


class MeanSquaredError:
    """``mean((pred - target)^2)`` over every element of the batch."""

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> float:
        return self.value(prediction, target)

    @staticmethod
    def _validate(prediction: np.ndarray, target: np.ndarray) -> None:
        if prediction.shape != target.shape:
            raise ShapeError(
                f"prediction {prediction.shape} vs target {target.shape}"
            )
        if prediction.size == 0:
            raise ShapeError("MSE of empty arrays is undefined")

    def value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        self._validate(prediction, target)
        return float(np.mean((prediction - target) ** 2))

    def gradient(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        self._validate(prediction, target)
        return 2.0 * (prediction - target) / prediction.size
