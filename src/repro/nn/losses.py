"""Loss functions.

The paper trains and model-selects on mean squared error (Sec. 4).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


class MeanSquaredError:
    """``mean((pred - target)^2)`` over every element of the batch."""

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> float:
        return self.value(prediction, target)

    @staticmethod
    def _validate(prediction: np.ndarray, target: np.ndarray) -> None:
        if prediction.shape != target.shape:
            raise ShapeError(
                f"prediction {prediction.shape} vs target {target.shape}"
            )
        if prediction.size == 0:
            raise ShapeError("MSE of empty arrays is undefined")

    def value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        self._validate(prediction, target)
        return float(np.mean((prediction - target) ** 2))

    def gradient(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        self._validate(prediction, target)
        return 2.0 * (prediction - target) / prediction.size
