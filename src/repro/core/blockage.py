"""LoS blockage detection from depth images (extension).

Sec. 6.4 observes that VVD's residual errors cluster at LoS/NLoS
transitions and that "better detection of a LoS and NLoS scenario can
improve its performance".  This extension implements that detector: a
logistic-regression classifier on pooled depth features predicting whether
the human currently blocks the line of sight.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import SimulationConfig
from ..dataset.trace import MeasurementSet
from ..errors import NotFittedError, ShapeError
from ..vision.preprocessing import normalize_depth


def _pool_features(images: np.ndarray, factor: int = 5) -> np.ndarray:
    """Block-mean pooling + bias feature: (n, rows, cols) -> (n, d)."""
    n, rows, cols = images.shape
    r, c = rows // factor, cols // factor
    trimmed = images[:, : r * factor, : c * factor]
    pooled = trimmed.reshape(n, r, factor, c, factor).mean(axis=(2, 4))
    flat = pooled.reshape(n, -1)
    return np.concatenate([flat, np.ones((n, 1))], axis=1)


class BlockageDetector:
    """Logistic regression: depth image -> P(LoS blocked).

    Features are standardized (per-feature z-score over the training
    set) before the gradient descent: raw pooled depths are dominated by
    the static room background, which leaves the loss surface so badly
    conditioned that plain GD learns little beyond the class base rate.
    Standardization makes the human silhouette the high-contrast feature
    and the fit converges to a genuinely separating boundary — the
    streaming proactive policy defers transmissions on this detector's
    probabilities, so calibration matters there, not just accuracy.
    """

    def __init__(
        self,
        pool_factor: int = 5,
        learning_rate: float = 0.5,
        epochs: int = 200,
        l2: float = 1e-4,
    ) -> None:
        self.pool_factor = pool_factor
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.weights: np.ndarray | None = None
        self._feature_mean: np.ndarray | None = None
        self._feature_std: np.ndarray | None = None

    # -- data ------------------------------------------------------------
    def _dataset(
        self, sets: Sequence[MeasurementSet], config: SimulationConfig
    ) -> tuple[np.ndarray, np.ndarray]:
        images, labels = [], []
        for measurement_set in sets:
            for record in measurement_set.packets:
                frame = measurement_set.frames[record.frame_index]
                images.append(
                    normalize_depth(frame, config.camera.max_depth_m)
                )
                labels.append(record.los_blocked)
        if not images:
            raise ShapeError("no packets available for blockage training")
        return np.stack(images), np.asarray(labels, dtype=np.float64)

    # -- training ---------------------------------------------------------
    def _standardize(self, features: np.ndarray) -> np.ndarray:
        """Apply the stored per-feature z-scoring (bias column excluded)."""
        return (features - self._feature_mean) / self._feature_std

    def fit(
        self, sets: Sequence[MeasurementSet], config: SimulationConfig
    ) -> "BlockageDetector":
        images, labels = self._dataset(sets, config)
        features = _pool_features(images, self.pool_factor)
        # Standardize every pooled-depth feature; the bias column keeps
        # mean 0 / std 1 so it passes through unchanged.
        mean = features.mean(axis=0)
        std = np.maximum(features.std(axis=0), 1e-6)
        mean[-1], std[-1] = 0.0, 1.0
        self._feature_mean, self._feature_std = mean, std
        features = self._standardize(features)
        weights = np.zeros(features.shape[1])
        n = len(labels)
        for _ in range(self.epochs):
            logits = features @ weights
            probabilities = 1.0 / (1.0 + np.exp(-logits))
            gradient = features.T @ (probabilities - labels) / n
            gradient += self.l2 * weights
            weights -= self.learning_rate * gradient
        self.weights = weights
        return self

    # -- inference ---------------------------------------------------------
    def predict_proba(self, images: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise NotFittedError("BlockageDetector used before fit()")
        if images.ndim == 2:
            images = images[None]
        features = self._standardize(
            _pool_features(images, self.pool_factor)
        )
        return 1.0 / (1.0 + np.exp(-(features @ self.weights)))

    def predict(self, images: np.ndarray) -> np.ndarray:
        return self.predict_proba(images) >= 0.5

    def accuracy(
        self, sets: Sequence[MeasurementSet], config: SimulationConfig
    ) -> float:
        images, labels = self._dataset(sets, config)
        predictions = self.predict(images)
        return float(np.mean(predictions == labels.astype(bool)))
