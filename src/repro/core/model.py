"""The Fig. 8 CNN architecture.

The paper specifies: first Conv2D with 32 filters of 3x3, all average
pools 2x2, a 256-neuron dense layer, a 22-neuron linear output (11 complex
taps), ReLU activations after each convolution and the first dense layer.
The intermediate layer widths are reconstructed as 32 -> 32 -> 64 (see
DESIGN.md §5).  Max pooling and batch normalization are available for the
paper's ablations (both were evaluated and rejected in Sec. 4).
"""

from __future__ import annotations

from ..config import VVDConfig
from ..errors import ConfigurationError
from ..nn import (
    AveragePooling2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Flatten,
    MaxPooling2D,
    ReLU,
    Sequential,
)


def build_vvd_cnn(
    input_shape: tuple[int, int],
    num_taps: int,
    config: VVDConfig | None = None,
    seed: int = 0,
    input_channels: int = 1,
) -> Sequential:
    """Construct (and build) the VVD CNN for a given depth-image shape.

    Parameters
    ----------
    input_shape:
        ``(rows, cols)`` of the pre-processed depth image (50x90 in the
        paper).
    num_taps:
        CIR length; the output layer has ``2 * num_taps`` neurons (Fig. 6).
    config:
        Hyper-parameters; defaults to the paper's values.
    seed:
        Weight-initialization seed.
    """
    config = config or VVDConfig()
    rows, cols = input_shape
    pool = MaxPooling2D if config.pooling == "max" else AveragePooling2D

    layers = []
    shape_r, shape_c = rows, cols
    for filters in config.conv_filters:
        shape_r -= config.kernel_size - 1
        shape_c -= config.kernel_size - 1
        if shape_r < 2 or shape_c < 2:
            raise ConfigurationError(
                f"input {input_shape} too small for "
                f"{len(config.conv_filters)} conv/pool stages"
            )
        layers.append(Conv2D(filters, config.kernel_size))
        if config.use_batch_norm:
            layers.append(BatchNorm2D())
        layers.append(ReLU())
        layers.append(pool(2))
        shape_r //= 2
        shape_c //= 2
    layers.append(Flatten())
    layers.append(Dense(config.dense_units))
    layers.append(ReLU())
    layers.append(Dense(2 * num_taps))

    model = Sequential(layers, seed=seed)
    model.build((rows, cols, input_channels))
    return model
