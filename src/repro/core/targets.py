"""Training-pair assembly for the VVD CNN (Sec. 4 / Sec. 5.3).

Inputs are normalized depth images; targets are the canonical-phase
whole-packet LS estimates.  The three paper variants differ only in the
prediction horizon: VVD-Current pairs a packet's CIR with its LED-matched
frame, VVD-33.3ms-Future with the frame one interval earlier, and
VVD-100ms-Future with the frame three intervals earlier ("providing input
as the same image, the current ... or 33.3 ms ... or 100 ms future channel
estimation were given as outputs").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config import SimulationConfig
from ..dataset.trace import MeasurementSet
from ..errors import ShapeError
from ..vision.preprocessing import normalize_depth
from .codec import cir_to_real


@dataclass
class TrainingData:
    """Image/target pairs ready for the CNN."""

    images: np.ndarray   # (n, rows, cols, 1) float32, depth in [0, 1]
    targets: np.ndarray  # (n, taps) complex canonical CIRs
    set_indices: np.ndarray
    packet_indices: np.ndarray

    @property
    def num_samples(self) -> int:
        return len(self.images)

    def real_targets(self, scale: float = 1.0) -> np.ndarray:
        """Fig. 6 encoding of the (optionally normalized) targets."""
        return cir_to_real(self.targets / scale).astype(np.float32)


def horizon_frame_offset(
    horizon_s: float, frame_interval_s: float
) -> int:
    """Frames of look-ahead for a prediction horizon (0, 1 or 3)."""
    if horizon_s < 0:
        raise ShapeError(f"horizon_s must be >= 0, got {horizon_s}")
    return int(round(horizon_s / frame_interval_s))


def build_training_data(
    sets: Sequence[MeasurementSet],
    config: SimulationConfig,
    horizon_frames: int = 0,
    subsample: int = 1,
) -> TrainingData:
    """Collect (image, CIR) pairs across measurement sets.

    ``horizon_frames > 0`` shifts the input frame into the past relative
    to the packet, training the network to predict that far into the
    future.  Packets whose shifted frame falls before the recording start
    are skipped.  ``subsample`` keeps every n-th packet (used by the
    reduced presets to bound pure-numpy training cost).
    """
    if subsample < 1:
        raise ShapeError(f"subsample must be >= 1, got {subsample}")
    if horizon_frames < 0:
        raise ShapeError(
            f"horizon_frames must be >= 0, got {horizon_frames}"
        )
    images: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    set_indices: list[int] = []
    packet_indices: list[int] = []
    max_depth = config.camera.max_depth_m
    for measurement_set in sets:
        for packet_index, record in enumerate(measurement_set.packets):
            if packet_index % subsample != 0:
                continue
            frame_index = record.frame_index - horizon_frames
            if frame_index < 0:
                continue
            frame = measurement_set.frames[frame_index]
            images.append(normalize_depth(frame, max_depth))
            targets.append(record.h_ls_canonical)
            set_indices.append(measurement_set.index)
            packet_indices.append(packet_index)
    if not images:
        raise ShapeError("no training pairs could be assembled")
    stacked = np.stack(images).astype(np.float32)[..., None]
    return TrainingData(
        images=stacked,
        targets=np.stack(targets),
        set_indices=np.asarray(set_indices),
        packet_indices=np.asarray(packet_indices),
    )
