"""Veni Vidi Dixi — the paper's primary contribution.

Maps depth images of the communication environment to complex channel
estimates with a CNN (Sec. 4):

- :mod:`repro.core.codec` — complex CIR <-> real output vector (Fig. 6).
- :mod:`repro.core.normalization` — training-set max-abs normalization of
  the CIR targets and its inversion for evaluation.
- :mod:`repro.core.model` — the Fig. 8 CNN architecture builder.
- :mod:`repro.core.targets` — (image, CIR) training-pair assembly for the
  three prediction horizons (current / +33.3 ms / +100 ms).
- :mod:`repro.core.training` — the training pipeline with validation-based
  model selection.
- :mod:`repro.core.checkpoint` — lossless on-disk round-tripping of
  trained models (consumed by the campaign model registry).
- :mod:`repro.core.vvd` — the :class:`VVDEstimator` plugged into the
  evaluation suite.
- :mod:`repro.core.blockage` — LoS blockage detector extension (Sec. 6.4
  insight).
"""

from .codec import cir_to_real, real_to_cir
from .normalization import CIRNormalizer
from .model import build_vvd_cnn
from .targets import TrainingData, build_training_data, horizon_frame_offset
from .training import TrainedVVD, train_vvd
from .checkpoint import (
    checkpoint_complete,
    load_trained_vvd,
    save_trained_vvd,
)
from .vvd import VVDEstimator
from .blockage import BlockageDetector

__all__ = [
    "cir_to_real",
    "real_to_cir",
    "CIRNormalizer",
    "build_vvd_cnn",
    "TrainingData",
    "build_training_data",
    "horizon_frame_offset",
    "TrainedVVD",
    "train_vvd",
    "checkpoint_complete",
    "load_trained_vvd",
    "save_trained_vvd",
    "VVDEstimator",
    "BlockageDetector",
]
