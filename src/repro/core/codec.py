"""Complex-valued CIR <-> real-valued network output (paper Fig. 6).

Complex-valued CNNs are still a research topic (Sec. 4, [20]); the paper
side-steps them by concatenating the real parts and the imaginary parts of
the taps: an 11-tap CIR becomes a 22-neuron output layer.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def cir_to_real(cir: np.ndarray) -> np.ndarray:
    """``(..., n)`` complex -> ``(..., 2n)`` real: [Re..., Im...]."""
    cir = np.asarray(cir, dtype=np.complex128)
    return np.concatenate([cir.real, cir.imag], axis=-1)


def real_to_cir(vector: np.ndarray) -> np.ndarray:
    """Inverse of :func:`cir_to_real`."""
    vector = np.asarray(vector, dtype=np.float64)
    n2 = vector.shape[-1]
    if n2 % 2 != 0:
        raise ShapeError(
            f"real vector length must be even (Re||Im), got {n2}"
        )
    half = n2 // 2
    return vector[..., :half] + 1j * vector[..., half:]
