"""VVD training pipeline (Sec. 4).

Assembles training/validation pairs, fits the CIR normalizer on the
training targets, trains the Fig. 8 CNN with Nadam + per-epoch decay, and
returns the weights of the best-validation epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config import SimulationConfig
from ..dataset.trace import MeasurementSet
from ..nn import Nadam, Sequential, TrainingHistory
from .codec import real_to_cir
from .model import build_vvd_cnn
from .normalization import CIRNormalizer
from .targets import TrainingData, build_training_data


@dataclass
class TrainedVVD:
    """A trained VVD model with everything needed for inference."""

    model: Sequential
    normalizer: CIRNormalizer
    history: TrainingHistory
    horizon_frames: int
    input_shape: tuple[int, int]
    #: Per-pixel input standardization (mean/std over the training images).
    #: The room background dominates raw depth images; standardizing makes
    #: the human silhouette a high-contrast feature, which the small
    #: reduced-scale training sets need (DESIGN.md §5).  ``None`` disables.
    image_mean: np.ndarray | None = None
    image_std: np.ndarray | None = None

    def prepare_images(self, images: np.ndarray) -> np.ndarray:
        """Apply the stored input standardization."""
        if images.ndim == 3:
            images = images[..., None]
        images = images.astype(np.float32)
        if self.image_mean is not None:
            images = (images - self.image_mean) / self.image_std
        return images

    def predict_cir(self, images: np.ndarray) -> np.ndarray:
        """Depth images -> complex canonical CIR estimates.

        ``images`` is ``(n, rows, cols)`` or ``(n, rows, cols, 1)`` with
        depth already normalized to [0, 1].
        """
        raw = self.model.predict(self.prepare_images(images))
        return self.normalizer.inverse(real_to_cir(raw))


def train_vvd(
    training_sets: Sequence[MeasurementSet],
    validation_sets: Sequence[MeasurementSet],
    config: SimulationConfig,
    horizon_frames: int = 0,
    seed: int = 7,
    verbose: bool = False,
) -> TrainedVVD:
    """Train one VVD variant on a Table 2 split."""
    vvd = config.vvd
    train_data: TrainingData = build_training_data(
        training_sets,
        config,
        horizon_frames=horizon_frames,
        subsample=vvd.train_subsample,
    )
    val_data: TrainingData = build_training_data(
        validation_sets,
        config,
        horizon_frames=horizon_frames,
        subsample=vvd.train_subsample,
    )
    normalizer = CIRNormalizer().fit(train_data.targets)
    y_train = train_data.real_targets(scale=normalizer.scale)
    y_val = val_data.real_targets(scale=normalizer.scale)

    image_mean = image_std = None
    x_train = train_data.images
    x_val = val_data.images
    if vvd.standardize_inputs:
        image_mean = x_train.mean(axis=0, keepdims=True).astype(np.float32)
        # Floor the per-pixel std: pixels the human rarely touches would
        # otherwise amplify unseen deviations by orders of magnitude.
        raw_std = x_train.std(axis=0, keepdims=True)
        floor = max(0.25 * float(raw_std.max()), 1e-3)
        image_std = np.maximum(raw_std, floor).astype(np.float32)
        x_train = (x_train - image_mean) / image_std
        x_val = (x_val - image_mean) / image_std

    input_shape = train_data.images.shape[1:3]
    model = build_vvd_cnn(
        input_shape, config.channel.num_taps, vvd, seed=seed
    )
    optimizer = Nadam(learning_rate=vvd.learning_rate)
    history = model.fit(
        x_train,
        y_train,
        optimizer,
        epochs=vvd.epochs,
        batch_size=vvd.batch_size,
        validation_data=(x_val, y_val),
        lr_decay_per_epoch=vvd.lr_decay_per_epoch,
        shuffle_seed=seed,
        restore_best_weights=True,
        verbose=verbose,
    )
    return TrainedVVD(
        model=model,
        normalizer=normalizer,
        history=history,
        horizon_frames=horizon_frames,
        input_shape=(int(input_shape[0]), int(input_shape[1])),
        image_mean=image_mean,
        image_std=image_std,
    )
