"""The VVD channel estimator (the paper's contribution, Sec. 4-5).

Depth image in, complex channel estimate out — no pilot needed.  The
estimate is produced in the canonical phase domain and re-aligned to each
received block through the footnote-4 preamble correlation (handled by the
evaluation runner).

The estimator is safe to share between a standalone entry and a
``Preamble-VVD Combined`` entry: training happens once (idempotent
``prepare``) and per-frame predictions are cached.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ..errors import NotFittedError
from ..estimation.base import (
    Capabilities,
    ChannelEstimate,
    ChannelEstimator,
    PacketContext,
)
from ..vision.preprocessing import normalize_depth
from .training import TrainedVVD, train_vvd

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..campaign.models import ModelCheckpointRegistry

_HORIZON_NAMES = {0: "VVD-Current", 1: "VVD-33.3ms Future", 3: "VVD-100ms Future"}


class VVDEstimator(ChannelEstimator):
    """Image-based blind channel estimation (Veni Vidi Dixi)."""

    capabilities = Capabilities(reliable=True, scalable=True, dynamic=True)

    def __init__(
        self,
        horizon_frames: int = 0,
        seed: int = 7,
        name: str | None = None,
        verbose: bool = False,
        checkpoints: "ModelCheckpointRegistry | None" = None,
        engine: str = "batch",
    ) -> None:
        self.horizon_frames = horizon_frames
        self.seed = seed
        self.verbose = verbose
        self.name = name or _HORIZON_NAMES.get(
            horizon_frames, f"VVD-{horizon_frames}frames Future"
        )
        #: Optional :class:`~repro.campaign.models.ModelCheckpointRegistry`
        #: resolving :meth:`prepare` through content-addressed
        #: checkpoints instead of always retraining.
        self.checkpoints = checkpoints
        #: Dataset engine the training sets were generated with; part of
        #: the checkpoint key (scalar- and batch-generated sets agree
        #: only to 1e-10, so their models must never be interchanged).
        #: Every orchestrated path (campaign CLI, bundle) trains from
        #: batch-generated sets; pass ``"scalar"`` when preparing on
        #: hand-built scalar-engine sets with a registry attached.
        self.engine = engine
        self.trained: TrainedVVD | None = None
        self._max_depth: float | None = None
        self._cache: dict[tuple[int, int], np.ndarray] = {}

    # -- training ---------------------------------------------------------
    def prepare(self, training_sets, validation_sets, config) -> None:
        if self.trained is not None:
            return  # shared instance already trained for this combination
        if self.checkpoints is not None:
            self.trained = self.checkpoints.load_or_train(
                training_sets,
                validation_sets,
                config,
                horizon_frames=self.horizon_frames,
                seed=self.seed,
                verbose=self.verbose,
                engine=self.engine,
            )
        else:
            self.trained = train_vvd(
                training_sets,
                validation_sets,
                config,
                horizon_frames=self.horizon_frames,
                seed=self.seed,
                verbose=self.verbose,
            )
        self._max_depth = config.camera.max_depth_m

    def reset(self, test_set) -> None:
        self._cache.clear()

    # -- inference ---------------------------------------------------------
    def _predict_frame(
        self, measurement_set, frame_index: int
    ) -> np.ndarray:
        key = (measurement_set.index, frame_index)
        if key not in self._cache:
            frame = measurement_set.frames[frame_index]
            image = normalize_depth(frame, self._max_depth)[None, ..., None]
            self._cache[key] = self.trained.predict_cir(image)[0]
        return self._cache[key]

    def estimate(self, ctx: PacketContext) -> Optional[ChannelEstimate]:
        if self.trained is None:
            raise NotFittedError(f"{self.name} used before prepare()")
        frame_index = max(ctx.record.frame_index - self.horizon_frames, 0)
        taps = self._predict_frame(ctx.measurement_set, frame_index)
        return ChannelEstimate(
            taps=taps, needs_phase_alignment=True, canonical_taps=taps
        )
