"""CIR target normalization (Sec. 4, last paragraph).

The CNN's targets are normalized "by dividing the CIR values by the
maximum absolute valued CIR in the training set for each set combination";
the stored scalar reverts the normalization when the comparison metrics
are evaluated on the test set.
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError, ShapeError


class CIRNormalizer:
    """Max-abs normalization of complex CIR matrices."""

    def __init__(self) -> None:
        self.scale: float | None = None

    def fit(self, cirs: np.ndarray) -> "CIRNormalizer":
        """Learn the max |tap| over the training set."""
        cirs = np.asarray(cirs)
        if cirs.size == 0:
            raise ShapeError("cannot fit a normalizer on an empty set")
        scale = float(np.max(np.abs(cirs)))
        if scale == 0:
            raise ShapeError("all-zero training CIRs")
        self.scale = scale
        return self

    def _require_fitted(self) -> None:
        if self.scale is None:
            raise NotFittedError("CIRNormalizer used before fit()")

    def transform(self, cirs: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return np.asarray(cirs) / self.scale

    def inverse(self, cirs: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return np.asarray(cirs) * self.scale
