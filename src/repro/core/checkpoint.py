"""On-disk serialization of trained VVD models.

A :class:`~repro.core.training.TrainedVVD` round-trips through one
directory holding two files:

``weights.npz``
    Every model parameter in ``Sequential.parameters()`` order, plus the
    optional per-pixel input standardization (``image_mean`` /
    ``image_std``).
``meta.json``
    Everything needed to rebuild the model around those arrays: the
    per-sample input shape, tap count, prediction horizon, the fitted
    :class:`~repro.core.normalization.CIRNormalizer` scale and the full
    :class:`~repro.nn.model.TrainingHistory`.

Writes are atomic (temp file + ``os.replace``) and ``meta.json`` lands
last, so a killed save never leaves a directory that
:func:`load_trained_vvd` would accept.  Loading rebuilds the CNN from the
caller's :class:`~repro.config.VVDConfig` and installs the stored
float32 weights verbatim, so predictions are bit-identical to the
instance that was saved.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from ..config import VVDConfig
from ..errors import ConfigurationError
from ..nn import BatchNorm2D, TrainingHistory
from .model import build_vvd_cnn
from .normalization import CIRNormalizer
from .training import TrainedVVD

#: Bumped whenever the on-disk layout changes incompatibly.
CHECKPOINT_FORMAT_VERSION = 1

_WEIGHTS_FILE = "weights.npz"
_META_FILE = "meta.json"


def _atomic_write_bytes(path: Path, write) -> None:
    """Write through a unique sibling temp file and rename into place.

    The temp name embeds the writer's pid so two processes saving the
    same checkpoint concurrently (parallel campaign workers resolving
    one key) never truncate each other's in-flight temp file.
    """
    tmp = path.with_name(f".tmp_{os.getpid()}_{path.name}")
    write(tmp)
    os.replace(tmp, path)


def checkpoint_complete(directory: str | Path) -> bool:
    """Whether ``directory`` holds a finished checkpoint.

    ``meta.json`` is written last, so its presence (together with the
    weights archive) marks a save that ran to completion.
    """
    directory = Path(directory)
    return (directory / _META_FILE).exists() and (
        directory / _WEIGHTS_FILE
    ).exists()


def save_trained_vvd(
    trained: TrainedVVD,
    directory: str | Path,
    num_taps: int,
    extra_meta: dict | None = None,
) -> None:
    """Persist ``trained`` under ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    arrays = {
        f"weight_{i}": p.value
        for i, p in enumerate(trained.model.parameters())
    }
    if trained.image_mean is not None:
        arrays["image_mean"] = trained.image_mean
        arrays["image_std"] = trained.image_std
    # Non-parameter layer state: batch-norm running statistics (the
    # Sec. 4 ablation path) are part of inference behavior but not of
    # ``parameters()``, so they are persisted per layer index.
    for index, layer in enumerate(trained.model.layers):
        if isinstance(layer, BatchNorm2D):
            arrays[f"bn_{index}_mean"] = layer.running_mean
            arrays[f"bn_{index}_var"] = layer.running_var

    def _write_npz(tmp: Path) -> None:
        with open(tmp, "wb") as handle:
            np.savez(handle, **arrays)

    _atomic_write_bytes(directory / _WEIGHTS_FILE, _write_npz)

    history = trained.history
    meta = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "num_weights": len(trained.model.parameters()),
        "input_shape": list(trained.input_shape),
        "num_taps": int(num_taps),
        "horizon_frames": int(trained.horizon_frames),
        "normalizer_scale": float(trained.normalizer.scale),
        "standardized_inputs": trained.image_mean is not None,
        "history": {
            "train_loss": [float(v) for v in history.train_loss],
            "val_loss": [float(v) for v in history.val_loss],
            "learning_rates": [
                float(v) for v in history.learning_rates
            ],
            "best_epoch": int(history.best_epoch),
        },
    }
    if extra_meta:
        meta.update(extra_meta)

    def _write_meta(tmp: Path) -> None:
        tmp.write_text(json.dumps(meta, indent=2, sort_keys=True))

    _atomic_write_bytes(directory / _META_FILE, _write_meta)


def load_trained_vvd(
    directory: str | Path, vvd_config: VVDConfig
) -> TrainedVVD:
    """Rebuild a :class:`TrainedVVD` saved by :func:`save_trained_vvd`.

    ``vvd_config`` must describe the architecture the checkpoint was
    trained with (conv filters, kernel size, dense units, pooling) — a
    mismatch surfaces as a :class:`~repro.errors.ConfigurationError`
    before any weights are touched.
    """
    directory = Path(directory)
    if not checkpoint_complete(directory):
        raise ConfigurationError(
            f"no complete model checkpoint under {directory}"
        )
    meta = json.loads((directory / _META_FILE).read_text())
    version = meta.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise ConfigurationError(
            f"checkpoint {directory} has format version {version!r}; "
            f"expected {CHECKPOINT_FORMAT_VERSION}"
        )

    input_shape = tuple(int(v) for v in meta["input_shape"])
    model = build_vvd_cnn(
        input_shape, int(meta["num_taps"]), vvd_config, seed=0
    )
    parameters = model.parameters()
    if len(parameters) != int(meta["num_weights"]):
        raise ConfigurationError(
            f"checkpoint {directory} holds {meta['num_weights']} weight "
            f"arrays but the configured architecture expects "
            f"{len(parameters)}; was the VVD config changed?"
        )
    with np.load(directory / _WEIGHTS_FILE) as data:
        try:
            model.set_weights(
                [data[f"weight_{i}"] for i in range(len(parameters))]
            )
        except Exception as exc:
            raise ConfigurationError(
                f"checkpoint {directory} does not fit the configured "
                f"architecture: {exc}"
            ) from exc
        image_mean = image_std = None
        if meta.get("standardized_inputs"):
            image_mean = data["image_mean"]
            image_std = data["image_std"]
        for index, layer in enumerate(model.layers):
            if isinstance(layer, BatchNorm2D):
                try:
                    layer.running_mean = data[f"bn_{index}_mean"]
                    layer.running_var = data[f"bn_{index}_var"]
                except KeyError as exc:
                    raise ConfigurationError(
                        f"checkpoint {directory} lacks batch-norm "
                        f"running statistics for layer {index}"
                    ) from exc

    normalizer = CIRNormalizer()
    normalizer.scale = float(meta["normalizer_scale"])
    history_meta = meta["history"]
    history = TrainingHistory(
        train_loss=list(history_meta["train_loss"]),
        val_loss=list(history_meta["val_loss"]),
        learning_rates=list(history_meta["learning_rates"]),
        best_epoch=int(history_meta["best_epoch"]),
    )
    return TrainedVVD(
        model=model,
        normalizer=normalizer,
        history=history,
        horizon_frames=int(meta["horizon_frames"]),
        input_shape=(input_shape[0], input_shape[1]),
        image_mean=image_mean,
        image_std=image_std,
    )
