"""Estimator interface shared by every compared technique.

The evaluation loop calls, per test packet::

    estimate = estimator.estimate(ctx)   # before decoding
    ...decode, record metrics...
    estimator.observe(ctx)               # after decoding (tracking updates)

``estimate`` returns:

- ``None`` — no estimate is available and the packet is lost (the
  preamble-based technique without preamble detection, Sec. 5.5);
- :class:`ChannelEstimate` with ``taps=None`` — decode without
  equalization (standard decoding);
- :class:`ChannelEstimate` with taps — ZF-equalize with those taps.
  ``needs_phase_alignment`` marks blind estimates whose mean phase must be
  rotated onto the received block (footnote 4) before equalization.

``capabilities`` encodes the Table 1 comparison axes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..dataset.trace import MeasurementSet, PacketRecord
    from ..phy.receiver import Receiver
    from ..config import SimulationConfig


@dataclass(frozen=True)
class Capabilities:
    """Table 1 axes: is the technique reliable / scalable / dynamic?"""

    reliable: bool
    scalable: bool
    dynamic: bool


@dataclass
class ChannelEstimate:
    """A channel estimate handed to the receiver for equalization.

    ``taps`` drive the equalizer.  ``canonical_taps`` (same estimate
    rotated onto the dataset's phase reference) feed the MSE metric of
    Eq. 9; blind estimates are already canonical, same-packet estimates
    carry their stored canonical twin.  ``None`` excludes the technique
    from MSE (standard decoding has no estimate at all).
    """

    taps: Optional[np.ndarray]
    needs_phase_alignment: bool = False
    canonical_taps: Optional[np.ndarray] = None


@dataclass
class PacketContext:
    """Everything an estimator may inspect for one test packet."""

    measurement_set: "MeasurementSet"
    index: int
    record: "PacketRecord"
    received: np.ndarray
    receiver: "Receiver"


class ChannelEstimator:
    """Base class of all techniques (Sec. 5)."""

    #: Display name used in tables and figures.
    name: str = "abstract"
    #: Table 1 capability flags.
    capabilities: Capabilities = Capabilities(False, False, False)

    def prepare(
        self,
        training_sets: Sequence["MeasurementSet"],
        validation_sets: Sequence["MeasurementSet"],
        config: "SimulationConfig",
    ) -> None:
        """Fit anything that depends on training data (VVD CNN, AR fit)."""

    def reset(self, test_set: "MeasurementSet") -> None:
        """Clear per-test-set state before an evaluation pass."""

    def estimate(self, ctx: PacketContext) -> Optional[ChannelEstimate]:
        """Produce the estimate used to decode packet ``ctx.index``."""
        raise NotImplementedError

    def observe(self, ctx: PacketContext) -> None:
        """Post-decoding hook (e.g. Kalman update with the GT estimate)."""


@dataclass
class EstimatorSuite:
    """A named, ordered collection of estimators for an evaluation run."""

    estimators: list[ChannelEstimator] = field(default_factory=list)

    def add(self, estimator: ChannelEstimator) -> "EstimatorSuite":
        self.estimators.append(estimator)
        return self

    def names(self) -> list[str]:
        return [e.name for e in self.estimators]

    def __iter__(self):
        return iter(self.estimators)

    def __len__(self) -> int:
        return len(self.estimators)
