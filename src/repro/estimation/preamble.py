"""Preamble-based channel estimation (Sec. 5.2, Fig. 9).

The practical variant of the perfect estimate: LS over the known
synchronization header only.  It yields an estimate *only if the preamble
is detected*; otherwise the packet is counted as erroneous.  The genie
variant assumes detection always succeeds, isolating the estimation
quality from the detection failures.
"""

from __future__ import annotations

from typing import Optional

from .base import Capabilities, ChannelEstimate, ChannelEstimator, PacketContext


class PreambleBased(ChannelEstimator):
    """LS estimate from the preamble; fails when detection fails."""

    name = "Preamble Based"
    # Table 1 "Pilot": reliable and dynamic but not scalable (per-link pilots).
    capabilities = Capabilities(reliable=True, scalable=False, dynamic=True)

    def estimate(self, ctx: PacketContext) -> Optional[ChannelEstimate]:
        if not ctx.record.preamble_detected:
            return None
        return ChannelEstimate(
            taps=ctx.record.h_preamble,
            needs_phase_alignment=False,
            canonical_taps=ctx.record.h_preamble_canonical,
        )


class PreambleGenie(ChannelEstimator):
    """Preamble-based with genie-aided detection (always succeeds)."""

    name = "Preamble Based-Genie"
    capabilities = Capabilities(reliable=True, scalable=False, dynamic=True)

    def estimate(self, ctx: PacketContext) -> Optional[ChannelEstimate]:
        return ChannelEstimate(
            taps=ctx.record.h_preamble, needs_phase_alignment=False
        )
