"""Auto-regressive model fitting via Yule-Walker equations (paper appendix).

The fading channel taps are modelled as independent AR(p) processes
(WSSUS assumption, appendix footnote 12).  AR coefficients are computed
per tap from the autocorrelation of the training-set perfect estimates —
Eqs. 12-14 of the paper.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as _linalg

from ..errors import ShapeError


def _autocorrelation_sequence(series: np.ndarray, max_lag: int) -> np.ndarray:
    """Biased autocorrelation ``R[k] = E[x[n] conj(x[n-k])]`` for k<=max_lag."""
    series = np.asarray(series, dtype=np.complex128)
    n = len(series)
    if n <= max_lag:
        raise ShapeError(
            f"series of length {n} too short for max_lag={max_lag}"
        )
    centred = series - series.mean()
    out = np.empty(max_lag + 1, dtype=np.complex128)
    for lag in range(max_lag + 1):
        out[lag] = np.sum(centred[lag:] * np.conj(centred[: n - lag])) / n
    return out


def yule_walker(series: np.ndarray, order: int) -> tuple[np.ndarray, float]:
    """Fit AR(p) coefficients for one tap's time series (Eqs. 12-14).

    Returns ``(phi, noise_variance)`` where ``phi`` has length ``order``
    and ``noise_variance`` is the driving-noise power of Eq. 10.
    """
    if order < 1:
        raise ShapeError(f"order must be >= 1, got {order}")
    r = _autocorrelation_sequence(series, order)
    r0 = r[0].real
    if r0 <= 0:
        # Degenerate (constant) series: predict persistence.
        phi = np.zeros(order, dtype=np.complex128)
        phi[0] = 1.0
        return phi, 0.0
    # Normalized correlation coefficients (Eq. 13).
    rho = r / r0
    first_column = rho[:order]
    rhs = rho[1 : order + 1]
    try:
        phi = _linalg.solve_toeplitz(
            (first_column, np.conj(first_column)), rhs
        )
    except np.linalg.LinAlgError:
        matrix = _linalg.toeplitz(first_column, np.conj(first_column))
        phi, *_ = np.linalg.lstsq(matrix, rhs, rcond=None)
    noise_variance = float(
        max(r0 * (1.0 - np.real(np.vdot(rhs, phi))), 0.0)
    )
    return phi, noise_variance


def fit_ar_coefficients(
    tap_series: np.ndarray, order: int
) -> tuple[np.ndarray, np.ndarray]:
    """Fit per-tap AR(p) models from a ``(num_packets, num_taps)`` matrix.

    Returns ``(phi, noise_variance)`` with shapes ``(num_taps, order)`` and
    ``(num_taps,)``.
    """
    tap_series = np.asarray(tap_series, dtype=np.complex128)
    if tap_series.ndim != 2:
        raise ShapeError(
            f"tap_series must be (packets, taps), got {tap_series.shape}"
        )
    num_taps = tap_series.shape[1]
    phi = np.zeros((num_taps, order), dtype=np.complex128)
    noise = np.zeros(num_taps, dtype=np.float64)
    for tap in range(num_taps):
        phi[tap], noise[tap] = yule_walker(tap_series[:, tap], order)
    return phi, noise
