"""Previous-estimation techniques (Sec. 5.2): decode with an aged perfect
estimate from 100 ms or 500 ms ago.

Blind for the packet of interest; assumes "there exists always a clean
packet reception within the defined interval".  The stored estimates are
phase-canonicalized (per-packet crystal rotations removed), so the
estimate must be re-aligned to the current block (footnote 4).
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from .base import Capabilities, ChannelEstimate, ChannelEstimator, PacketContext


class PreviousEstimation(ChannelEstimator):
    """Perfect estimate from ``lag_packets`` transmissions in the past."""

    capabilities = Capabilities(reliable=True, scalable=False, dynamic=False)

    def __init__(self, lag_packets: int, packet_interval_s: float = 0.1):
        if lag_packets < 1:
            raise ConfigurationError(
                f"lag_packets must be >= 1, got {lag_packets}"
            )
        self.lag_packets = lag_packets
        interval_ms = lag_packets * packet_interval_s * 1000.0
        self.name = f"{interval_ms:.0f}ms Previous"

    def estimate(self, ctx: PacketContext) -> Optional[ChannelEstimate]:
        source = max(ctx.index - self.lag_packets, 0)
        record = ctx.measurement_set.packets[source]
        return ChannelEstimate(
            taps=record.h_ls_canonical,
            needs_phase_alignment=True,
            canonical_taps=record.h_ls_canonical,
        )
