"""Previous-estimation techniques (Sec. 5.2): decode with an aged perfect
estimate from 100 ms or 500 ms ago.

Blind for the packet of interest; assumes "there exists always a clean
packet reception within the defined interval".  The stored estimates are
phase-canonicalized (per-packet crystal rotations removed), so the
estimate must be re-aligned to the current block (footnote 4).
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from .base import Capabilities, ChannelEstimate, ChannelEstimator, PacketContext


class PreviousEstimation(ChannelEstimator):
    """Perfect estimate from ``lag_packets`` transmissions in the past.

    During the first ``lag_packets`` packets of a set no estimate that
    old exists.  The legacy behaviour (``strict_lag=False``, the
    default, kept for figure parity) clamps the source index to 0 and
    silently serves a *younger* estimate — at index 0 the current
    packet's own genie estimate.  ``strict_lag=True`` reports the
    technique honestly: warm-up packets return ``None`` (no estimate
    available, packet lost), which is what a receiver that has not yet
    decoded anything would experience.  The streaming link-adaptation
    policies (:mod:`repro.stream.policy`) build on the strict mode.
    """

    capabilities = Capabilities(reliable=True, scalable=False, dynamic=False)

    def __init__(
        self,
        lag_packets: int,
        packet_interval_s: float = 0.1,
        strict_lag: bool = False,
    ):
        if lag_packets < 1:
            raise ConfigurationError(
                f"lag_packets must be >= 1, got {lag_packets}"
            )
        self.lag_packets = lag_packets
        self.strict_lag = strict_lag
        interval_ms = lag_packets * packet_interval_s * 1000.0
        self.name = f"{interval_ms:.0f}ms Previous"
        if strict_lag:
            self.name += " (strict)"

    def estimate(self, ctx: PacketContext) -> Optional[ChannelEstimate]:
        source = ctx.index - self.lag_packets
        if source < 0:
            if self.strict_lag:
                return None  # warm-up: no estimate that old exists yet
            source = 0  # legacy clamp (serves a younger estimate)
        record = ctx.measurement_set.packets[source]
        return ChannelEstimate(
            taps=record.h_ls_canonical,
            needs_phase_alignment=True,
            canonical_taps=record.h_ls_canonical,
        )
