"""Channel-estimation techniques compared in the paper (Sec. 5).

Every technique implements :class:`repro.estimation.base.ChannelEstimator`
and is evaluated by :mod:`repro.experiments.runner` under identical
receiver processing — the only difference between techniques is where the
estimate comes from, exactly as in the paper.

Data-based techniques (Sec. 5.2): :class:`GroundTruth`,
:class:`PreambleBased`, :class:`PreambleGenie`, :class:`PreviousEstimation`.
Time-series (Sec. 5.3): :class:`KalmanEstimator` (AR(p) via Yule-Walker).
Combined (Sec. 5.4): :class:`CombinedEstimator`.
No estimation (Sec. 5.1): :class:`StandardDecoding`.
The VVD estimator itself lives in :mod:`repro.core.vvd`.
"""

from .base import Capabilities, ChannelEstimate, ChannelEstimator
from .standard import StandardDecoding
from .ground_truth import GroundTruth
from .preamble import PreambleBased, PreambleGenie
from .previous import PreviousEstimation
from .ar import fit_ar_coefficients, yule_walker
from .kalman import KalmanEstimator
from .combined import CombinedEstimator

__all__ = [
    "Capabilities",
    "ChannelEstimate",
    "ChannelEstimator",
    "StandardDecoding",
    "GroundTruth",
    "PreambleBased",
    "PreambleGenie",
    "PreviousEstimation",
    "fit_ar_coefficients",
    "yule_walker",
    "KalmanEstimator",
    "CombinedEstimator",
]
