"""Ground truth — the paper's *perfect channel estimation* (Sec. 5.2).

The LS estimate computed over the entire received packet with the whole
transmitted signal known.  Impossible in practice ("the receiver already
knows the complete signal before decoding") but the baseline every other
technique is measured against.
"""

from __future__ import annotations

from typing import Optional

from .base import Capabilities, ChannelEstimate, ChannelEstimator, PacketContext


class GroundTruth(ChannelEstimator):
    """Whole-packet LS estimate of the current packet."""

    name = "Ground Truth"
    capabilities = Capabilities(reliable=True, scalable=False, dynamic=True)

    def estimate(self, ctx: PacketContext) -> Optional[ChannelEstimate]:
        # h_ls was estimated from this very packet, so its phase already
        # matches the received block: no alignment needed.
        return ChannelEstimate(
            taps=ctx.record.h_ls,
            needs_phase_alignment=False,
            canonical_taps=ctx.record.h_ls_canonical,
        )
