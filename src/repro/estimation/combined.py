"""Combined estimation (Sec. 5.4, Fig. 10).

Use the preamble-based estimate whenever the preamble is detected; fall
back to a blind estimate (VVD or Kalman) otherwise.  This rescues exactly
the packets the preamble-based technique loses, which is where the
"almost two orders of magnitude" PER gain of Fig. 12 comes from.
"""

from __future__ import annotations

from typing import Optional

from .base import Capabilities, ChannelEstimate, ChannelEstimator, PacketContext


class CombinedEstimator(ChannelEstimator):
    """Preamble-based with a blind fallback (Preamble-VVD / Preamble-Kalman)."""

    capabilities = Capabilities(reliable=True, scalable=True, dynamic=True)

    def __init__(self, fallback: ChannelEstimator, label: str | None = None):
        self.fallback = fallback
        short = (
            "VVD"
            if "VVD" in fallback.name
            else "Kalman"
            if "Kalman" in fallback.name
            else fallback.name
        )
        self.name = label or f"Preamble-{short} Combined"

    def prepare(self, training_sets, validation_sets, config) -> None:
        self.fallback.prepare(training_sets, validation_sets, config)

    def reset(self, test_set) -> None:
        self.fallback.reset(test_set)

    def estimate(self, ctx: PacketContext) -> Optional[ChannelEstimate]:
        if ctx.record.preamble_detected:
            return ChannelEstimate(
                taps=ctx.record.h_preamble,
                needs_phase_alignment=False,
                canonical_taps=ctx.record.h_preamble_canonical,
            )
        return self.fallback.estimate(ctx)

    def observe(self, ctx: PacketContext) -> None:
        self.fallback.observe(ctx)
