"""Standard decoding — the IEEE 802.15.4 baseline without equalization.

Only frequency-offset correction and frame synchronization are performed
(Sec. 5.1); no channel estimate is used, so multipath ISI goes
uncorrected.  Worst technique in Figs. 12-13.
"""

from __future__ import annotations

from typing import Optional

from .base import Capabilities, ChannelEstimate, ChannelEstimator, PacketContext


class StandardDecoding(ChannelEstimator):
    """No channel estimation; decode with sync + scalar gain only."""

    name = "Standard Decoding"
    # Table 1 "Blind": scalable and dynamic but not reliable.
    capabilities = Capabilities(reliable=False, scalable=True, dynamic=True)

    def estimate(self, ctx: PacketContext) -> Optional[ChannelEstimate]:
        return ChannelEstimate(taps=None)
