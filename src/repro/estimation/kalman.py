"""Kalman-filtering channel estimation with AR(p) state (paper appendix).

Per tap ``l`` the state is the lag vector
``[h_l^k, h_l^{k-1}, ..., h_l^{k-p+1}]`` evolving through the companion
matrix of the AR coefficients (Eq. 11).  The filter *predicts* the CIR
used to decode the next packet (Eq. 18) and is *updated* with the current
perfect estimate (footnote 13), making it a semi-blind tracker whose AR
coefficients come from the training sets via Yule-Walker.

Variants AR(1) / AR(5) / AR(20) differ only in ``p`` (Sec. 5.3).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import NotFittedError
from .ar import fit_ar_coefficients
from .base import Capabilities, ChannelEstimate, ChannelEstimator, PacketContext


def _companion(phi: np.ndarray) -> np.ndarray:
    """Companion matrix of AR coefficients (the appendix's big Phi)."""
    order = len(phi)
    matrix = np.zeros((order, order), dtype=np.complex128)
    matrix[0, :] = phi
    if order > 1:
        matrix[1:, :-1] = np.eye(order - 1)
    return matrix


class _TapFilter:
    """Kalman filter for one channel tap."""

    def __init__(
        self,
        phi: np.ndarray,
        process_noise: float,
        observation_noise: float,
    ) -> None:
        self.order = len(phi)
        self.transition = _companion(phi)
        self.q = np.zeros((self.order, self.order))
        self.q[0, 0] = process_noise
        self.u = observation_noise * np.eye(self.order)
        self.state = np.zeros(self.order, dtype=np.complex128)
        self.covariance = np.eye(self.order)
        self._predicted = False

    def predict(self) -> complex:
        """Eqs. 18-19: propagate and return the predicted current tap."""
        self.state = self.transition @ self.state
        self.covariance = (
            self.transition @ self.covariance @ self.transition.conj().T
            + self.q
        )
        self._predicted = True
        return complex(self.state[0])

    def update(self, observation: np.ndarray) -> None:
        """Eqs. 15-17: correct with the observed (perfect-estimate) lags."""
        gain = self.covariance @ np.linalg.inv(self.covariance + self.u)
        self.state = self.state + gain @ (observation - self.state)
        self.covariance = (np.eye(self.order) - gain) @ self.covariance
        self._predicted = False


class KalmanEstimator(ChannelEstimator):
    """Kalman AR(p) channel tracker (the paper's 'Kalman AR(p)')."""

    capabilities = Capabilities(reliable=True, scalable=False, dynamic=False)

    def __init__(
        self,
        order: int,
        observation_noise: float = 1e-8,
        process_noise_scale: float = 1.0,
    ) -> None:
        self.order = order
        self.name = f"Kalman AR({order})"
        self.observation_noise = observation_noise
        self.process_noise_scale = process_noise_scale
        self._phi: np.ndarray | None = None
        self._noise: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._filters: list[_TapFilter] | None = None
        self._history: list[np.ndarray] = []

    # -- preparation --------------------------------------------------------
    def prepare(self, training_sets, validation_sets, config) -> None:
        """Yule-Walker fit on the canonical GT estimates of training sets.

        The AR model describes the zero-mean fluctuation around each tap's
        long-term mean (the static MPCs); the mean is tracked separately
        and re-added to predictions.
        """
        series = np.concatenate(
            [
                np.stack([p.h_ls_canonical for p in s.packets])
                for s in training_sets
            ],
            axis=0,
        )
        self._mean = series.mean(axis=0)
        self._phi, self._noise = fit_ar_coefficients(series, self.order)

    def reset(self, test_set) -> None:
        if self._phi is None:
            raise NotFittedError(f"{self.name} used before prepare()")
        num_taps = self._phi.shape[0]
        self._filters = [
            _TapFilter(
                self._phi[tap],
                self.process_noise_scale * float(self._noise[tap]) + 1e-15,
                self.observation_noise,
            )
            for tap in range(num_taps)
        ]
        self._history = []

    # -- evaluation loop ------------------------------------------------
    def estimate(self, ctx: PacketContext) -> Optional[ChannelEstimate]:
        if self._filters is None:
            raise NotFittedError(f"{self.name} used before reset()")
        fluctuation = np.array(
            [f.predict() for f in self._filters], dtype=np.complex128
        )
        taps = fluctuation + self._mean
        return ChannelEstimate(
            taps=taps, needs_phase_alignment=True, canonical_taps=taps
        )

    def observe(self, ctx: PacketContext) -> None:
        """Update each tap filter with the stacked canonical GT lags."""
        current = (
            np.asarray(ctx.record.h_ls_canonical, dtype=np.complex128)
            - self._mean
        )
        self._history.append(current)
        lags = self._stacked_lags()
        for tap, tap_filter in enumerate(self._filters):
            tap_filter.update(lags[:, tap])

    def _stacked_lags(self) -> np.ndarray:
        """(order, num_taps) matrix of the newest ``order`` observations."""
        num_taps = self._history[-1].shape[0]
        lags = np.zeros((self.order, num_taps), dtype=np.complex128)
        for i in range(self.order):
            index = len(self._history) - 1 - i
            if index >= 0:
                lags[i] = self._history[index]
            else:
                lags[i] = self._history[0]
        return lags
