"""A tiny stdlib client for the ``repro serve`` REST surface.

Used by the smoke tests and the nightly ``serve-smoke`` CI job;
handy for notebooks too.  Methods never raise on HTTP error statuses —
they return a :class:`ServeResponse` carrying the status code, so a
caller can assert on 404/409 as easily as on 200.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import NamedTuple

from ..api.jobs import JobSpec


class ServeResponse(NamedTuple):
    """One HTTP exchange: status code, headers and raw body."""

    status: int
    headers: dict
    body: bytes

    def json(self) -> dict | list:
        """The body parsed as JSON."""
        return json.loads(self.body)

    def text(self) -> str:
        """The body decoded as UTF-8 text."""
        return self.body.decode()

    @property
    def ok(self) -> bool:
        """True for 2xx statuses."""
        return 200 <= self.status < 300


class ServeClient:
    """Thin convenience wrapper over ``urllib`` for the daemon API."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> ServeResponse:
        """Issue one request; HTTP error statuses return, not raise."""
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            headers=headers,
            method=method,
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return ServeResponse(
                    resp.status, dict(resp.headers), resp.read()
                )
        except urllib.error.HTTPError as exc:
            return ServeResponse(
                exc.code, dict(exc.headers or {}), exc.read()
            )

    # -- endpoints ------------------------------------------------------
    def submit(
        self,
        spec: JobSpec | dict,
        options: dict | None = None,
        priority: int = 0,
    ) -> ServeResponse:
        """POST /v1/jobs — submit a job spec (typed or plain dict)."""
        if isinstance(spec, JobSpec):
            data = spec.to_dict()
        else:
            data = dict(spec)
        kind = data.pop("kind", None)
        payload: dict = {"kind": kind, "spec": data}
        if options is not None:
            payload["options"] = options
        if priority:
            payload["priority"] = priority
        return self.request("POST", "/v1/jobs", payload)

    def jobs(self) -> ServeResponse:
        """GET /v1/jobs — every job record."""
        return self.request("GET", "/v1/jobs")

    def job(self, job_id: str) -> ServeResponse:
        """GET /v1/jobs/<id> — one record plus live progress."""
        return self.request("GET", f"/v1/jobs/{job_id}")

    def events(self, job_id: str) -> ServeResponse:
        """GET /v1/jobs/<id>/events — manifest step events."""
        return self.request("GET", f"/v1/jobs/{job_id}/events")

    def results(self, job_id: str) -> ServeResponse:
        """GET /v1/jobs/<id>/results — grid aggregate / report."""
        return self.request("GET", f"/v1/jobs/{job_id}/results")

    def figures(self, job_id: str) -> ServeResponse:
        """GET /v1/jobs/<id>/figures — available figure names."""
        return self.request("GET", f"/v1/jobs/{job_id}/figures")

    def figure(self, job_id: str, name: str) -> ServeResponse:
        """GET /v1/jobs/<id>/figures/<name> — one rendered figure."""
        return self.request("GET", f"/v1/jobs/{job_id}/figures/{name}")

    def delete(self, job_id: str) -> ServeResponse:
        """DELETE /v1/jobs/<id> — cancel queued or drop finished."""
        return self.request("DELETE", f"/v1/jobs/{job_id}")

    def healthz(self) -> ServeResponse:
        """GET /v1/healthz — liveness and queue histogram."""
        return self.request("GET", "/v1/healthz")

    def wait(
        self, job_id: str, timeout: float = 120.0, poll: float = 0.2
    ) -> dict:
        """Poll until the job leaves the active states; returns the record.

        Raises :class:`TimeoutError` if the job is still queued or
        running after ``timeout`` seconds.
        """
        import time

        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id).json()["job"]
            if record["state"] not in ("queued", "running"):
                return record
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after "
                    f"{timeout}s"
                )
            time.sleep(poll)
