"""``repro serve`` — campaigns as a service, stdlib only.

A :class:`ReproDaemon` is a :class:`~http.server.ThreadingHTTPServer`
plus a pool of worker threads draining the persistent
:class:`~repro.serve.queue.JobQueue`.  Every HTTP handler is a thin
shell over :mod:`repro.api` — the same facade the CLI subcommands
call — so a grid submitted over REST produces byte-identical
``results.json``/records/reports to ``repro grid`` run by hand, and
resubmitting a finished job is a pure replay over its manifest.

REST surface (all JSON unless noted)::

    POST   /v1/jobs                     submit {kind, spec, options, priority}
    GET    /v1/jobs                     list job records
    GET    /v1/jobs/<id>                one record + live progress
    GET    /v1/jobs/<id>/events         manifest step events
    GET    /v1/jobs/<id>/results        grid: raw results.json bytes
    GET    /v1/jobs/<id>/figures        figure names of the campaign
    GET    /v1/jobs/<id>/figures/<name> one rendered figure (text/plain)
    DELETE /v1/jobs/<id>                cancel queued / delete finished
    GET    /v1/healthz                  liveness + queue histogram

Error statuses come from the same outcome table that assigns the CLI
exit codes (:mod:`repro.api.errors`): 400 invalid, 404 not found,
409 conflict, 503 shutting down.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..api import errors as api_errors
from ..api.facade import RunOptions, prepare
from ..api.jobs import job_from_dict
from ..campaign.cache import DatasetCache
from ..campaign.options import validate_job_options
from ..errors import (
    ConfigurationError,
    NotFoundError,
    ReproError,
    UnavailableError,
)
from ..obs import log
from . import progress
from .queue import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUARANTINED,
    JOB_QUEUED,
    JobQueue,
)

#: How long an idle worker sleeps between queue polls, seconds.
_POLL_INTERVAL_S = 0.1


class ReproDaemon:
    """The campaign service: HTTP front, persistent queue, workers."""

    def __init__(
        self,
        cache_dir: str | None = None,
        model_dir: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        slots: int = 1,
        workers: int | None = None,
        verbose: bool = False,
    ) -> None:
        if slots < 1:
            raise ConfigurationError(
                f"--slots must be >= 1, got {slots}"
            )
        self.cache = DatasetCache(cache_dir)
        self.cache_dir = cache_dir
        self.model_dir = model_dir
        self.host = host
        self.port = port
        self.slots = slots
        self.default_workers = workers
        self.verbose = verbose
        self.queue = JobQueue(self.cache.root / "jobs")
        self._stop = threading.Event()
        self._server: ThreadingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None
        self._workers: list[threading.Thread] = []
        self.started_at: float | None = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Recover the queue, bind the socket, spawn the workers."""
        requeued = self.queue.recover()
        for job_id in requeued:
            log.info(f"requeued after daemon restart: {job_id}")
        self._server = ThreadingHTTPServer(
            (self.host, self.port), _make_handler(self)
        )
        self.port = self._server.server_address[1]
        self.started_at = time.time()
        self._http_thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._http_thread.start()
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            for index in range(self.slots)
        ]
        for worker in self._workers:
            worker.start()

    def request_stop(self) -> None:
        """Ask the daemon to stop (signal-handler safe, returns fast)."""
        self._stop.set()

    def stop(self) -> None:
        """Stop accepting work and wait for in-flight jobs to finish."""
        self._stop.set()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        for worker in self._workers:
            worker.join()
        if self._http_thread is not None:
            self._http_thread.join()

    def wait_until_stopped(self) -> None:
        """Block until :meth:`request_stop`, then drain and stop."""
        while not self._stop.wait(0.2):
            pass
        self.stop()

    @property
    def stopping(self) -> bool:
        """True once shutdown was requested; submissions get 503."""
        return self._stop.is_set()

    # -- submission -----------------------------------------------------
    def submit(self, payload: dict) -> tuple[dict, bool]:
        """Validate and enqueue one job submission.

        The spec is resolved through :func:`repro.api.prepare` before
        anything is persisted, so bad scenario/grid/figure names are
        rejected with 404 and malformed options with 400 — using
        exactly the validation the CLI parser applies.  The prepared
        handle's directory basename becomes the job id, which is what
        makes concurrent identical submissions collapse to one run.
        """
        if self.stopping:
            raise UnavailableError(
                "daemon is shutting down; not accepting jobs"
            )
        if not isinstance(payload, dict):
            raise ConfigurationError(
                "submission body must be a JSON object"
            )
        unknown = sorted(
            set(payload) - {"kind", "spec", "options", "priority"}
        )
        if unknown:
            raise ConfigurationError(
                f"unknown submission field(s) {', '.join(unknown)}; "
                "accepted: kind, spec, options, priority"
            )
        spec_data = payload.get("spec", {})
        if not isinstance(spec_data, dict):
            raise ConfigurationError(
                "submission 'spec' must be a JSON object"
            )
        spec = job_from_dict({**spec_data, "kind": payload.get("kind")})
        options = validate_job_options(payload.get("options"))
        priority = payload.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise ConfigurationError(
                f"submission 'priority' must be an integer, got "
                f"{priority!r}"
            )
        handle = prepare(
            spec,
            cache_dir=self.cache_dir,
            model_dir=self.model_dir,
            workers=self._job_workers(options),
            verbose=self._job_verbose(options),
        )
        record, created = self.queue.submit(
            job_id=handle.job_id,
            kind=spec.kind,
            spec=spec.to_dict(),
            options=options,
            priority=priority,
            campaign_dir=str(handle.directory),
        )
        if created:
            log.info(
                f"job {record.job_id} queued "
                f"(kind={record.kind}, priority={record.priority})"
            )
        else:
            log.info(
                f"job {record.job_id} deduplicated onto active run "
                f"(submissions={record.submissions})"
            )
        return record.to_dict(), created

    # -- worker side ----------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            record = self.queue.claim_next(os.getpid())
            if record is None:
                self._stop.wait(_POLL_INTERVAL_S)
                continue
            self._execute(record)

    def _execute(self, record) -> None:
        log.info(f"job {record.job_id} started (kind={record.kind})")
        try:
            spec = job_from_dict(record.spec)
            options = record.options
            handle = prepare(
                spec,
                cache_dir=self.cache_dir,
                model_dir=self.model_dir,
                workers=self._job_workers(options),
                verbose=self._job_verbose(options),
            )
            outcome = handle.run(RunOptions.from_mapping(options))
        except Exception as exc:
            code = api_errors.classify_exception(exc)
            self.queue.mark(
                record.job_id,
                JOB_FAILED,
                detail=str(exc),
                error_code=code,
                exit_code=api_errors.exit_code_for(code),
                finished_at=time.time(),
            )
            log.error(f"job {record.job_id} failed: {exc}")
            return
        state = (
            JOB_QUARANTINED
            if outcome.exit_code == api_errors.EXIT_QUARANTINED
            else JOB_DONE
        )
        self.queue.mark(
            record.job_id,
            state,
            detail=(
                f"{len(outcome.executed)} step(s) executed, "
                f"{len(outcome.skipped)} resumed from manifest"
            ),
            exit_code=outcome.exit_code,
            summary=outcome.text,
            finished_at=time.time(),
        )
        log.info(f"job {record.job_id} finished: {state}")
        log.info(outcome.text)

    def _job_workers(self, options: dict) -> int | None:
        """Per-job workers, falling back to the daemon's --workers."""
        value = options.get("workers")
        return self.default_workers if value is None else value

    def _job_verbose(self, options: dict) -> bool:
        """Per-job verbosity, OR-ed with the daemon's --verbose."""
        return bool(options.get("verbose")) or self.verbose

    # -- request-side helpers -------------------------------------------
    def job_view(self, job_id: str) -> dict:
        """One job record enriched with live manifest progress."""
        record = self.queue.get(job_id)
        events = progress.manifest_events(record.campaign_dir)
        view = record.to_dict()
        view["progress"] = progress.progress_counts(events)
        return view

    def handle_for(self, job_id: str):
        """Rebuild the campaign handle of a stored job record."""
        record = self.queue.get(job_id)
        spec = job_from_dict(record.spec)
        return record, prepare(
            spec,
            cache_dir=self.cache_dir,
            model_dir=self.model_dir,
            workers=self._job_workers(record.options),
            verbose=False,
        )

    def healthz(self) -> dict:
        """Liveness payload: version, slots, queue histogram."""
        from .. import __version__

        return {
            "status": "stopping" if self.stopping else "ok",
            "version": __version__,
            "slots": self.slots,
            "cache_root": str(self.cache.root),
            "jobs": self.queue.counts(),
        }

    def delete_job(self, job_id: str) -> dict:
        """DELETE semantics: cancel queued, refuse running, drop done."""
        record = self.queue.get(job_id)
        if record.state == JOB_QUEUED:
            cancelled = self.queue.cancel(job_id)
            return {"job": cancelled.to_dict(), "deleted": False}
        # Running jobs raise ConflictError (409); finished records are
        # removed while their campaign artifacts stay cached.
        self.queue.delete(job_id)
        return {"job": record.to_dict(), "deleted": True}


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes the REST surface onto a bound :class:`ReproDaemon`."""

    daemon: ReproDaemon
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args) -> None:
        """Route http.server access logs into the repro logger."""
        log.debug(f"serve: {self.address_string()} {format % args}")

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict | list) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self._send(status, body)

    def _send_error_for(self, exc: Exception) -> None:
        code = api_errors.classify_exception(exc)
        status = api_errors.http_status_for(code)
        if status == 500:
            log.error(f"serve: internal error: {exc!r}")
        self._send_json(
            status, {"error": str(exc), "code": code}
        )

    def _read_json_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ConfigurationError("request body must be JSON")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"request body is not valid JSON: {exc}"
            ) from None

    def _path_parts(self) -> list[str]:
        path = self.path.split("?", 1)[0]
        return [part for part in path.split("/") if part]

    # -- verbs ----------------------------------------------------------
    def do_GET(self) -> None:
        """Dispatch GET routes (healthz, job listing, job artifacts)."""
        try:
            self._get(self._path_parts())
        except Exception as exc:
            self._send_error_for(exc)

    def do_POST(self) -> None:
        """Dispatch POST routes (job submission)."""
        try:
            parts = self._path_parts()
            if parts == ["v1", "jobs"]:
                record, created = self.daemon.submit(
                    self._read_json_body()
                )
                self._send_json(
                    201 if created else 200,
                    {"job": record, "created": created},
                )
                return
            raise _not_found(self.path)
        except Exception as exc:
            self._send_error_for(exc)

    def do_DELETE(self) -> None:
        """Dispatch DELETE routes (cancel / remove a job)."""
        try:
            parts = self._path_parts()
            if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                self._send_json(200, self.daemon.delete_job(parts[2]))
                return
            raise _not_found(self.path)
        except Exception as exc:
            self._send_error_for(exc)

    # -- GET routing ----------------------------------------------------
    def _get(self, parts: list[str]) -> None:
        if parts == ["v1", "healthz"]:
            self._send_json(200, self.daemon.healthz())
            return
        if parts == ["v1", "jobs"]:
            self._send_json(
                200,
                {"jobs": [r.to_dict() for r in self.daemon.queue.list()]},
            )
            return
        if len(parts) >= 3 and parts[:2] == ["v1", "jobs"]:
            job_id = parts[2]
            rest = parts[3:]
            if not rest:
                self._send_json(200, {"job": self.daemon.job_view(job_id)})
                return
            if rest == ["events"]:
                record = self.daemon.queue.get(job_id)
                events = progress.manifest_events(record.campaign_dir)
                self._send_json(
                    200,
                    {
                        "job_id": job_id,
                        "state": record.state,
                        "events": events,
                        "counts": progress.progress_counts(events),
                    },
                )
                return
            if rest == ["results"]:
                self._get_results(job_id)
                return
            if rest == ["figures"]:
                _, handle = self.daemon.handle_for(job_id)
                self._send_json(
                    200,
                    {"job_id": job_id, "figures": handle.figure_names()},
                )
                return
            if len(rest) == 2 and rest[0] == "figures":
                _, handle = self.daemon.handle_for(job_id)
                body = handle.figure(rest[1]).encode()
                self._send(200, body, content_type="text/plain")
                return
        raise _not_found(self.path)

    def _get_results(self, job_id: str) -> None:
        record, handle = self.daemon.handle_for(job_id)
        path = handle.results_path()
        if path is not None:
            # Grid aggregates are served as the raw file bytes — the
            # determinism contract is byte-identity with the CLI run,
            # so no re-serialization is allowed here.
            if not path.exists():
                raise _not_found(
                    f"results for job {job_id} (not aggregated yet)"
                )
            self._send(200, path.read_bytes())
            return
        self._send_json(
            200, {"job_id": job_id, "results": handle.results()}
        )


def _not_found(what: str) -> ReproError:
    """Build the 404-mapped error for an unmatched route/resource."""
    return NotFoundError(f"no such resource: {what}")


def _make_handler(daemon: ReproDaemon) -> type:
    """Bind a request-handler class to one daemon instance."""
    return type(
        "BoundRequestHandler", (_RequestHandler,), {"daemon": daemon}
    )


def serve_forever(
    cache_dir: str | None = None,
    model_dir: str | None = None,
    host: str = "127.0.0.1",
    port: int = 8315,
    slots: int = 1,
    workers: int | None = None,
    verbose: bool = False,
) -> int:
    """Run the daemon until SIGTERM/SIGINT; the ``repro serve`` entry.

    Binds, installs signal handlers for a graceful drain (in-flight
    jobs finish; queued jobs persist for the next launch) and blocks.
    Returns the process exit code (0 on clean shutdown).
    """
    daemon = ReproDaemon(
        cache_dir=cache_dir,
        model_dir=model_dir,
        host=host,
        port=port,
        slots=slots,
        workers=workers,
        verbose=verbose,
    )
    daemon.start()
    log.info(
        f"repro serve: listening on http://{daemon.host}:{daemon.port} "
        f"(slots={daemon.slots}, queue={daemon.queue.root})"
    )

    def _on_signal(signum, frame):
        log.info(
            f"repro serve: received signal {signum}; draining"
        )
        daemon.request_stop()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _on_signal)
    try:
        daemon.wait_until_stopped()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    log.info("repro serve: shutdown complete")
    return 0
