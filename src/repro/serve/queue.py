"""The crash-persistent on-disk job queue of ``repro serve``.

One JSON file per job under ``<cache root>/jobs/``, guarded by the
same :class:`~repro.campaign.locking.FileLock` + atomic-rename
machinery the campaign manifests use, so the queue survives daemon
kills exactly like campaigns survive step kills.

The job id IS the campaign directory basename
(:func:`repro.api.campaign_dir` — a stable hash of the spec), which
makes deduplication structural: two clients submitting the same work
compute the same id, the second submission lands on the first job
record (its ``submissions`` counter bumps) and both observe one run.
Differently-optioned submissions of the same campaign (other ``jobs``,
``retries`` …) also dedup — those options are execution detail and are
deliberately excluded from the hash.

Queue states: ``queued`` → ``running`` → ``done``/``failed``/
``quarantined``; ``queued`` jobs can be ``cancelled``.  A ``running``
job found at daemon startup was orphaned by a crash — it is requeued,
and the campaign manifest guarantees the relaunch resumes instead of
re-executing completed steps.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..campaign.locking import FileLock, atomic_write_text
from ..errors import ConflictError, NotFoundError

#: Waiting for a worker slot.
JOB_QUEUED = "queued"
#: Claimed by a worker and executing.
JOB_RUNNING = "running"
#: Completed with exit code 0.
JOB_DONE = "done"
#: Raised an error before completing.
JOB_FAILED = "failed"
#: Completed, but the campaign quarantined steps (exit code 3).
JOB_QUARANTINED = "quarantined"
#: Cancelled while still queued.
JOB_CANCELLED = "cancelled"

#: States in which a new submission dedups onto the existing record.
ACTIVE_STATES = (JOB_QUEUED, JOB_RUNNING)
#: Terminal states; a resubmission requeues the job (a pure replay —
#: the campaign manifest resumes every completed step).
FINISHED_STATES = (JOB_DONE, JOB_FAILED, JOB_QUARANTINED, JOB_CANCELLED)

_QUEUE_VERSION = 1


@dataclass
class JobRecord:
    """One persisted job: the spec, its options and its lifecycle."""

    #: Stable id — the campaign directory basename (the dedup key).
    job_id: str
    #: Campaign kind (``sweep``/``train``/.../``grid``).
    kind: str
    #: The typed job spec as plain data (``JobSpec.to_dict()``).
    spec: dict = field(default_factory=dict)
    #: Validated run options (``validate_job_options`` output).
    options: dict = field(default_factory=dict)
    #: Higher runs first among queued jobs.
    priority: int = 0
    #: Current queue state (see module docstring).
    state: str = JOB_QUEUED
    #: Human-readable note of the last transition.
    detail: str = ""
    #: How many times this job was submitted (dedup bumps it).
    submissions: int = 1
    #: Submission wall-clock time (first submission).
    submitted_at: float = 0.0
    #: When a worker claimed the job (``None`` while queued).
    started_at: float | None = None
    #: When the job reached a terminal state.
    finished_at: float | None = None
    #: The campaign's process exit code (outcome table).
    exit_code: int | None = None
    #: Outcome code of a failure (``invalid``/``not_found``/...).
    error_code: str | None = None
    #: Absolute campaign directory of the job's run.
    campaign_dir: str = ""
    #: The run summary text (the CLI-identical sentinel lines).
    summary: str = ""
    #: PID of the daemon process that claimed the job.
    pid: int | None = None

    def to_dict(self) -> dict:
        """Plain-data form (what is persisted and served)."""
        return asdict(self)

    def to_json(self) -> str:
        """Canonical JSON form of the record."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        """Rebuild a record from persisted plain data."""
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


class JobQueue:
    """Persistent, lock-guarded queue of :class:`JobRecord` files."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    @property
    def lock_path(self) -> Path:
        """The sidecar lock serializing queue transitions."""
        return self.root / "queue.lock"

    def _job_path(self, job_id: str) -> Path:
        if "/" in job_id or ".." in job_id or not job_id:
            raise NotFoundError(f"invalid job id {job_id!r}")
        return self.root / f"{job_id}.json"

    def _save(self, record: JobRecord) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self._job_path(record.job_id),
            json.dumps(
                {"version": _QUEUE_VERSION, "job": record.to_dict()},
                indent=2,
                sort_keys=True,
            ),
        )

    def _load(self, path: Path) -> JobRecord | None:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if data.get("version") != _QUEUE_VERSION:
            return None
        return JobRecord.from_dict(data.get("job", {}))

    def _lock(self) -> FileLock:
        self.root.mkdir(parents=True, exist_ok=True)
        return FileLock(self.lock_path)

    # -- submission -----------------------------------------------------
    def submit(
        self,
        job_id: str,
        kind: str,
        spec: dict,
        options: dict,
        priority: int = 0,
        campaign_dir: str = "",
    ) -> tuple[JobRecord, bool]:
        """Enqueue a job (or dedup onto the existing one).

        Returns ``(record, created)``: ``created`` is ``True`` when the
        submission (re)queued work and ``False`` when it deduped onto
        an already active job.  A resubmission of a finished job
        requeues it under the same id — the campaign manifest makes
        that a pure replay.
        """
        with self._lock():
            existing = self._load(self._job_path(job_id))
            now = time.time()
            if existing is not None and existing.state in ACTIVE_STATES:
                existing.submissions += 1
                existing.priority = max(existing.priority, priority)
                self._save(existing)
                return existing, False
            if existing is not None:
                previous = existing.state
                existing.submissions += 1
                existing.priority = priority
                existing.state = JOB_QUEUED
                existing.detail = (
                    f"resubmitted after {previous}; replaying "
                    "over the existing manifest"
                )
                existing.started_at = None
                existing.finished_at = None
                existing.exit_code = None
                existing.error_code = None
                existing.pid = None
                existing.submitted_at = now
                self._save(existing)
                return existing, True
            record = JobRecord(
                job_id=job_id,
                kind=kind,
                spec=dict(spec),
                options=dict(options),
                priority=priority,
                state=JOB_QUEUED,
                detail="queued",
                submitted_at=now,
                campaign_dir=campaign_dir,
            )
            self._save(record)
            return record, True

    # -- worker side ----------------------------------------------------
    def claim_next(self, pid: int) -> JobRecord | None:
        """Atomically claim the best queued job (``None`` when idle).

        Ordering: highest priority first, then oldest submission, then
        job id — deterministic, so two daemons sharing one queue
        directory drain it in one agreed order.
        """
        with self._lock():
            queued = [
                record
                for record in self._iter_records()
                if record.state == JOB_QUEUED
            ]
            if not queued:
                return None
            queued.sort(
                key=lambda r: (-r.priority, r.submitted_at, r.job_id)
            )
            record = queued[0]
            record.state = JOB_RUNNING
            record.detail = "claimed by worker"
            record.started_at = time.time()
            record.pid = pid
            self._save(record)
            return record

    def mark(self, job_id: str, state: str, **updates) -> JobRecord:
        """Record a state transition (plus any field updates)."""
        with self._lock():
            record = self._load(self._job_path(job_id))
            if record is None:
                raise NotFoundError(f"unknown job {job_id!r}")
            record.state = state
            for name, value in updates.items():
                setattr(record, name, value)
            self._save(record)
            return record

    def recover(self) -> list[str]:
        """Requeue jobs orphaned ``running`` by a dead daemon.

        Called once at daemon startup, before workers spawn.  The
        relaunched job resumes from the campaign manifest: completed
        steps replay from the journal, only unfinished work executes.
        """
        requeued = []
        with self._lock():
            for record in self._iter_records():
                if record.state != JOB_RUNNING:
                    continue
                record.state = JOB_QUEUED
                record.detail = "requeued after daemon restart"
                record.started_at = None
                record.pid = None
                self._save(record)
                requeued.append(record.job_id)
        return sorted(requeued)

    # -- client side ----------------------------------------------------
    def get(self, job_id: str) -> JobRecord:
        """Load one job record; raises :class:`NotFoundError`."""
        record = self._load(self._job_path(job_id))
        if record is None:
            raise NotFoundError(f"unknown job {job_id!r}")
        return record

    def list(self) -> list[JobRecord]:
        """Every job record, newest submission first."""
        records = list(self._iter_records())
        records.sort(key=lambda r: (-r.submitted_at, r.job_id))
        return records

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job; running/finished jobs refuse."""
        with self._lock():
            record = self._load(self._job_path(job_id))
            if record is None:
                raise NotFoundError(f"unknown job {job_id!r}")
            if record.state == JOB_RUNNING:
                raise ConflictError(
                    f"job {job_id} is running; it cannot be cancelled"
                )
            if record.state != JOB_QUEUED:
                raise ConflictError(
                    f"job {job_id} already finished ({record.state})"
                )
            record.state = JOB_CANCELLED
            record.detail = "cancelled before execution"
            record.finished_at = time.time()
            self._save(record)
            return record

    def delete(self, job_id: str) -> None:
        """Remove a finished job's record (campaign artifacts stay)."""
        with self._lock():
            record = self._load(self._job_path(job_id))
            if record is None:
                raise NotFoundError(f"unknown job {job_id!r}")
            if record.state in ACTIVE_STATES:
                raise ConflictError(
                    f"job {job_id} is {record.state}; cancel or wait "
                    "before deleting"
                )
            self._job_path(job_id).unlink()

    def counts(self) -> dict[str, int]:
        """state -> count histogram over every job record."""
        out: dict[str, int] = {}
        for record in self._iter_records():
            out[record.state] = out.get(record.state, 0) + 1
        return out

    def _iter_records(self):
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*.json")):
            record = self._load(path)
            if record is not None:
                yield record
