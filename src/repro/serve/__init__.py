"""``repro.serve`` — the campaign-as-a-service layer.

Start it with ``repro serve --port 8315 --cache-dir .cache`` (or
programmatically via :class:`~repro.serve.daemon.ReproDaemon`), then
submit campaign jobs over REST::

    curl -s -X POST http://127.0.0.1:8315/v1/jobs \
      -d '{"kind": "grid", "spec": {"grid": "smoke-grid"}}'

Components: a crash-persistent on-disk :class:`~repro.serve.queue.JobQueue`
(one JSON record per job, dedup by campaign-directory key), the
:class:`~repro.serve.daemon.ReproDaemon` HTTP front + worker pool, a
manifest-tailing progress reader and a stdlib
:class:`~repro.serve.client.ServeClient`.  Every handler delegates to
:mod:`repro.api`, so service runs are byte-identical to CLI runs.
"""

from .client import ServeClient, ServeResponse
from .daemon import ReproDaemon, serve_forever
from .progress import manifest_events, progress_counts
from .queue import (
    ACTIVE_STATES,
    FINISHED_STATES,
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUARANTINED,
    JOB_QUEUED,
    JOB_RUNNING,
    JobQueue,
    JobRecord,
)

__all__ = [
    "ReproDaemon",
    "serve_forever",
    "JobQueue",
    "JobRecord",
    "ServeClient",
    "ServeResponse",
    "manifest_events",
    "progress_counts",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUARANTINED",
    "JOB_CANCELLED",
    "ACTIVE_STATES",
    "FINISHED_STATES",
]
