"""Manifest tailing: live per-step progress without touching the run.

``GET /v1/jobs/<id>/events`` streams campaign progress by reading the
campaign's ``manifest.json`` journal — the same file the executor
appends step transitions to and resumes from.  Reading it is safe at
any moment (writes are atomic renames) and requires no cooperation
from the worker thread, so progress keeps flowing even while a grid
point is deep inside a training step.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Manifest schema version this reader understands.
_MANIFEST_VERSION = 1


def manifest_events(directory: str | Path) -> list[dict]:
    """Step events from a campaign's manifest, oldest first.

    Each event is ``{"step", "status", "detail", "updated",
    "attempts"}``.  A campaign that has not started yet (no manifest
    file) yields an empty list rather than an error — a queued job
    simply has no events.
    """
    path = Path(directory) / "manifest.json"
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    if data.get("version") != _MANIFEST_VERSION:
        return []
    events = [
        {
            "step": step_id,
            "status": record.get("status", "pending"),
            "detail": record.get("detail", ""),
            "updated": record.get("updated", 0.0),
            "attempts": len(record.get("attempts", [])),
        }
        for step_id, record in data.get("steps", {}).items()
    ]
    events.sort(key=lambda e: (e["updated"], e["step"]))
    return events


def progress_counts(events: list[dict]) -> dict[str, int]:
    """status -> count histogram over manifest events."""
    counts: dict[str, int] = {}
    for event in events:
        status = event.get("status", "pending")
        counts[status] = counts.get(status, 0) + 1
    return counts
