"""Complex AWGN with explicit, replayable generators.

The dataset stores per-packet noise seeds instead of raw waveforms; the
evaluation re-synthesizes identical noise realizations on demand, keeping
memory bounded (DESIGN.md, dataset substitution).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def noise_power_for_snr(signal_power: float, snr_db: float) -> float:
    """Noise variance that yields ``snr_db`` for the given signal power."""
    if signal_power < 0:
        raise ShapeError(f"signal_power must be >= 0, got {signal_power}")
    return signal_power / (10.0 ** (snr_db / 10.0))


def awgn(
    rng: np.random.Generator, num_samples: int, power: float
) -> np.ndarray:
    """Circularly-symmetric complex Gaussian noise of total power ``power``."""
    if num_samples < 0:
        raise ShapeError(f"num_samples must be >= 0, got {num_samples}")
    if power < 0:
        raise ShapeError(f"power must be >= 0, got {power}")
    scale = np.sqrt(power / 2.0)
    real = rng.normal(0.0, 1.0, num_samples)
    imag = rng.normal(0.0, 1.0, num_samples)
    return scale * (real + 1j * imag)
