"""Geometric helpers for the image-method multipath model.

Positions are 3-vectors in metres inside the room box
``[0, width] x [0, depth] x [0, height]``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

Vec3 = np.ndarray


def as_point(p) -> Vec3:
    """Coerce a 3-sequence into a float64 vector."""
    arr = np.asarray(p, dtype=np.float64)
    if arr.shape != (3,):
        raise ShapeError(f"expected a 3-vector, got shape {arr.shape}")
    return arr


def mirror_point(point, axis: int, plane_value: float) -> Vec3:
    """Mirror ``point`` across the axis-aligned plane ``x[axis] = value``.

    The image method replaces a wall reflection by the straight path to the
    mirrored endpoint.
    """
    p = as_point(point).copy()
    if not 0 <= axis <= 2:
        raise ShapeError(f"axis must be 0, 1 or 2, got {axis}")
    p[axis] = 2.0 * plane_value - p[axis]
    return p


def path_length(points) -> float:
    """Total polyline length of a propagation path."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3 or len(pts) < 2:
        raise ShapeError(
            f"path must be an (n>=2, 3) array of points, got {pts.shape}"
        )
    return float(np.sum(np.linalg.norm(np.diff(pts, axis=0), axis=1)))


def plane_intersection(
    a, b, axis: int, plane_value: float
) -> Vec3 | None:
    """Intersection of segment ``a -> b`` with plane ``x[axis] = value``.

    Returns the intersection point or ``None`` if the segment does not
    cross the plane.
    """
    a = as_point(a)
    b = as_point(b)
    da = a[axis] - plane_value
    db = b[axis] - plane_value
    denom = a[axis] - b[axis]
    if denom == 0 or da * db > 0:
        return None
    t = da / denom
    if not 0.0 <= t <= 1.0:
        return None
    return a + t * (b - a)


def segment_clearance(
    a, b, centre_xy, max_height: float
) -> float:
    """Horizontal clearance between segment ``a -> b`` and a vertical axis.

    Returns the minimum horizontal (xy) distance between the segment and
    the vertical line through ``centre_xy``, considering only points of the
    segment at height ``z <= max_height`` (a path passing above a person's
    head is not blocked).  Returns ``inf`` when the whole segment is above
    ``max_height``.
    """
    a = as_point(a)
    b = as_point(b)
    centre = np.asarray(centre_xy, dtype=np.float64)
    if centre.shape != (2,):
        raise ShapeError(f"centre_xy must be a 2-vector, got {centre.shape}")

    d_xy = b[:2] - a[:2]
    denom = float(d_xy @ d_xy)
    if denom == 0.0:
        t_star = 0.0
    else:
        t_star = float((centre - a[:2]) @ d_xy / denom)

    # Clamp the closest approach into the sub-segment below max_height.
    t_lo, t_hi = 0.0, 1.0
    za, zb = a[2], b[2]
    if za > max_height and zb > max_height:
        return float("inf")
    if za != zb:
        t_cross = (max_height - za) / (zb - za)
        if za > max_height:
            t_lo = max(t_lo, t_cross)
        elif zb > max_height:
            t_hi = min(t_hi, t_cross)
    if t_lo > t_hi:
        return float("inf")
    t_star = min(max(t_star, t_lo), t_hi)
    closest = a[:2] + t_star * d_xy
    return float(np.linalg.norm(closest - centre))


def segment_clearance_batch(
    a, b, centres_xy: np.ndarray, max_height: float
) -> np.ndarray:
    """Vectorized :func:`segment_clearance` over a batch of centres.

    ``centres_xy`` has shape ``(P, 2)``; returns ``(P,)`` clearances
    matching the scalar function per row.
    """
    a = as_point(a)
    b = as_point(b)
    centres = np.asarray(centres_xy, dtype=np.float64)
    if centres.ndim != 2 or centres.shape[1] != 2:
        raise ShapeError(
            f"centres_xy must be (P, 2), got {centres.shape}"
        )

    d_xy = b[:2] - a[:2]
    denom = float(d_xy @ d_xy)
    if denom == 0.0:
        t_star = np.zeros(len(centres))
    else:
        t_star = (centres - a[:2]) @ d_xy / denom

    # The admissible sub-segment below max_height is centre-independent.
    t_lo, t_hi = 0.0, 1.0
    za, zb = a[2], b[2]
    if za > max_height and zb > max_height:
        return np.full(len(centres), np.inf)
    if za != zb:
        t_cross = (max_height - za) / (zb - za)
        if za > max_height:
            t_lo = max(t_lo, t_cross)
        elif zb > max_height:
            t_hi = min(t_hi, t_cross)
    if t_lo > t_hi:
        return np.full(len(centres), np.inf)
    t_star = np.minimum(np.maximum(t_star, t_lo), t_hi)
    closest = a[:2][None, :] + t_star[:, None] * d_xy[None, :]
    return np.linalg.norm(closest - centres, axis=1)


def path_clearance_batch(
    points, centres_xy: np.ndarray, max_height: float
) -> np.ndarray:
    """Vectorized :func:`path_clearance` over a batch of centres."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3 or len(pts) < 2:
        raise ShapeError(
            f"path must be an (n>=2, 3) array of points, got {pts.shape}"
        )
    clearances = np.stack(
        [
            segment_clearance_batch(
                pts[i], pts[i + 1], centres_xy, max_height
            )
            for i in range(len(pts) - 1)
        ]
    )
    return np.min(clearances, axis=0)


def path_clearance(points, centre_xy, max_height: float) -> float:
    """Minimum horizontal clearance of a polyline path to a vertical axis."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3 or len(pts) < 2:
        raise ShapeError(
            f"path must be an (n>=2, 3) array of points, got {pts.shape}"
        )
    clearances = [
        segment_clearance(pts[i], pts[i + 1], centre_xy, max_height)
        for i in range(len(pts) - 1)
    ]
    return min(clearances)
