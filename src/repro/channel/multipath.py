"""Multipath component construction (Fig. 1's MPC picture).

Static paths are built once per room: the LoS, one first-order reflection
per wall and ceiling (image method), and one bistatic scatter path per
static metal object.  The mobile human contributes a time-varying scatter
path built per position.  Every path carries a complex ``base_gain``
(geometric spreading x reflectivity x carrier phase) and the polyline
needed for blockage tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import RoomConfig
from ..errors import ConfigurationError
from .geometry import as_point, mirror_point, path_length, plane_intersection


@dataclass(frozen=True)
class PropagationPath:
    """One multipath component between transmitter and receiver."""

    kind: str
    points: tuple[tuple[float, float, float], ...]
    gain: complex
    length_m: float

    @property
    def excess_length_m(self) -> float:
        """Filled in relative to the LoS by the environment; 0 for LoS."""
        return self.length_m


def _carrier_phase(length_m: float, wavelength_m: float) -> complex:
    return np.exp(-2j * np.pi * length_m / wavelength_m)


def _spreading(length_m: float) -> float:
    # Free-space amplitude spreading, guarded against degenerate geometry.
    return 1.0 / max(length_m, 0.1)


def line_of_sight_path(room: RoomConfig, wavelength_m: float) -> PropagationPath:
    tx = as_point(room.tx_position)
    rx = as_point(room.rx_position)
    length = float(np.linalg.norm(rx - tx))
    gain = _spreading(length) * _carrier_phase(length, wavelength_m)
    return PropagationPath(
        kind="los",
        points=(tuple(tx), tuple(rx)),
        gain=complex(gain),
        length_m=length,
    )


def _reflection_path(
    room: RoomConfig,
    wavelength_m: float,
    axis: int,
    plane_value: float,
    reflectivity: float,
    kind: str,
) -> PropagationPath | None:
    tx = as_point(room.tx_position)
    rx = as_point(room.rx_position)
    image = mirror_point(rx, axis, plane_value)
    bounce = plane_intersection(tx, image, axis, plane_value)
    if bounce is None:
        return None
    length = path_length([tx, bounce, rx])
    gain = reflectivity * _spreading(length) * _carrier_phase(length, wavelength_m)
    return PropagationPath(
        kind=kind,
        points=(tuple(tx), tuple(bounce), tuple(rx)),
        gain=complex(gain),
        length_m=length,
    )


def _scatter_gain(
    d1: float, d2: float, reflectivity: float, wavelength_m: float
) -> complex:
    # Simplified bistatic scattering: amplitude ~ reflectivity / (d1 + d2).
    total = d1 + d2
    return complex(
        reflectivity * _spreading(total) * _carrier_phase(total, wavelength_m)
    )


def scatter_path(
    room: RoomConfig,
    wavelength_m: float,
    scatter_position,
    reflectivity: float,
    kind: str = "scatter",
) -> PropagationPath:
    tx = as_point(room.tx_position)
    rx = as_point(room.rx_position)
    s = as_point(scatter_position)
    d1 = float(np.linalg.norm(s - tx))
    d2 = float(np.linalg.norm(rx - s))
    gain = _scatter_gain(d1, d2, reflectivity, wavelength_m)
    return PropagationPath(
        kind=kind,
        points=(tuple(tx), tuple(s), tuple(rx)),
        gain=gain,
        length_m=d1 + d2,
    )


def human_scatter_path(
    room: RoomConfig,
    wavelength_m: float,
    human_xy,
    torso_height_m: float,
    reflectivity: float,
) -> PropagationPath:
    """Time-varying scatter path off the mobile human's torso."""
    x, y = float(human_xy[0]), float(human_xy[1])
    return scatter_path(
        room,
        wavelength_m,
        (x, y, torso_height_m),
        reflectivity,
        kind="human",
    )


def build_static_paths(
    room: RoomConfig, wavelength_m: float
) -> list[PropagationPath]:
    """All static MPCs: LoS + wall/ceiling reflections + object scatter."""
    if wavelength_m <= 0:
        raise ConfigurationError(
            f"wavelength must be positive, got {wavelength_m}"
        )
    paths = [line_of_sight_path(room, wavelength_m)]
    wall_specs = [
        (0, 0.0, "wall_x0"),
        (0, room.width_m, "wall_x1"),
        (1, 0.0, "wall_y0"),
        (1, room.depth_m, "wall_y1"),
    ]
    for axis, value, kind in wall_specs:
        path = _reflection_path(
            room, wavelength_m, axis, value, room.wall_reflectivity, kind
        )
        if path is not None:
            paths.append(path)
    ceiling = _reflection_path(
        room,
        wavelength_m,
        2,
        room.height_m,
        room.ceiling_reflectivity,
        "ceiling",
    )
    if ceiling is not None:
        paths.append(ceiling)
    for sx, sy, sz, reflectivity in room.scatterers:
        paths.append(
            scatter_path(room, wavelength_m, (sx, sy, sz), reflectivity)
        )
    return paths
