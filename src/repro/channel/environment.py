"""The indoor environment: human position -> complex channel impulse
response.

This is the physical core of the dataset substitution (DESIGN.md): the
CIR is a deterministic function of the room geometry and the human's
position, exactly the property the paper's hypotheses (Sec. 2.2) assert —
mobility changes MPC amplitude/phase; identical displacement yields
near-identical MPCs.

The geometric path delays are stretched (``ChannelConfig.delay_stretch``)
and a static device-response FIR is appended so that the resulting 11-tap
LS footprint matches the paper's measurements (dominant taps 6-8 with
pre-cursor energy, Fig. 5a).
"""

from __future__ import annotations

import numpy as np

from ..config import ChannelConfig, PhyConfig, RoomConfig
from ..dsp.taps import fractional_delay_taps, synthesize_taps
from ..errors import ShapeError
from .blockage import path_blockage_factor, path_blockage_factor_batch
from .geometry import path_clearance, path_clearance_batch
from .multipath import (
    PropagationPath,
    build_static_paths,
    human_scatter_path,
)

_TORSO_HEIGHT_M = 1.1
_REFERENCE_HUMAN_XY = (0.45, 0.45)


class IndoorEnvironment:
    """Room + static objects + mobile human -> tapped-delay-line CIR."""

    def __init__(
        self,
        room: RoomConfig,
        channel: ChannelConfig,
        phy: PhyConfig,
    ) -> None:
        self.room = room
        self.channel = channel
        self.phy = phy
        self.wavelength_m = 299_792_458.0 / phy.carrier_frequency_hz
        self.static_paths: list[PropagationPath] = build_static_paths(
            room, self.wavelength_m
        )
        self._los_length = self.static_paths[0].length_m
        self._device_response = np.asarray(
            channel.device_response, dtype=np.complex128
        )
        self._scale = 1.0
        reference = self._raw_cir(np.asarray(_REFERENCE_HUMAN_XY))
        power = float(np.sum(np.abs(reference) ** 2))
        if power <= 0:
            raise ValueError("degenerate environment: zero reference power")
        self._scale = 1.0 / np.sqrt(power)

    # -- helpers -----------------------------------------------------------
    def _delay_samples(self, length_m: float) -> float:
        excess = max(length_m - self._los_length, 0.0)
        excess_s = excess / 299_792_458.0 * self.channel.delay_stretch
        return self.channel.pre_cursor + excess_s * self.phy.sample_rate_hz

    def _active_paths(
        self, human_xy: np.ndarray
    ) -> tuple[list[complex], list[float]]:
        gains: list[complex] = []
        delays: list[float] = []
        for path in self.static_paths:
            factor = path_blockage_factor(path, human_xy, self.channel)
            gains.append(path.gain * factor)
            delays.append(self._delay_samples(path.length_m))
        # The human path's carrier phase is evaluated at a configurable
        # spatial scale: with reduced-scale campaigns the training set
        # cannot sample positions at the true 12 cm carrier wavelength, so
        # the phase gradient is stretched to keep the image -> CIR mapping
        # as resolvable as it was at the paper's dataset density
        # (DESIGN.md, substitutions).
        human_path = human_scatter_path(
            self.room,
            self.channel.human_phase_wavelength_m,
            human_xy,
            _TORSO_HEIGHT_M,
            self.channel.human_scatter_gain,
        )
        gains.append(human_path.gain)
        delays.append(self._delay_samples(human_path.length_m))
        return gains, delays

    def _raw_cir(self, human_xy: np.ndarray) -> np.ndarray:
        gains, delays = self._active_paths(human_xy)
        geometric = synthesize_taps(
            np.asarray(gains), np.asarray(delays), self.channel.num_taps
        )
        combined = np.convolve(geometric, self._device_response)
        return combined[: self.channel.num_taps]

    # -- public API ---------------------------------------------------------
    def cir(self, human_xy) -> np.ndarray:
        """Complex CIR (``num_taps`` taps) for the human at ``human_xy``."""
        human_xy = np.asarray(human_xy, dtype=np.float64)
        return self._scale * self._raw_cir(human_xy)

    def _static_batch_state(self) -> tuple[np.ndarray, np.ndarray]:
        """Static-path gains and windowed-sinc kernels, built once.

        Static paths have position-independent delays, so their
        fractional-delay kernels never change; only the blockage factor
        of each path depends on the human position.
        """
        state = getattr(self, "_static_state", None)
        if state is None:
            num_taps = self.channel.num_taps
            gains = np.array(
                [path.gain for path in self.static_paths],
                dtype=np.complex128,
            )
            kernels = np.stack(
                [
                    fractional_delay_taps(
                        self._delay_samples(path.length_m), num_taps
                    )
                    for path in self.static_paths
                ]
            )
            # Device-response convolution as a small matrix: column l of
            # ``device_matrix`` holds the device tap contributing to
            # output tap l from geometric tap j.
            device = self._device_response
            device_matrix = np.zeros(
                (num_taps, num_taps), dtype=np.complex128
            )
            for j in range(num_taps):
                stop = min(num_taps, j + len(device))
                device_matrix[j, j:stop] = device[: stop - j]
            state = (gains, kernels, device_matrix)
            self._static_state = state
        return state

    def _human_scatter_batch(self, humans_xy: np.ndarray) -> np.ndarray:
        """Additive scatter-path taps of one human per batch row.

        ``humans_xy`` is ``(P, 2)`` float64; returns the ``(P, num_taps)``
        complex128 geometric-tap contribution of the (never self-blocked)
        mobile scatter path, windowed-sinc interpolated onto the tap grid
        exactly as in the scalar :meth:`cir` path.
        """
        num_taps = self.channel.num_taps
        tx = np.asarray(self.room.tx_position, dtype=np.float64)
        rx = np.asarray(self.room.rx_position, dtype=np.float64)
        scatter = np.concatenate(
            [
                humans_xy,
                np.full((len(humans_xy), 1), _TORSO_HEIGHT_M),
            ],
            axis=1,
        )
        d1 = np.linalg.norm(scatter - tx[None, :], axis=1)
        d2 = np.linalg.norm(rx[None, :] - scatter, axis=1)
        total = d1 + d2
        spreading = 1.0 / np.maximum(total, 0.1)
        phase = np.exp(
            -2j
            * np.pi
            * total
            / self.channel.human_phase_wavelength_m
        )
        human_gains = self.channel.human_scatter_gain * spreading * phase
        excess = np.maximum(total - self._los_length, 0.0)
        human_delays = (
            self.channel.pre_cursor
            + excess
            / 299_792_458.0
            * self.channel.delay_stretch
            * self.phy.sample_rate_hz
        )
        indices = np.arange(num_taps, dtype=np.float64)
        offsets = indices[None, :] - human_delays[:, None]
        sinc = np.sinc(offsets)
        clipped = np.clip(offsets / 5.0, -1.0, 1.0)
        window = 0.5 * (1.0 + np.cos(np.pi * clipped))
        return human_gains[:, None] * (sinc * window)

    def cir_batch(self, humans_xy) -> np.ndarray:
        """Complex CIRs for a batch of human positions.

        Parameters
        ----------
        humans_xy:
            ``(P, 2)`` float64 xy positions, one human per batch row.

        Returns
        -------
        numpy.ndarray
            ``(P, num_taps)`` complex128 matrix whose row ``p`` matches
            ``cir(humans_xy[p])`` to numerical precision (the batch
            equivalence suite bounds the difference at ``1e-10``):
            per-path blockage factors and the human scatter path are
            evaluated vectorized, static-path kernels are reused across
            the batch.
        """
        humans_xy = np.asarray(humans_xy, dtype=np.float64)
        if humans_xy.ndim != 2 or humans_xy.shape[1] != 2:
            raise ShapeError(
                f"humans_xy must be (P, 2), got {humans_xy.shape}"
            )
        return self.cir_multi_batch(humans_xy[:, None, :])

    def cir_multi_batch(self, humans_xy) -> np.ndarray:
        """CIRs for batches of *multiple* simultaneous humans.

        First-order multi-body model used by the campaign scenarios:
        every static path is attenuated by the product of the per-human
        knife-edge blockage factors (each body can shadow the path
        independently) and one scatter path is added per human.

        Parameters
        ----------
        humans_xy:
            ``(P, H, 2)`` float64 positions — ``H`` humans per row.

        Returns
        -------
        numpy.ndarray
            ``(P, num_taps)`` complex128 tap matrix.  With ``H == 1``
            this reduces exactly to :meth:`cir_batch`.
        """
        humans_xy = np.asarray(humans_xy, dtype=np.float64)
        if humans_xy.ndim != 3 or humans_xy.shape[2] != 2:
            raise ShapeError(
                f"humans_xy must be (P, H, 2), got {humans_xy.shape}"
            )
        num_humans = humans_xy.shape[1]
        gains, kernels, device_matrix = self._static_batch_state()
        factors = np.ones(
            (humans_xy.shape[0], len(self.static_paths)), dtype=np.float64
        )
        for h in range(num_humans):
            factors *= np.stack(
                [
                    path_blockage_factor_batch(
                        path, humans_xy[:, h, :], self.channel
                    )
                    for path in self.static_paths
                ],
                axis=1,
            )
        geometric = (factors * gains[None, :]).astype(
            np.complex128
        ) @ kernels.astype(np.complex128)
        for h in range(num_humans):
            geometric += self._human_scatter_batch(humans_xy[:, h, :])
        return self._scale * (geometric @ device_matrix)

    def los_clearance_batch(self, humans_xy) -> np.ndarray:
        """Vectorized :meth:`los_clearance` over ``(P, 2)`` positions."""
        return path_clearance_batch(
            np.asarray(self.static_paths[0].points, dtype=np.float64),
            np.asarray(humans_xy, dtype=np.float64),
            self.channel.human_height_m,
        )

    def los_clearance_multi_batch(self, humans_xy) -> np.ndarray:
        """Smallest per-row LoS clearance over ``(P, H, 2)`` positions.

        The LoS is blocked when *any* human intrudes, so the campaign
        blockage annotation uses the minimum clearance across humans.
        """
        humans_xy = np.asarray(humans_xy, dtype=np.float64)
        if humans_xy.ndim != 3 or humans_xy.shape[2] != 2:
            raise ShapeError(
                f"humans_xy must be (P, H, 2), got {humans_xy.shape}"
            )
        clearances = np.stack(
            [
                self.los_clearance_batch(humans_xy[:, h, :])
                for h in range(humans_xy.shape[1])
            ],
            axis=1,
        )
        return clearances.min(axis=1)

    def los_clearance(self, human_xy) -> float:
        """Horizontal clearance between the human and the LoS path."""
        return path_clearance(
            np.asarray(self.static_paths[0].points, dtype=np.float64),
            np.asarray(human_xy, dtype=np.float64),
            self.channel.human_height_m,
        )

    def is_los_blocked(self, human_xy) -> bool:
        """Whether the human body intersects the LoS (Fig. 1b scenario)."""
        return self.los_blocked_from_clearance(
            self.los_clearance(human_xy)
        )

    def los_blocked_from_clearance(self, clearance_m: float) -> bool:
        """The blockage criterion applied to a precomputed clearance."""
        return bool(clearance_m <= self.channel.human_radius_m)

    def received_power(self, human_xy) -> float:
        """Total CIR energy — proxies received signal power."""
        taps = self.cir(human_xy)
        return float(np.sum(np.abs(taps) ** 2))
