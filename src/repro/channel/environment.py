"""The indoor environment: human position -> complex channel impulse
response.

This is the physical core of the dataset substitution (DESIGN.md): the
CIR is a deterministic function of the room geometry and the human's
position, exactly the property the paper's hypotheses (Sec. 2.2) assert —
mobility changes MPC amplitude/phase; identical displacement yields
near-identical MPCs.

The geometric path delays are stretched (``ChannelConfig.delay_stretch``)
and a static device-response FIR is appended so that the resulting 11-tap
LS footprint matches the paper's measurements (dominant taps 6-8 with
pre-cursor energy, Fig. 5a).
"""

from __future__ import annotations

import numpy as np

from ..config import ChannelConfig, PhyConfig, RoomConfig
from ..dsp.taps import synthesize_taps
from .blockage import path_blockage_factor
from .geometry import path_clearance
from .multipath import (
    PropagationPath,
    build_static_paths,
    human_scatter_path,
)

_TORSO_HEIGHT_M = 1.1
_REFERENCE_HUMAN_XY = (0.45, 0.45)


class IndoorEnvironment:
    """Room + static objects + mobile human -> tapped-delay-line CIR."""

    def __init__(
        self,
        room: RoomConfig,
        channel: ChannelConfig,
        phy: PhyConfig,
    ) -> None:
        self.room = room
        self.channel = channel
        self.phy = phy
        self.wavelength_m = 299_792_458.0 / phy.carrier_frequency_hz
        self.static_paths: list[PropagationPath] = build_static_paths(
            room, self.wavelength_m
        )
        self._los_length = self.static_paths[0].length_m
        self._device_response = np.asarray(
            channel.device_response, dtype=np.complex128
        )
        self._scale = 1.0
        reference = self._raw_cir(np.asarray(_REFERENCE_HUMAN_XY))
        power = float(np.sum(np.abs(reference) ** 2))
        if power <= 0:
            raise ValueError("degenerate environment: zero reference power")
        self._scale = 1.0 / np.sqrt(power)

    # -- helpers -----------------------------------------------------------
    def _delay_samples(self, length_m: float) -> float:
        excess = max(length_m - self._los_length, 0.0)
        excess_s = excess / 299_792_458.0 * self.channel.delay_stretch
        return self.channel.pre_cursor + excess_s * self.phy.sample_rate_hz

    def _active_paths(
        self, human_xy: np.ndarray
    ) -> tuple[list[complex], list[float]]:
        gains: list[complex] = []
        delays: list[float] = []
        for path in self.static_paths:
            factor = path_blockage_factor(path, human_xy, self.channel)
            gains.append(path.gain * factor)
            delays.append(self._delay_samples(path.length_m))
        # The human path's carrier phase is evaluated at a configurable
        # spatial scale: with reduced-scale campaigns the training set
        # cannot sample positions at the true 12 cm carrier wavelength, so
        # the phase gradient is stretched to keep the image -> CIR mapping
        # as resolvable as it was at the paper's dataset density
        # (DESIGN.md, substitutions).
        human_path = human_scatter_path(
            self.room,
            self.channel.human_phase_wavelength_m,
            human_xy,
            _TORSO_HEIGHT_M,
            self.channel.human_scatter_gain,
        )
        gains.append(human_path.gain)
        delays.append(self._delay_samples(human_path.length_m))
        return gains, delays

    def _raw_cir(self, human_xy: np.ndarray) -> np.ndarray:
        gains, delays = self._active_paths(human_xy)
        geometric = synthesize_taps(
            np.asarray(gains), np.asarray(delays), self.channel.num_taps
        )
        combined = np.convolve(geometric, self._device_response)
        return combined[: self.channel.num_taps]

    # -- public API ---------------------------------------------------------
    def cir(self, human_xy) -> np.ndarray:
        """Complex CIR (``num_taps`` taps) for the human at ``human_xy``."""
        human_xy = np.asarray(human_xy, dtype=np.float64)
        return self._scale * self._raw_cir(human_xy)

    def los_clearance(self, human_xy) -> float:
        """Horizontal clearance between the human and the LoS path."""
        return path_clearance(
            np.asarray(self.static_paths[0].points, dtype=np.float64),
            np.asarray(human_xy, dtype=np.float64),
            self.channel.human_height_m,
        )

    def is_los_blocked(self, human_xy) -> bool:
        """Whether the human body intersects the LoS (Fig. 1b scenario)."""
        return self.los_clearance(human_xy) <= self.channel.human_radius_m

    def received_power(self, human_xy) -> float:
        """Total CIR energy — proxies received signal power."""
        taps = self.cir(human_xy)
        return float(np.sum(np.abs(taps) ** 2))
