"""Mobile humans inside the camera-covered movement area.

The paper's campaign walks a single human on random waypoints (Sec. 3:
"The human is always mobile during the measurements" and the movement
area is limited so all movements are captured).  Campaign scenarios add
:class:`CrossingMobility`, a walker that shuttles between the two sides
of the movement area so the LoS path is crossed on every traversal, and
:class:`GroupedFollowerMobility`, a walker that tracks a leader at a
bounded offset so multi-human scenes move as one cluster
(``trajectory="grouped"``).  :func:`make_walker` selects the trajectory
preset configured in :class:`~repro.config.MobilityConfig` and
:func:`build_walkers` assembles the full per-set walker list (leader +
followers, heterogeneous per-walker speed bands) the dataset generator
consumes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..config import MobilityConfig, RoomConfig
from ..errors import ConfigurationError


@dataclass(frozen=True)
class Waypoint:
    """One leg of a random-waypoint trajectory."""

    start_time_s: float
    position: tuple[float, float]


class RandomWaypointMobility:
    """Random-waypoint walker restricted to the movement area.

    The walker picks a uniform target inside the area, walks there at a
    uniformly drawn speed, optionally pauses, and repeats.  Positions are
    queried at arbitrary timestamps via :meth:`position_at`.
    """

    def __init__(
        self,
        room: RoomConfig,
        mobility: MobilityConfig,
        rng: np.random.Generator,
        duration_s: float,
    ) -> None:
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        self._area = room.movement_area
        self._mobility = mobility
        self._segments: list[tuple[float, float, np.ndarray, np.ndarray]] = []
        self._build(rng, duration_s)
        self.duration_s = duration_s

    def _random_point(self, rng: np.random.Generator) -> np.ndarray:
        x0, y0, x1, y1 = self._area
        return np.array(
            [rng.uniform(x0, x1), rng.uniform(y0, y1)], dtype=np.float64
        )

    # Trajectory presets override only where the walker goes next; the
    # walk/pause segment construction below is shared.
    def _initial_point(self, rng: np.random.Generator) -> np.ndarray:
        return self._random_point(rng)

    def _next_target(self, rng: np.random.Generator) -> np.ndarray:
        return self._random_point(rng)

    def _build(self, rng: np.random.Generator, duration_s: float) -> None:
        time = 0.0
        position = self._initial_point(rng)
        while time < duration_s:
            target = self._next_target(rng)
            speed = rng.uniform(
                self._mobility.speed_min_mps, self._mobility.speed_max_mps
            )
            distance = float(np.linalg.norm(target - position))
            travel = max(distance / speed, 1e-6)
            self._segments.append((time, time + travel, position, target))
            time += travel
            position = target
            if self._mobility.pause_max_s > 0:
                pause = rng.uniform(0.0, self._mobility.pause_max_s)
                if pause > 0:
                    self._segments.append(
                        (time, time + pause, position, position)
                    )
                    time += pause

    def position_at(self, time_s: float) -> np.ndarray:
        """Interpolated xy position at ``time_s`` (clamped to the walk)."""
        if time_s <= 0:
            return self._segments[0][2].copy()
        for start, end, a, b in self._segments:
            if start <= time_s < end:
                frac = (time_s - start) / (end - start)
                return a + frac * (b - a)
        return self._segments[-1][3].copy()


class CrossingMobility(RandomWaypointMobility):
    """Walker that repeatedly crosses the TX-RX line.

    Targets alternate between a strip along the low-``y`` edge and a
    strip along the high-``y`` edge of the movement area, so every leg
    traverses the middle of the area — where the LoS path runs in the
    paper's room — and periodic deep blockage events are guaranteed.
    Speeds, pauses and the segment representation are shared with
    :class:`RandomWaypointMobility`.
    """

    #: Fraction of the area's depth used for each edge strip.
    _STRIP_FRACTION = 0.25

    def _initial_point(self, rng: np.random.Generator) -> np.ndarray:
        self._side = int(rng.integers(0, 2))
        return self._edge_point(rng, self._side)

    def _next_target(self, rng: np.random.Generator) -> np.ndarray:
        self._side = 1 - self._side
        return self._edge_point(rng, self._side)

    def _edge_point(
        self, rng: np.random.Generator, side: int
    ) -> np.ndarray:
        x0, y0, x1, y1 = self._area
        strip = (y1 - y0) * self._STRIP_FRACTION
        if side == 0:
            low, high = y0, y0 + strip
        else:
            low, high = y1 - strip, y1
        return np.array(
            [rng.uniform(x0, x1), rng.uniform(low, high)],
            dtype=np.float64,
        )


class GroupedFollowerMobility:
    """Walker that tracks a leader at a bounded, fixed offset.

    Grouped scenes (``trajectory="grouped"``) move as one cluster: the
    leader walks random waypoints and every follower holds a per-walker
    offset drawn once from a disc of radius
    ``mobility.group_spread_m``, clamped back into the movement area so
    followers never escape the camera-covered region.  The offset is a
    pure function of the follower's RNG, so grouped trajectories replay
    deterministically like every other preset.
    """

    def __init__(
        self,
        leader: RandomWaypointMobility,
        room: RoomConfig,
        mobility: MobilityConfig,
        rng: np.random.Generator,
    ) -> None:
        self._leader = leader
        self._area = room.movement_area
        angle = rng.uniform(0.0, 2.0 * np.pi)
        radius = mobility.group_spread_m * np.sqrt(rng.uniform(0.0, 1.0))
        self._offset = np.array(
            [radius * np.cos(angle), radius * np.sin(angle)],
            dtype=np.float64,
        )
        self.duration_s = leader.duration_s

    def position_at(self, time_s: float) -> np.ndarray:
        """Leader position plus the offset, clamped to the area."""
        x0, y0, x1, y1 = self._area
        position = self._leader.position_at(time_s) + self._offset
        return np.clip(position, (x0, y0), (x1, y1))


def make_walker(
    room: RoomConfig,
    mobility: MobilityConfig,
    rng: np.random.Generator,
    duration_s: float,
) -> RandomWaypointMobility:
    """Build the walker class selected by ``mobility.trajectory``.

    ``"grouped"`` returns the cluster's *leader* (a random-waypoint
    walk); followers wrap it via :class:`GroupedFollowerMobility` — see
    :func:`build_walkers` for the full per-set assembly.
    """
    if mobility.trajectory == "crossing":
        return CrossingMobility(room, mobility, rng, duration_s)
    if mobility.trajectory in ("random-waypoint", "grouped"):
        return RandomWaypointMobility(room, mobility, rng, duration_s)
    raise ConfigurationError(
        f"unknown trajectory preset {mobility.trajectory!r}"
    )


def walker_speed_band(
    mobility: MobilityConfig, walker_index: int
) -> tuple[float, float]:
    """Speed range of one walker under the configured speed profile.

    ``"uniform"`` gives every walker the full ``(speed_min_mps,
    speed_max_mps)`` range; ``"heterogeneous"`` partitions the range
    into ``num_humans`` equal disjoint bands (walker 0 slowest), so
    multi-walker scenes mix dwell times deterministically.
    """
    if (
        mobility.speed_profile == "uniform"
        or mobility.num_humans == 1
    ):
        return (mobility.speed_min_mps, mobility.speed_max_mps)
    span = mobility.speed_max_mps - mobility.speed_min_mps
    step = span / mobility.num_humans
    low = mobility.speed_min_mps + walker_index * step
    high = low + step if step > 0 else mobility.speed_max_mps
    return (low, high)


def build_walkers(
    room: RoomConfig,
    mobility: MobilityConfig,
    seed_root: tuple[int, ...],
    duration_s: float,
):
    """The per-set walker list: leader plus ``num_humans - 1`` extras.

    The primary walker keeps the original single-human seed derivation
    (``seed_root`` alone) so existing datasets replay bit-identically;
    every extra walker extends the seed tuple with its index.  Grouped
    trajectories attach followers to the primary walker; heterogeneous
    speed profiles give each walker its own
    :func:`walker_speed_band`.
    """
    def _mobility_for(index: int) -> MobilityConfig:
        low, high = walker_speed_band(mobility, index)
        if (low, high) == (
            mobility.speed_min_mps,
            mobility.speed_max_mps,
        ):
            return mobility
        return dataclasses.replace(
            mobility, speed_min_mps=low, speed_max_mps=high
        )

    walkers = [
        make_walker(
            room,
            _mobility_for(0),
            np.random.default_rng(list(seed_root)),
            duration_s=duration_s,
        )
    ]
    for extra in range(1, mobility.num_humans):
        rng = np.random.default_rng([*seed_root, extra])
        if mobility.trajectory == "grouped":
            walkers.append(
                GroupedFollowerMobility(
                    walkers[0], room, _mobility_for(extra), rng
                )
            )
        else:
            walkers.append(
                make_walker(
                    room,
                    _mobility_for(extra),
                    rng,
                    duration_s=duration_s,
                )
            )
    return walkers


def sample_trajectory(
    walker: RandomWaypointMobility, timestamps: np.ndarray
) -> np.ndarray:
    """Vectorized positions for an array of timestamps -> ``(n, 2)``."""
    timestamps = np.asarray(timestamps, dtype=np.float64)
    return np.stack([walker.position_at(float(t)) for t in timestamps])
