"""Indoor multipath wireless channel simulator.

Substitutes the paper's measured laboratory channel (see DESIGN.md):

- :mod:`repro.channel.geometry` — vector helpers, wall reflections
  (image method), segment/point clearances.
- :mod:`repro.channel.multipath` — propagation paths: LoS, first-order
  wall/ceiling reflections, static-object scatter paths, human scatter.
- :mod:`repro.channel.human` — mobile humans: cylinder blockers with
  random-waypoint or LoS-crossing mobility (Sec. 3's movement area).
- :mod:`repro.channel.blockage` — soft knife-edge attenuation of paths
  passing near the human (Fig. 1's MPC distortions).
- :mod:`repro.channel.noise` — complex AWGN with explicit generators.
- :mod:`repro.channel.environment` — :class:`IndoorEnvironment`, mapping a
  human position to the 11-tap complex CIR of Eq. 2/3.
"""

from .geometry import (
    mirror_point,
    path_length,
    segment_clearance,
)
from .multipath import PropagationPath, build_static_paths, human_scatter_path
from .human import (
    CrossingMobility,
    GroupedFollowerMobility,
    RandomWaypointMobility,
    build_walkers,
    make_walker,
    sample_trajectory,
    walker_speed_band,
)
from .blockage import (
    blockage_attenuation,
    path_blockage_factor,
    shadow_clearance_m,
)
from .noise import awgn, noise_power_for_snr
from .environment import IndoorEnvironment

__all__ = [
    "mirror_point",
    "path_length",
    "segment_clearance",
    "PropagationPath",
    "build_static_paths",
    "human_scatter_path",
    "CrossingMobility",
    "GroupedFollowerMobility",
    "RandomWaypointMobility",
    "build_walkers",
    "make_walker",
    "sample_trajectory",
    "walker_speed_band",
    "blockage_attenuation",
    "path_blockage_factor",
    "shadow_clearance_m",
    "awgn",
    "noise_power_for_snr",
    "IndoorEnvironment",
]
