"""Human blockage of multipath components (Fig. 1b/1c).

When the human's body intersects a propagation path the component is
attenuated.  We use a soft knife-edge profile: deep, configurable loss
when the path passes through the body, smoothly recovering to unity as the
clearance grows past the body radius.  The smooth transition both matches
diffraction behaviour and keeps the image -> CIR mapping learnable.
"""

from __future__ import annotations

import numpy as np

from ..config import ChannelConfig
from .geometry import path_clearance, path_clearance_batch
from .multipath import PropagationPath


def blockage_attenuation(
    clearance_m: float,
    radius_m: float,
    blockage_db: float,
    sharpness_m: float,
) -> float:
    """Amplitude factor in (0, 1] for a path at given horizontal clearance.

    ``clearance_m <= radius_m`` yields the full configured loss;
    the factor rises along a logistic ramp of width ``sharpness_m``.
    """
    floor = 10.0 ** (-blockage_db / 20.0)
    if not np.isfinite(clearance_m):
        return 1.0
    margin = (clearance_m - radius_m) / max(sharpness_m, 1e-6)
    ramp = 1.0 / (1.0 + np.exp(-4.0 * margin))
    return float(floor + (1.0 - floor) * ramp)


def shadow_clearance_m(config: ChannelConfig) -> float:
    """LoS clearance below which the human meaningfully shadows the link.

    The soft knife-edge extends one sharpness width past the body
    radius; packets with ``los_clearance_m`` at or below this threshold
    are annotated as "blocked" in timeline figures (Fig. 15 and the
    streaming link-adaptation timeline).
    """
    return config.human_radius_m + config.blockage_sharpness_m


def path_blockage_factor(
    path: PropagationPath,
    human_xy,
    config: ChannelConfig,
) -> float:
    """Attenuation the human at ``human_xy`` imposes on ``path``.

    The human's own scatter path is never blocked by themselves.
    """
    if path.kind == "human":
        return 1.0
    clearance = path_clearance(
        np.asarray(path.points, dtype=np.float64),
        np.asarray(human_xy, dtype=np.float64),
        config.human_height_m,
    )
    return blockage_attenuation(
        clearance,
        config.human_radius_m,
        config.blockage_db,
        config.blockage_sharpness_m,
    )


def path_blockage_factor_batch(
    path: PropagationPath,
    humans_xy: np.ndarray,
    config: ChannelConfig,
) -> np.ndarray:
    """Vectorized :func:`path_blockage_factor` over human positions."""
    humans_xy = np.asarray(humans_xy, dtype=np.float64)
    if path.kind == "human":
        return np.ones(len(humans_xy))
    clearances = path_clearance_batch(
        np.asarray(path.points, dtype=np.float64),
        humans_xy,
        config.human_height_m,
    )
    floor = 10.0 ** (-config.blockage_db / 20.0)
    margins = (
        clearances - config.human_radius_m
    ) / max(config.blockage_sharpness_m, 1e-6)
    with np.errstate(over="ignore"):
        ramps = 1.0 / (1.0 + np.exp(-4.0 * margins))
    factors = floor + (1.0 - floor) * ramps
    factors[~np.isfinite(clearances)] = 1.0
    return factors
