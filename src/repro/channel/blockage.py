"""Human blockage of multipath components (Fig. 1b/1c).

When the human's body intersects a propagation path the component is
attenuated.  We use a soft knife-edge profile: deep, configurable loss
when the path passes through the body, smoothly recovering to unity as the
clearance grows past the body radius.  The smooth transition both matches
diffraction behaviour and keeps the image -> CIR mapping learnable.
"""

from __future__ import annotations

import numpy as np

from ..config import ChannelConfig
from .geometry import path_clearance
from .multipath import PropagationPath


def blockage_attenuation(
    clearance_m: float,
    radius_m: float,
    blockage_db: float,
    sharpness_m: float,
) -> float:
    """Amplitude factor in (0, 1] for a path at given horizontal clearance.

    ``clearance_m <= radius_m`` yields the full configured loss;
    the factor rises along a logistic ramp of width ``sharpness_m``.
    """
    floor = 10.0 ** (-blockage_db / 20.0)
    if not np.isfinite(clearance_m):
        return 1.0
    margin = (clearance_m - radius_m) / max(sharpness_m, 1e-6)
    ramp = 1.0 / (1.0 + np.exp(-4.0 * margin))
    return float(floor + (1.0 - floor) * ramp)


def path_blockage_factor(
    path: PropagationPath,
    human_xy,
    config: ChannelConfig,
) -> float:
    """Attenuation the human at ``human_xy`` imposes on ``path``.

    The human's own scatter path is never blocked by themselves.
    """
    if path.kind == "human":
        return 1.0
    clearance = path_clearance(
        np.asarray(path.points, dtype=np.float64),
        np.asarray(human_xy, dtype=np.float64),
        config.human_height_m,
    )
    return blockage_attenuation(
        clearance,
        config.human_radius_m,
        config.blockage_db,
        config.blockage_sharpness_m,
    )
