"""Veni Vidi Dixi (VVD) reproduction — CoNEXT 2019.

Reliable wireless communication with depth images: a CNN maps depth
images of the communication environment to complex IEEE 802.15.4 channel
estimates, removing pilot overhead (Ayvasik, Gursu, Kellerer).

Quickstart::

    from repro import SimulationConfig, generate_dataset, build_components
    from repro.experiments import EvaluationRunner, build_full_suite
    from repro.dataset import rotating_set_combinations

    config = SimulationConfig.tiny()
    components = build_components(config)
    sets = generate_dataset(config, components)
    runner = EvaluationRunner(components, sets)
    combo = rotating_set_combinations(config.dataset.num_sets)[0]
    result = runner.run_combination(combo, build_full_suite(config))
    print({n: r.per for n, r in result.techniques.items()})

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .config import (
    CameraConfig,
    ChannelConfig,
    DatasetConfig,
    KalmanConfig,
    MobilityConfig,
    PhyConfig,
    ReceiverConfig,
    RoomConfig,
    SimulationConfig,
    VVDConfig,
)
from .dataset import build_components, generate_dataset
from .errors import (
    ConfigurationError,
    ConflictError,
    DatasetError,
    DecodingError,
    NotFittedError,
    NotFoundError,
    ReproError,
    ShapeError,
    SynchronizationError,
    UnavailableError,
)


def __getattr__(name: str):
    """Lazily expose the heavy subpackages (PEP 562).

    ``repro.api`` (the programmatic campaign facade) and ``repro.serve``
    (the campaign-as-a-service daemon) pull in the whole campaign
    stack; importing them eagerly would make ``import repro`` pay for
    orchestration machinery that pure-PHY users never touch.
    """
    if name in ("api", "serve"):
        import importlib

        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

__version__ = "1.0.0"

__all__ = [
    "SimulationConfig",
    "PhyConfig",
    "ChannelConfig",
    "RoomConfig",
    "CameraConfig",
    "MobilityConfig",
    "ReceiverConfig",
    "DatasetConfig",
    "VVDConfig",
    "KalmanConfig",
    "build_components",
    "generate_dataset",
    "ReproError",
    "ConfigurationError",
    "ConflictError",
    "NotFoundError",
    "UnavailableError",
    "ShapeError",
    "SynchronizationError",
    "NotFittedError",
    "DecodingError",
    "DatasetError",
    "api",
    "serve",
    "__version__",
]
