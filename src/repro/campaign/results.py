"""Aggregated results store for grid campaigns.

Each grid point persists one JSON record keyed by its grid coordinates
(the ``axis=value`` pairs that derived its scenario); the store lays the
records out as one file per coordinate key so parallel workers never
contend on a shared index, and the final ``report`` step assembles the
deterministic aggregate (``results.json``) plus the cross-scenario
summary table from them.

Records must be pure functions of the grid point (metrics, model keys —
never wall-clock timestamps or cache hit/miss provenance), which is
what makes a grid campaign's aggregate byte-identical between
``--jobs 1`` and ``--jobs N`` runs: the same records land in the same
files, and the aggregate serializes them in sorted coordinate order.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .. import faults
from ..errors import ConfigurationError
from ..obs import log
from .locking import atomic_write_text, sweep_stale_tmp

#: Characters allowed verbatim in a record file stem; anything else is
#: replaced so coordinate keys can never escape the store directory.
_SAFE_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "0123456789=.,+-"
)


def coords_key(coords) -> str:
    """Canonical ``axis=value,axis=value`` key of one grid coordinate.

    ``coords`` is a sequence of ``(axis, value)`` pairs (or a mapping);
    the key preserves the grid's declared axis order, so it is stable
    across processes and runs.
    """
    if isinstance(coords, dict):
        pairs = list(coords.items())
    else:
        pairs = list(coords)
    if not pairs:
        raise ConfigurationError("grid coordinates must not be empty")
    return ",".join(f"{axis}={value}" for axis, value in pairs)


def _record_stem(key: str) -> str:
    """File-system-safe stem of one coordinate key."""
    return "".join(c if c in _SAFE_CHARS else "_" for c in key)


class ResultsStore:
    """One-directory store of per-grid-point JSON result records."""

    #: File name of the assembled aggregate.
    AGGREGATE_NAME = "results.json"

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def record_path(self, coords) -> Path:
        """File persisting the record of one coordinate."""
        return self.directory / f"{_record_stem(coords_key(coords))}.json"

    def put(self, coords, record: dict) -> Path:
        """Persist one grid point's record (atomic, worker-safe).

        The payload is canonical JSON (sorted keys, fixed separators)
        written through a unique temp file, so concurrent workers can
        publish records without a shared lock and a killed run never
        leaves a torn record behind.
        """
        path = self.record_path(coords)
        atomic_write_text(
            path,
            json.dumps(
                {"coords": coords_key(coords), "record": record},
                indent=2,
                sort_keys=True,
            ),
        )
        return path

    def _quarantine_record(self, path: Path, reason: str) -> None:
        """Move a corrupt record aside (``*.corrupt``) and warn.

        The renamed file no longer matches the ``*.json`` glob, so
        aggregation continues over the surviving records; the bytes
        are kept for post-mortems.
        """
        quarantined = path.with_name(f"{path.name}.corrupt")
        try:
            os.replace(path, quarantined)
        except OSError:  # pragma: no cover - racing quarantine
            pass
        log.warning(
            f"warning: corrupt grid record {path.name} — quarantined "
            f"to {quarantined.name} ({reason})"
        )

    def _parse_record(self, path: Path) -> tuple[str, dict] | None:
        """Parse one record file; quarantine and return None if corrupt."""
        try:
            data = json.loads(path.read_text())
            return (data["coords"], data["record"])
        except (
            json.JSONDecodeError,
            KeyError,
            TypeError,
            UnicodeDecodeError,
        ) as exc:
            self._quarantine_record(
                path, f"{type(exc).__name__}: {exc}"
            )
            return None

    def get(self, coords) -> dict:
        """The stored record of one coordinate (raises when absent).

        A record that exists but cannot be parsed (truncated or
        corrupted write) is quarantined to ``*.corrupt`` and then
        reported as absent, so one bad file degrades to a missing
        point instead of crashing the whole aggregate.
        """
        faults.inject("results.record", coords_key(coords))
        path = self.record_path(coords)
        if path.exists():
            parsed = self._parse_record(path)
            if parsed is not None:
                return parsed[1]
        raise ConfigurationError(
            f"no grid record for {coords_key(coords)!r} at {path}"
        )

    def records(self) -> list[tuple[str, dict]]:
        """Every stored ``(coords_key, record)``, sorted by key.

        Sorting is by the canonical coordinate key string, so the order
        — and everything derived from it — is independent of write
        order and hence of the executor's scheduling.  Stale temp files
        left by killed writers are swept; corrupt records are
        quarantined (renamed ``*.corrupt``) with a warning and the
        aggregate continues over the survivors.
        """
        if not self.directory.exists():
            return []
        sweep_stale_tmp(self.directory)
        found = []
        for path in sorted(self.directory.glob("*.json")):
            # Skip the aggregate and any in-flight/stale temp files
            # (".tmp_<pid>_..." — pathlib's glob matches dotfiles).
            if path.name == self.AGGREGATE_NAME or path.name.startswith(
                "."
            ):
                continue
            parsed = self._parse_record(path)
            if parsed is not None:
                found.append(parsed)
        found.sort(key=lambda item: item[0])
        return found

    def aggregate(self) -> dict:
        """``{coords_key: record}`` over every stored record."""
        return {key: record for key, record in self.records()}

    def write_aggregate(self) -> Path:
        """Assemble and persist ``results.json``; returns its path.

        The aggregate serializes the records in sorted coordinate order
        with canonical JSON, so its bytes depend only on the records'
        contents — a ``--jobs 1`` and a ``--jobs N`` run of the same
        grid produce identical files.
        """
        path = self.directory / self.AGGREGATE_NAME
        atomic_write_text(
            path, json.dumps(self.aggregate(), indent=2, sort_keys=True)
        )
        return path
