"""Cross-process file locking for campaign index mutation.

The parallel campaign executor runs independent steps in worker
processes, and several of them may touch the same on-disk indexes: the
campaign manifest, a dataset-cache entry's ``meta.json``, a model
checkpoint directory.  Payload writes were already safe (unique temp
file + atomic ``os.replace``), but read-modify-write index updates need
mutual exclusion or concurrent writers silently drop each other's
records (last-writer-wins).

:class:`FileLock` provides that mutual exclusion with nothing but the
standard library: an advisory ``fcntl.flock`` on a sidecar ``*.lock``
file where available (POSIX — the lock dies with the process, so a
killed campaign never wedges the next run), falling back to
``O_CREAT | O_EXCL`` lock files with stale-lock reclamation elsewhere.
Acquisition polls with a bounded timeout and raises
:class:`~repro.errors.LockTimeoutError` on expiry rather than
deadlocking a campaign; the retry policy classifies that as transient
(the holder finishes or dies), so contended steps requeue instead of
failing a run.

:func:`sweep_stale_tmp` is the companion janitor: a worker killed mid
:func:`atomic_write_text` (or mid cache-set save) leaves a
``.tmp_<pid>_*`` sibling behind; the sweep removes temp files whose
writer pid is provably dead so resumed campaigns do not accumulate
litter next to their indexes.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from ..errors import ConfigurationError, LockTimeoutError

try:  # pragma: no cover - availability depends on the platform
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

#: Seconds after which an ``O_EXCL`` fallback lock file left behind by a
#: dead process is considered stale and reclaimed.
STALE_LOCK_SECONDS = 60.0


def _reclaim_stale(path: Path) -> None:
    """Remove an abandoned ``O_EXCL`` lock file without racing waiters.

    Plain stat-then-unlink would let a slow waiter delete the *fresh*
    lock another process just created in the window between the two
    calls.  Instead the stale file is first claimed via an atomic
    rename (exactly one waiter wins; the rest see ``FileNotFoundError``
    and simply retry) and only the renamed file is unlinked — a live
    lock at ``path`` can never be deleted.
    """
    try:
        if time.time() - path.stat().st_mtime <= STALE_LOCK_SECONDS:
            return
        claimed = path.with_name(f"{path.name}.stale.{os.getpid()}")
        os.rename(path, claimed)
        os.unlink(claimed)
    except OSError:
        pass


class FileLock:
    """Advisory cross-process lock around one on-disk resource.

    Use as a context manager::

        with FileLock(manifest_path.with_suffix(".lock")):
            ...  # read-modify-write the manifest

    The lock file itself is never deleted on release (deleting would
    race a concurrent acquirer on POSIX); it is a zero-cost sidecar
    next to the resource it guards.
    """

    def __init__(
        self,
        path: str | Path,
        timeout_s: float = 60.0,
        poll_s: float = 0.01,
    ) -> None:
        self.path = Path(path)
        self.timeout_s = float(timeout_s)
        self.poll_s = float(poll_s)
        self._fd: int | None = None
        self._exclusive_file = False

    def acquire(self) -> "FileLock":
        """Block (polling) until the lock is held; raises on timeout."""
        if self._fd is not None:
            raise ConfigurationError(
                f"lock {self.path} is already held by this instance"
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + self.timeout_s
        while True:
            if self._try_acquire():
                return self
            if time.monotonic() >= deadline:
                raise LockTimeoutError(
                    f"could not acquire lock {self.path} within "
                    f"{self.timeout_s:.0f}s; is another campaign wedged?"
                )
            time.sleep(self.poll_s)

    def _try_acquire(self) -> bool:
        """One non-blocking acquisition attempt."""
        if fcntl is not None:
            fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                os.close(fd)
                return False
            self._fd = fd
            return True
        # O_EXCL fallback: creation is the lock; reclaim stale files.
        try:
            fd = os.open(
                self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            _reclaim_stale(self.path)
            return False
        os.write(fd, str(os.getpid()).encode())
        self._fd = fd
        self._exclusive_file = True
        return True

    def release(self) -> None:
        """Drop the lock (no-op when not held)."""
        if self._fd is None:
            return
        try:
            if self._exclusive_file:
                self.path.unlink(missing_ok=True)
        finally:
            os.close(self._fd)
            self._fd = None
            self._exclusive_file = False

    def __enter__(self) -> "FileLock":
        """Context-manager entry: acquire."""
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: release."""
        self.release()


def lock_path_for(path: str | Path) -> Path:
    """The sidecar lock-file path guarding ``path``."""
    path = Path(path)
    return path.with_name(path.name + ".lock")


def atomic_write_text(path: str | Path, text: str) -> None:
    """Publish ``text`` at ``path`` atomically (worker-safe).

    The write goes through a sibling temp file whose name embeds the
    writer's pid — concurrent writers never truncate each other's
    in-flight temp file — and lands via ``os.replace``, so readers see
    either the old document or the new one, never a torn write.  The
    shared idiom behind manifest saves, results-store records and
    cache index files.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".tmp_{os.getpid()}_{path.name}")
    tmp.write_text(text)
    os.replace(tmp, path)


def _tmp_writer_pid(name: str) -> int | None:
    """Extract the writer pid embedded in a temp-file name, if any.

    Recognizes both in-repo temp naming schemes:
    ``.tmp_<pid>_<name>`` (:func:`atomic_write_text`) and
    ``.tmp_set_<idx>.<pid>.npz`` (cache set saves).
    """
    if not name.startswith(".tmp_"):
        return None
    head = name[len(".tmp_"):].split("_", 1)[0]
    if head.isdigit():
        return int(head)
    for part in reversed(name.split(".")):
        if part.isdigit():
            return int(part)
    return None


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid currently exists."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    except OSError:  # pragma: no cover - conservative default
        return True
    return True


def sweep_stale_tmp(directory: str | Path) -> list[Path]:
    """Remove ``.tmp_*`` litter whose writer process is dead.

    A worker killed between creating its temp file and the atomic
    ``os.replace`` leaves the temp file behind.  Because every temp
    name embeds the writer's pid, staleness is decidable: the file is
    removed only when that pid no longer exists, so in-flight writes of
    live workers are never touched.  Returns the removed paths.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    removed: list[Path] = []
    for path in sorted(directory.glob(".tmp_*")):
        pid = _tmp_writer_pid(path.name)
        if pid is None or _pid_alive(pid):
            continue
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing sweeper
            continue
        removed.append(path)
    return removed
