"""Content-addressed on-disk registry of trained VVD models.

The third leg of the batched-PHY → cached-datasets → cached-models
architecture: where :class:`~repro.campaign.cache.DatasetCache` keys
measurement campaigns by their resolved configuration, this registry
keys *trained models* by everything that determines the training
outcome —

- the training-set cache key (the resolved
  :class:`~repro.config.SimulationConfig` fingerprint, which covers the
  :class:`~repro.config.VVDConfig` hyper-parameters and the dataset the
  sets were generated from),
- the Table 2 split (training / validation set indices),
- the prediction horizon and the weight-init / shuffle seed, and
- a code-version salt (:data:`MODEL_CACHE_SALT`) bumped whenever
  training semantics change.

Each entry is one directory written by
:func:`~repro.core.checkpoint.save_trained_vvd`, so a
:class:`~repro.core.training.TrainedVVD` round-trips losslessly and a
repeated training campaign retrains nothing.  The registry root
defaults to ``~/.cache/repro-vvd/models`` and is overridden by the
``REPRO_MODEL_DIR`` environment variable or the ``--model-dir`` CLI
flag.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from .. import faults
from ..config import SimulationConfig
from ..core.checkpoint import (
    checkpoint_complete,
    load_trained_vvd,
    save_trained_vvd,
)
from ..core.training import TrainedVVD, train_vvd
from ..dataset.trace import MeasurementSet
from ..errors import ConfigurationError
from ..obs import log, trace
from .cache import _canonical, config_fingerprint
from .locking import FileLock

#: Code-version salt mixed into every model key.  Bump the trailing
#: component whenever training/serialization semantics change so stale
#: checkpoints can never be replayed against incompatible code.
MODEL_CACHE_SALT = "repro-vvd-model/v1"

#: Environment variable overriding the default registry root.
MODEL_DIR_ENV = "REPRO_MODEL_DIR"


def default_model_dir() -> Path:
    """Registry root: ``$REPRO_MODEL_DIR`` or ``~/.cache/repro-vvd/models``."""
    import os

    override = os.environ.get(MODEL_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-vvd" / "models"


def model_fingerprint(
    config: SimulationConfig,
    training_indices: Sequence[int],
    validation_indices: Sequence[int],
    horizon_frames: int = 0,
    seed: int = 7,
    engine: str = "batch",
) -> str:
    """Stable 16-hex-digit content hash of one trained-model identity.

    Two trainings share a fingerprint iff they consume the same cached
    measurement sets (``config`` + ``engine`` — the dataset cache key —
    plus the split's set indices) with the same VVD hyper-parameters,
    prediction horizon and seed.  Training-set *order* is part of the
    key: samples are concatenated in set order before the seeded
    shuffle, so a permuted split trains a (slightly) different model
    and must not collide.  The hash is process-independent (canonical
    JSON + SHA-256, no Python ``hash()``), so keys computed in
    different interpreters or on different machines agree.
    """
    # "vvd" and "num_taps" are technically covered by "dataset_key"
    # today (config_fingerprint hashes the whole SimulationConfig) but
    # are hashed explicitly on purpose: if the dataset key is ever
    # narrowed to dataset-affecting fields only, model keys must keep
    # their sensitivity to the training hyper-parameters.
    canonical = json.dumps(
        {
            "salt": MODEL_CACHE_SALT,
            "dataset_key": config_fingerprint(config, engine=engine),
            "vvd": _canonical(config.vvd),
            "num_taps": config.channel.num_taps,
            "training": [int(i) for i in training_indices],
            "validation": [int(i) for i in validation_indices],
            "horizon_frames": int(horizon_frames),
            "seed": int(seed),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass
class ModelRegistryStats:
    """Per-instance registry accounting (reset with :meth:`reset`)."""

    hits: int = 0
    misses: int = 0
    models_trained: int = 0
    models_loaded: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.hits = 0
        self.misses = 0
        self.models_trained = 0
        self.models_loaded = 0

    def summary(self) -> str:
        """One-line human-readable form used by the CLI."""
        return (
            f"{self.hits} hit(s), {self.misses} miss(es); "
            f"{self.models_loaded} model(s) loaded, "
            f"{self.models_trained} model(s) trained"
        )


@dataclass
class ModelEntry:
    """Metadata of one checkpoint directory under the registry root."""

    key: str
    path: Path
    complete: bool
    size_bytes: int
    created: float | None = None
    description: str = ""


class ModelCheckpointRegistry:
    """Content-addressed store of trained VVD checkpoints."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_model_dir()
        self.stats = ModelRegistryStats()

    # -- addressing -------------------------------------------------------
    def key_for(
        self,
        config: SimulationConfig,
        training_sets: Sequence[MeasurementSet],
        validation_sets: Sequence[MeasurementSet],
        horizon_frames: int = 0,
        seed: int = 7,
        engine: str = "batch",
    ) -> str:
        """Registry key of one training run over already-loaded sets."""
        return model_fingerprint(
            config,
            [s.index for s in training_sets],
            [s.index for s in validation_sets],
            horizon_frames=horizon_frames,
            seed=seed,
            engine=engine,
        )

    def entry_dir(self, key: str) -> Path:
        """Directory holding the checkpoint of ``key``."""
        return self.root / key

    def has_key(self, key: str) -> bool:
        """Whether a complete checkpoint for ``key`` is on disk."""
        return checkpoint_complete(self.entry_dir(key))

    # -- load / train -----------------------------------------------------
    def load_or_train(
        self,
        training_sets: Sequence[MeasurementSet],
        validation_sets: Sequence[MeasurementSet],
        config: SimulationConfig,
        horizon_frames: int = 0,
        seed: int = 7,
        verbose: bool = False,
        force: bool = False,
        engine: str = "batch",
    ) -> TrainedVVD:
        """Return the trained model of this split, training only on miss.

        A complete on-disk checkpoint counts as one *hit* and is loaded
        bit-identically; anything else is a *miss* — the model is
        trained with :func:`~repro.core.training.train_vvd` and
        persisted (atomically) before the call returns.  ``force=True``
        discards any cached checkpoint first.  ``engine`` must name the
        dataset engine the sets were generated with (the engines agree
        only to 1e-10, so a model trained on ``scalar`` data must never
        be served for a ``batch`` key, or vice versa).
        """
        key = self.key_for(
            config,
            training_sets,
            validation_sets,
            horizon_frames=horizon_frames,
            seed=seed,
            engine=engine,
        )
        directory = self.entry_dir(key)
        if force and directory.exists():
            shutil.rmtree(directory)
        if self.has_key(key):
            if faults.active_plan() is not None:
                faults.inject("models.load", key)
                faults.corrupt_file(
                    "models.load", key, directory / "weights.npz"
                )
            try:
                with trace.span("models.load", key=key):
                    trained = load_trained_vvd(directory, config.vvd)
            except Exception as exc:
                # A checkpoint that passes the completeness probe but
                # cannot be loaded (torn write, bit rot, version skew)
                # is self-healed: quarantine the directory and fall
                # through to a retrain, never crash the campaign.
                quarantined = directory.with_name(
                    f"{directory.name}.corrupt.{os.getpid()}"
                )
                try:
                    os.replace(directory, quarantined)
                except OSError:  # pragma: no cover - racing loader
                    pass
                log.warning(
                    f"warning: model checkpoint {key} is corrupt — "
                    f"quarantined to {quarantined.name}, retraining "
                    f"({type(exc).__name__}: {exc})"
                )
            else:
                self.stats.hits += 1
                self.stats.models_loaded += 1
                if verbose:
                    log.info(
                        f"model cache hit {key}: loaded from {directory}"
                    )
                return trained

        self.stats.misses += 1
        if verbose:
            log.info(f"model cache miss {key}: training")
        with trace.span("models.train", key=key):
            trained = train_vvd(
                training_sets,
                validation_sets,
                config,
                horizon_frames=horizon_frames,
                seed=seed,
                verbose=verbose,
            )
        self.save(key, trained, config)
        self.stats.models_trained += 1
        return trained

    def save(
        self, key: str, trained: TrainedVVD, config: SimulationConfig
    ) -> Path:
        """Persist ``trained`` under ``key``; returns the entry directory.

        The write happens under the entry's sidecar lock so two parallel
        campaign workers resolving the same key serialize their index
        mutation (each individual file write is already atomic via a
        unique temp file + rename).
        """
        directory = self.entry_dir(key)
        directory.mkdir(parents=True, exist_ok=True)
        with FileLock(directory / ".entry.lock"):
            save_trained_vvd(
                trained,
                directory,
                num_taps=config.channel.num_taps,
                extra_meta={
                    "key": key,
                    "salt": MODEL_CACHE_SALT,
                    "created": time.time(),
                    "vvd_config": _canonical(config.vvd),
                },
            )
        return directory

    def load(self, key: str, config: SimulationConfig) -> TrainedVVD:
        """Load the checkpoint of ``key`` (raises when absent)."""
        directory = self.entry_dir(key)
        if not self.has_key(key):
            raise ConfigurationError(
                f"no model checkpoint {key!r} under {self.root}"
            )
        return load_trained_vvd(directory, config.vvd)

    # -- inspection / invalidation ----------------------------------------
    def entries(self) -> list[ModelEntry]:
        """Metadata of every checkpoint directory under the root."""
        if not self.root.exists():
            return []
        found = []
        for directory in sorted(self.root.iterdir()):
            if not directory.is_dir():
                continue
            created = None
            description = ""
            meta_path = directory / "meta.json"
            if meta_path.exists():
                try:
                    meta = json.loads(meta_path.read_text())
                    created = meta.get("created")
                    epochs = len(
                        meta.get("history", {}).get("train_loss", [])
                    )
                    description = (
                        f"{epochs} epoch(s), horizon "
                        f"{meta.get('horizon_frames')}"
                    )
                except (json.JSONDecodeError, OSError):
                    pass
            size = sum(
                p.stat().st_size
                for p in directory.iterdir()
                if p.is_file()
            )
            found.append(
                ModelEntry(
                    key=directory.name,
                    path=directory,
                    complete=checkpoint_complete(directory),
                    size_bytes=size,
                    created=created,
                    description=description,
                )
            )
        return found

    def invalidate(self, key: str) -> int:
        """Remove one checkpoint by key; returns 1 or 0.

        ``key`` must be a 16-hex-digit fingerprint (the
        :func:`model_fingerprint` format) so a malformed key can never
        escape the registry root.
        """
        key = str(key)
        if len(key) != 16 or any(
            c not in "0123456789abcdef" for c in key
        ):
            raise ConfigurationError(
                f"invalid model key {key!r}: expected 16 hex digits"
            )
        directory = self.root / key
        if not directory.is_dir():
            return 0
        shutil.rmtree(directory)
        return 1

    def clear(self) -> int:
        """Remove every checkpoint; returns the number removed."""
        removed = 0
        for entry in self.entries():
            shutil.rmtree(entry.path)
            removed += 1
        return removed
