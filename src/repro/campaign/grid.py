"""Parametric scenario grids: declarative axes -> derived scenarios.

The paper's evaluation is inherently a grid — channel prediction scored
across mobility patterns, blockage densities, SNR points, horizons and
seeds — but hand-writing one :class:`~repro.campaign.scenario.Scenario`
per cell does not scale.  A :class:`GridSpec` names a base scenario and
a list of axes (``num_humans``, walker ``speed``, ``snr_db``, ``seed``,
``horizon``, ...); :meth:`GridSpec.expand` takes the cartesian product
in declared axis order and derives one scenario per cell.

Derived scenarios are first-class citizens: they are registered in the
scenario registry (``repro list-scenarios`` shows them, and any
existing step builder — sweep, train, figure, stream — accepts them by
name), and each resolves to its own
:class:`~repro.config.SimulationConfig`, so grid members are
individually content-addressed in the dataset cache.  Member names are
pure functions of the grid and the cell coordinates, so cache keys are
stable across processes and machines.

:func:`grid_steps` turns an expanded grid into a campaign DAG — one
worker-runnable ``point@<coords>`` step per member plus a ``report``
step — executed by the parallel wavefront scheduler
(:meth:`~repro.campaign.runner.Campaign.run` with ``jobs > 1``).  Each
point evaluates its estimator suite at the member's operating point
(optionally resolving a VVD model through the checkpoint registry) and
publishes a deterministic record into the campaign's
:class:`~repro.campaign.results.ResultsStore`.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from typing import Sequence

from ..config import SimulationConfig
from ..errors import ConfigurationError, NotFoundError
from .params import get_parameter
from .results import ResultsStore, coords_key
from .scenario import Scenario, get_scenario, register_scenario

#: Grid axis name -> the :class:`Scenario` field it overrides.
AXIS_FIELDS: dict[str, str] = {
    "num_humans": "num_humans",
    "speed": "speed_range_mps",
    "speed_profile": "speed_profile",
    "trajectory": "trajectory",
    "room": "room",
    "snr_db": "snr_db",
    "num_sets": "num_sets",
    "packets_per_set": "packets_per_set",
    "seed": "seed",
    "stream_links": "stream_links",
    #: ``capacity`` aliases ``stream_links`` for capacity sweeps — the
    #: axis that answers "how many links before the SLOs break".
    "capacity": "stream_links",
    "traffic": "traffic",
    "qos": "qos",
}

#: Axes consumed by the evaluation step instead of the scenario: a
#: ``horizon`` axis trains/resolves one VVD model per horizon value
#: while grid members sharing every other coordinate share one cached
#: dataset.
EVAL_AXES = ("horizon",)


def _axis_violations(axis: str, value: object) -> list[str]:
    """Schema violations of one axis value (empty when valid).

    Scenario-field axes validate through the declared
    :class:`~repro.campaign.params.Parameter`; the ``horizon`` eval
    axis expects a non-negative int.  Runs at :class:`GridSpec`
    construction so an inconsistent grid fails before any expansion,
    registration or campaign start.
    """
    if axis in EVAL_AXES:
        if isinstance(value, bool) or not isinstance(value, int):
            return [
                f"{axis}: expected int, got "
                f"{type(value).__name__} ({value!r})"
            ]
        if value < 0:
            return [f"{axis}: must be >= 0, got {value}"]
        return []
    parameter = get_parameter(AXIS_FIELDS[axis])
    if isinstance(value, list):
        value = tuple(value)
    return parameter.violations(value)


def format_axis_value(value: object) -> str:
    """Canonical, filesystem-safe string form of one axis value.

    Floats render via ``%g`` (so ``9.5`` and ``9.50`` collapse), tuples
    (speed ranges) join with ``-``; the result feeds member names,
    coordinate keys and record file names, so it must be stable across
    processes.
    """
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, (tuple, list)):
        return "-".join(format_axis_value(v) for v in value)
    if isinstance(value, str):
        if any(c in value for c in ",=/ "):
            raise ConfigurationError(
                f"axis value {value!r} contains reserved characters"
            )
        return value
    raise ConfigurationError(
        f"cannot format axis value of type {type(value).__name__}"
    )


@dataclass(frozen=True)
class GridPoint:
    """One expanded grid cell: a derived scenario plus its coordinates."""

    #: The derived, registrable scenario of this cell.
    scenario: Scenario
    #: ``(axis, formatted value)`` pairs in declared axis order.
    coords: tuple[tuple[str, str], ...]
    #: VVD prediction horizon when the grid has a ``horizon`` axis.
    horizon: int | None = None

    @property
    def label(self) -> str:
        """Canonical ``axis=value,...`` key of this cell."""
        return coords_key(self.coords)


@dataclass(frozen=True)
class GridSpec:
    """A declarative parametric grid over a base scenario.

    ``axes`` maps axis names (see :data:`AXIS_FIELDS` plus
    :data:`EVAL_AXES`) to value tuples; expansion is the cartesian
    product in declared order, so member ordering — and every key
    derived from it — is deterministic.
    """

    #: Registry name (kebab-case by convention).
    name: str
    #: One-line summary printed by ``repro list-scenarios``.
    description: str
    #: Base scenario name every member derives from.
    base: str = "reduced"
    #: Ordered ``(axis, (value, ...))`` pairs (a dict is accepted and
    #: normalized, preserving insertion order).
    axes: tuple = ()
    #: Free-form labels shown by ``repro list-scenarios``.
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.axes, dict):
            normalized = tuple(
                (name, tuple(values))
                for name, values in self.axes.items()
            )
        else:
            normalized = tuple(
                (name, tuple(values)) for name, values in self.axes
            )
        object.__setattr__(self, "axes", normalized)
        if not normalized:
            raise ConfigurationError(
                f"grid {self.name!r} declares no axes"
            )
        seen = set()
        for axis, values in normalized:
            if axis not in AXIS_FIELDS and axis not in EVAL_AXES:
                raise ConfigurationError(
                    f"unknown grid axis {axis!r}; expected one of "
                    f"{sorted((*AXIS_FIELDS, *EVAL_AXES))}"
                )
            if axis in seen:
                raise ConfigurationError(
                    f"grid {self.name!r} repeats axis {axis!r}"
                )
            seen.add(axis)
            if not values:
                raise ConfigurationError(
                    f"grid axis {axis!r} has no values"
                )
        violations: list[str] = []
        for axis, values in normalized:
            for value in values:
                violations.extend(_axis_violations(axis, value))
        if violations:
            raise ConfigurationError(
                f"grid {self.name!r} axis values failed validation "
                f"with {len(violations)} violation(s): "
                + "; ".join(violations)
            )

    @property
    def axis_names(self) -> tuple[str, ...]:
        """Axis names in declared order."""
        return tuple(axis for axis, _ in self.axes)

    @property
    def num_points(self) -> int:
        """Number of cells the grid expands to."""
        count = 1
        for _, values in self.axes:
            count *= len(values)
        return count

    def member_name(self, coords: Sequence[tuple[str, str]]) -> str:
        """Registry name of the member at ``coords``.

        A pure function of the grid name and the formatted coordinates
        (``<grid>/<axis>=<value>,...``), hence stable across processes.
        """
        return f"{self.name}/{coords_key(coords)}"

    def expand(self) -> list[GridPoint]:
        """Every grid cell as a :class:`GridPoint`, in declared order.

        Each member scenario is the base scenario with the cell's axis
        overrides applied via :meth:`Scenario.variant` (the scenario
        language's delta-copy, so an inconsistent cell fails here with
        its full violation list, before any campaign starts).
        """
        base = get_scenario(self.base)
        names = self.axis_names
        points: list[GridPoint] = []
        for combo in itertools.product(
            *[values for _, values in self.axes]
        ):
            coords = tuple(
                (axis, format_axis_value(value))
                for axis, value in zip(names, combo)
            )
            overrides: dict[str, object] = {}
            horizon: int | None = None
            for axis, value in zip(names, combo):
                if axis == "horizon":
                    horizon = int(value)
                    continue
                field = AXIS_FIELDS[axis]
                if field == "speed_range_mps":
                    low, high = value
                    value = (float(low), float(high))
                overrides[field] = value
            member = base.variant(
                name=self.member_name(coords),
                description=(
                    f"grid {self.name!r} member ({coords_key(coords)})"
                ),
                tags=tuple(
                    dict.fromkeys((*base.tags, "grid", self.name))
                ),
                **overrides,
            )
            points.append(
                GridPoint(scenario=member, coords=coords, horizon=horizon)
            )
        return points

    def register_members(self) -> list[Scenario]:
        """Register every member in the scenario registry.

        Members re-register idempotently (their definitions are pure
        functions of the spec), which is what lets ``repro
        list-scenarios`` show them and every existing step builder
        accept them by name.
        """
        return [
            register_scenario(point.scenario, replace=True)
            for point in self.expand()
        ]


_GRID_REGISTRY: dict[str, GridSpec] = {}


def register_grid(spec: GridSpec, replace: bool = False) -> GridSpec:
    """Add a grid spec to the registry (``replace=True`` to overwrite).

    Registration eagerly registers the grid's member scenarios too, so
    a freshly registered grid is immediately visible end to end.
    """
    if not replace and spec.name in _GRID_REGISTRY:
        raise ConfigurationError(
            f"grid {spec.name!r} already registered; pass replace=True "
            "to overwrite"
        )
    _GRID_REGISTRY[spec.name] = spec
    spec.register_members()
    return spec


def get_grid(name: str) -> GridSpec:
    """Look a grid up by name; raises listing the known names."""
    spec = _GRID_REGISTRY.get(name)
    if spec is None:
        raise NotFoundError(
            f"unknown grid {name!r}; known grids: "
            f"{', '.join(sorted(_GRID_REGISTRY))}"
        )
    return spec


def list_grids() -> list[GridSpec]:
    """Every registered grid, sorted by name."""
    return [_GRID_REGISTRY[name] for name in sorted(_GRID_REGISTRY)]


# -- the per-point evaluation task (process-pool entry point) -----------
@dataclass(frozen=True)
class GridPointTask:
    """Picklable work order of one grid point.

    Everything the worker needs is plain data — the resolved
    configuration, the suite name and the cache/registry/store roots —
    so the task runs identically inline (``--jobs 1``) and in a pool
    worker (``--jobs N``).
    """

    #: Canonical ``axis=value,...`` label (also the step-id suffix).
    label: str
    #: ``(axis, formatted value)`` coordinate pairs.
    coords: tuple[tuple[str, str], ...]
    #: Member scenario name (recorded for traceability).
    scenario: str
    #: The member's resolved simulation configuration.
    config: SimulationConfig
    #: Estimator suite evaluated at the member's operating point.
    suite: str
    #: Dataset cache root (workers build their own cache instance).
    cache_root: str
    #: Results-store directory records are published into.
    results_dir: str
    #: VVD prediction horizon; ``None`` = no model resolution.
    horizon: int | None = None
    #: Model checkpoint registry root (required when ``horizon`` set).
    model_root: str | None = None
    #: VVD weight-init / shuffle seed.
    vvd_seed: int = 7
    #: Dataset processing engine.
    engine: str = "batch"
    #: Per-point dataset-generation pool size (``--workers``).  Note
    #: that this nests under ``--jobs``: N jobs x M workers processes
    #: run at peak when the grid is cache-cold.
    workers: int | None = None


def run_grid_point_task(task: GridPointTask) -> str:
    """Evaluate one grid point; returns the step's JSON payload.

    Resolves the member's measurement sets through the content-addressed
    dataset cache, evaluates the estimator suite at the member's
    operating point and — when the grid carries a ``horizon`` axis or
    ``--vvd`` was requested — resolves a VVD model through the
    checkpoint registry (training only on a registry miss).  The
    deterministic science (PER/CER per technique, model key and
    validation loss) is published as the point's
    :class:`~repro.campaign.results.ResultsStore` record; cache
    provenance (sets generated, models trained — properties of *this
    run*, not of the grid point) rides along in the step payload only,
    where the CLI sums it for the ``100% cache hits`` sentinels.
    """
    from ..obs import trace

    with trace.span(
        "grid.point", point=coords_key(task.coords)
    ) as point_span:
        return _run_grid_point(task, point_span)


def _run_grid_point(task: GridPointTask, point_span) -> str:
    """The body of :func:`run_grid_point_task` inside its span."""
    from ..dataset.sets import rotating_set_combinations
    from ..experiments.snr_sweep import evaluate_snr_point
    from .cache import DatasetCache
    from .models import ModelCheckpointRegistry

    cache = DatasetCache(task.cache_root)
    sets = cache.load_or_generate(
        task.config, engine=task.engine, workers=task.workers
    )
    techniques = evaluate_snr_point(
        task.config, suite=task.suite, sets=sets
    )
    record: dict = {
        "scenario": task.scenario,
        "suite": task.suite,
        "snr_db": task.config.channel.snr_db,
        "per": {
            name: result.per for name, result in techniques.items()
        },
        "cer": {
            name: result.cer for name, result in techniques.items()
        },
    }
    models_trained = 0
    if task.horizon is not None:
        if task.model_root is None:
            raise ConfigurationError(
                "grid points with a VVD horizon need a model registry "
                "root"
            )
        registry = ModelCheckpointRegistry(task.model_root)
        combination = rotating_set_combinations(
            task.config.dataset.num_sets
        )[0]
        training = [sets[i] for i in combination.training_indices()]
        validation = [sets[combination.validation_index]]
        trained = registry.load_or_train(
            training,
            validation,
            task.config,
            horizon_frames=task.horizon,
            seed=task.vvd_seed,
            engine=task.engine,
        )
        models_trained = registry.stats.models_trained
        record["vvd"] = {
            "key": registry.key_for(
                task.config,
                training,
                validation,
                horizon_frames=task.horizon,
                seed=task.vvd_seed,
                engine=task.engine,
            ),
            "horizon": task.horizon,
            "seed": task.vvd_seed,
            "best_epoch": trained.history.best_epoch,
            "best_val_loss": trained.history.best_val_loss,
        }
    ResultsStore(task.results_dir).put(task.coords, record)
    point_span.set("sets_generated", cache.stats.sets_generated)
    point_span.set("models_trained", models_trained)
    return json.dumps(
        {
            "record": record,
            "provenance": {
                "sets_generated": cache.stats.sets_generated,
                "models_trained": models_trained,
            },
        },
        sort_keys=True,
    )


# -- campaign step builder ----------------------------------------------
def grid_steps(
    spec: GridSpec,
    points: Sequence[GridPoint] | None = None,
    suite: str = "quick",
    vvd: bool = False,
    horizon: int = 0,
    vvd_seed: int = 7,
) -> list:
    """Steps of a grid campaign: one worker-runnable step per member.

    Every ``point@<coords>`` step is independent (the wavefront
    scheduler runs them concurrently under ``--jobs N``); the final
    ``report`` step assembles the aggregated
    :class:`~repro.campaign.results.ResultsStore` (``results.json``)
    and renders the cross-scenario summary table purely from the stored
    records.  ``vvd=True`` (or a ``horizon`` grid axis) resolves one
    VVD model per point through the campaign's checkpoint registry.
    """
    from ..experiments.reporting import format_grid_table
    from .runner import CampaignContext, CampaignStep

    if points is None:
        points = spec.expand()
    steps: list[CampaignStep] = []
    point_ids: list[str] = []

    def _task_for(
        ctx: CampaignContext, point: GridPoint
    ) -> GridPointTask:
        point_horizon = point.horizon
        if point_horizon is None and vvd:
            point_horizon = horizon
        model_root = None
        if point_horizon is not None:
            if ctx.checkpoints is None:
                raise ConfigurationError(
                    "grid steps resolving VVD models need a "
                    "CampaignContext with a checkpoints= model registry"
                )
            model_root = str(ctx.checkpoints.root)
        return GridPointTask(
            label=point.label,
            coords=point.coords,
            scenario=point.scenario.name,
            config=point.scenario.resolve(),
            suite=suite,
            cache_root=str(ctx.cache.root),
            results_dir=str(ctx.directory / "results"),
            horizon=point_horizon,
            model_root=model_root,
            vvd_seed=vvd_seed,
            workers=ctx.workers,
        )

    for point in points:

        def _run_point(ctx: CampaignContext, point=point) -> str:
            return run_grid_point_task(_task_for(ctx, point))

        def _point_worker(ctx: CampaignContext, point=point):
            return run_grid_point_task, {"task": _task_for(ctx, point)}

        step_id = f"point@{point.label}"
        steps.append(
            CampaignStep(
                step_id=step_id,
                description=(
                    f"evaluate grid member {point.scenario.name}"
                ),
                run=_run_point,
                worker=_point_worker,
            )
        )
        point_ids.append(step_id)

    def _run_report(ctx: CampaignContext) -> str:
        store = ResultsStore(ctx.directory / "results")
        rows = []
        missing: list[str] = []
        for point in points:
            if f"point@{point.label}" in ctx.quarantined:
                missing.append(point.label)
                continue
            try:
                record = store.get(point.coords)
            except ConfigurationError:
                missing.append(point.label)
                continue
            metrics = dict(
                sorted(
                    (f"per:{name}", value)
                    for name, value in record["per"].items()
                )
            )
            if "vvd" in record:
                metrics["vvd_val_mse"] = record["vvd"]["best_val_loss"]
            rows.append((dict(point.coords), metrics))
        if not rows:
            raise ConfigurationError(
                "grid report has no surviving points: every grid member "
                "was quarantined or left no record"
            )
        store.write_aggregate()
        table = format_grid_table(
            f"Grid campaign {spec.name!r} — {len(rows)} scenario(s), "
            f"suite {suite!r}",
            spec.axis_names,
            rows,
        )
        if missing:
            table += (
                f"\n{len(missing)} point(s) quarantined: "
                + ", ".join(missing)
            )
        return table

    steps.append(
        CampaignStep(
            step_id="report",
            description="aggregate results + cross-scenario summary",
            run=_run_report,
            depends_on=tuple(point_ids),
            run_on_partial=True,
        )
    )
    return steps


def _register_builtins() -> None:
    """Populate the grid registry with the built-in presets."""
    builtins = [
        GridSpec(
            name="mobility-snr",
            description=(
                "Crossing-walker showcase grid: crowd density x "
                "walking speed x SNR (8 derived scenarios)"
            ),
            base="multi-human-crossing",
            axes=(
                ("num_humans", (1, 2)),
                ("speed", ((0.15, 0.35), (1.0, 1.6))),
                ("snr_db", (3.0, 9.5)),
            ),
            tags=("showcase",),
        ),
        GridSpec(
            name="smoke-grid",
            description=(
                "CI grid smoke: seconds-scale members over SNR x seed "
                "x walking speed (12 derived scenarios)"
            ),
            base="smoke",
            axes=(
                ("snr_db", (6.0, 9.5, 12.0)),
                ("seed", (0, 1)),
                ("speed", ((0.4, 0.8), (1.0, 1.6))),
            ),
            tags=("ci",),
        ),
        GridSpec(
            name="capacity-smoke",
            description=(
                "Nightly capacity smoke: link count x traffic model "
                "against the triple QoS mix (6 modeled capacity points)"
            ),
            base="stream-smoke",
            axes=(
                ("capacity", (16, 64, 128)),
                ("traffic", ("periodic:10", "mixed")),
                ("qos", ("triple",)),
            ),
            tags=("ci", "capacity"),
        ),
    ]
    for spec in builtins:
        register_grid(spec, replace=True)


_register_builtins()
