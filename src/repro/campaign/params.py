"""Validated scenario language: parameters, conditions, specs, sampling.

The scenario registry used to be plain dataclasses whose invalid
combinations (a speed range outside the mobility model's bounds, an SNR
grid outside the trained range, grouped walkers without a group) failed
first-error-only, sometimes only deep inside the dataset generator.
This module adopts the cinnamon ``Parameter``/``Configuration`` idiom
(see SNIPPETS.md): every scenario hyper-parameter is wrapped in a
:class:`Parameter` carrying its type hint, allowed range/choices,
description and tags; a :class:`ScenarioSpec` bundles the parameters
with declared cross-parameter :class:`Condition` objects and validates
at construction with a *full* :class:`ValidationReport` — every
violation listed, not just the first.

On top of the declarative schema the module provides:

- :func:`spec_from_scenario` / :meth:`ScenarioSpec.to_scenario` — the
  bridge to the registry's :class:`~repro.campaign.scenario.Scenario`
  dataclass (which delegates its ``__post_init__`` validation here).
- delta-copy variants (:meth:`ScenarioSpec.delta`), replacing the
  ad-hoc ``dataclasses.replace`` chains grid expansion used to build.
- TOML/JSON scenario loading (:func:`load_scenario_file`,
  ``repro scenarios load file.toml``), including custom room-geometry
  tables validated through :data:`ROOM_PARAMETERS`.
- seeded scenario sampling (:func:`sample_scenario_specs`,
  ``repro scenarios sample --seed N --count K``): uniformly valid specs
  drawn from the declared ranges — the generator behind the
  property-based fuzz suite and future capacity grids.  Sampling uses
  :class:`random.Random` so the draw sequence is process- and
  platform-stable for a given seed.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

from ..config import SPEED_PROFILES, TRAJECTORY_PRESETS
from ..errors import ConfigurationError

#: Walking-speed bounds of the mobility model in m/s; scenario speed
#: ranges must lie inside (0.05 m/s shuffle .. 3 m/s jog).
MOBILITY_SPEED_BOUNDS_MPS = (0.05, 3.0)

#: SNR bounds in dB the PHY/vision stack is exercised (and the CNN
#: trained) over; operating points and sweep grids must lie inside.
SNR_BOUNDS_DB = (-3.0, 18.0)

#: Simultaneous-walker bounds (the multi-body channel renders up to 6).
NUM_HUMANS_BOUNDS = (1, 6)

#: Measurement-set count bounds (>= 3 for train/val/test rotation).
NUM_SETS_BOUNDS = (3, 60)

#: Packets-per-set bounds (paper scale is 1514).
PACKETS_PER_SET_BOUNDS = (2, 2000)

#: Campaign-seed bounds.
SEED_BOUNDS = (0, 2**32 - 1)

#: Concurrent-stream-link bounds.  The heap-based discrete-event
#: scheduler keeps replay and capacity memory O(links), so capacity
#: grids sweep into the thousands.
STREAM_LINKS_BOUNDS = (1, 10_000)

_MISSING = object()


def _type_name(type_hint: type | tuple[type, ...]) -> str:
    """Readable name of a parameter's type hint."""
    if isinstance(type_hint, tuple):
        return "/".join(t.__name__ for t in type_hint)
    return type_hint.__name__


def _type_ok(value: object, type_hint: type | tuple[type, ...]) -> bool:
    """isinstance with the int/bool pitfall closed (bool is not an int)."""
    hints = type_hint if isinstance(type_hint, tuple) else (type_hint,)
    if isinstance(value, bool):
        return bool in hints
    if isinstance(value, int) and (int in hints or float in hints):
        return True
    return isinstance(value, hints)


@dataclass(frozen=True)
class Parameter:
    """One declared scenario hyper-parameter (cinnamon idiom).

    Wraps the value schema — type hint, allowed numeric ``bounds``
    (inclusive, applied elementwise to tuple values), discrete
    ``choices`` (a tuple or a zero-arg callable for registries that
    grow at runtime, like room presets), tuple ``length`` limits and an
    optional free-form ``allowed`` predicate — plus the description and
    tags the catalog renders.  :meth:`violations` returns *every*
    problem with a candidate value, never just the first.
    """

    #: Unique identifier; matches the ``Scenario`` field it feeds.
    name: str
    #: Python type(s) a value must have.
    type_hint: type | tuple[type, ...]
    #: One-line human description (rendered by ``scenarios describe``).
    description: str
    #: Default used when a spec omits the parameter.
    default: object = _MISSING
    #: Discrete allowed values, or a callable returning them.
    choices: tuple | Callable[[], tuple] | None = None
    #: Inclusive numeric range; elementwise for tuple values.
    bounds: tuple[float, float] | None = None
    #: ``(min, max)`` entry-count limits for tuple values.
    length: tuple[int, int] | None = None
    #: Required type of each tuple entry.
    element_type: type | tuple[type, ...] | None = None
    #: ``True`` if ``None`` is an allowed value.
    optional: bool = False
    #: Noun used in messages (defaults to the parameter name).
    label: str | None = None
    #: Extra predicate: returns a violation string or ``None``.
    allowed: Callable[[object], str | None] | None = None
    #: Free-form labels for catalog search/grouping.
    tags: tuple[str, ...] = ()

    @property
    def required(self) -> bool:
        """Whether a spec must provide this parameter explicitly."""
        return self.default is _MISSING

    def resolved_choices(self) -> tuple | None:
        """The discrete allowed values, resolving callable registries."""
        if callable(self.choices):
            return tuple(self.choices())
        return self.choices

    def violations(self, value: object) -> list[str]:
        """Every problem with ``value``, as ``name: ...`` report lines."""
        noun = self.label or self.name
        if value is None:
            if self.optional:
                return []
            return [f"{self.name}: value is required, got None"]
        if not _type_ok(value, self.type_hint):
            return [
                f"{self.name}: expected {_type_name(self.type_hint)}, "
                f"got {type(value).__name__} ({value!r})"
            ]
        problems: list[str] = []
        choices = self.resolved_choices()
        if choices is not None and value not in choices:
            problems.append(
                f"{self.name}: unknown {noun} {value!r}; expected one "
                f"of {sorted(choices)}"
            )
        elements = (
            list(value) if isinstance(value, tuple) else [value]
        )
        if isinstance(value, tuple):
            if self.length is not None:
                lo, hi = self.length
                if not lo <= len(value) <= hi:
                    problems.append(
                        f"{self.name}: needs between {lo} and {hi} "
                        f"entries, got {len(value)}"
                    )
            if self.element_type is not None:
                for k, item in enumerate(elements):
                    if not _type_ok(item, self.element_type):
                        problems.append(
                            f"{self.name}[{k}]: expected "
                            f"{_type_name(self.element_type)}, got "
                            f"{type(item).__name__} ({item!r})"
                        )
                elements = [
                    item
                    for item in elements
                    if _type_ok(item, self.element_type)
                ]
        if self.bounds is not None:
            lo, hi = self.bounds
            for item in elements:
                if isinstance(item, (int, float)) and not (
                    lo <= item <= hi
                ):
                    problems.append(
                        f"{self.name}: {item!r} outside the allowed "
                        f"{noun} range [{lo}, {hi}]"
                    )
        if self.allowed is not None and not problems:
            extra = self.allowed(value)
            if extra is not None:
                problems.append(f"{self.name}: {extra}")
        return problems


@dataclass(frozen=True)
class Condition:
    """One declared cross-parameter consistency rule.

    Conditions are evaluated in declared order, and only once every
    parameter in ``requires`` has passed its own checks — a type-broken
    parameter never also produces a cascade of spurious condition
    violations.  ``severity="warning"`` conditions are reported but do
    not fail validation (used for legal-but-unusual combinations).
    """

    #: Stable kebab-case identifier of the rule.
    name: str
    #: Human sentence describing the requirement.
    description: str
    #: Parameters the predicate reads.
    requires: tuple[str, ...]
    #: Returns ``True`` when the combination is consistent.
    check: Callable[[Mapping[str, object]], bool]
    #: ``"error"`` fails validation; ``"warning"`` is advisory.
    severity: str = "error"

    def message(self, values: Mapping[str, object]) -> str:
        """The report line emitted when the condition is violated."""
        context = ", ".join(
            f"{name}={values.get(name)!r}" for name in self.requires
        )
        return f"{self.name}: {self.description} (got {context})"


@dataclass(frozen=True)
class ValidationReport:
    """Aggregated outcome of one spec validation.

    Collects *every* parameter and condition violation — construction
    sites raise one :class:`~repro.errors.ConfigurationError` listing
    them all, instead of the first-failure behaviour the plain
    dataclasses had.
    """

    #: What was validated (used in messages), e.g. ``scenario 'tiny'``.
    subject: str
    #: Hard violations, in parameter-then-condition declared order.
    errors: tuple[str, ...] = ()
    #: Advisory findings (legal but unusual combinations).
    warnings: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when no error-severity violation was found."""
        return not self.errors

    def raise_for_errors(self) -> None:
        """Raise a single error listing every violation (if any)."""
        if not self.errors:
            return
        raise ConfigurationError(
            f"{self.subject} failed validation with "
            f"{len(self.errors)} violation(s): "
            + "; ".join(self.errors)
        )

    def summary(self) -> str:
        """One-line ``ok``/``N error(s), M warning(s)`` rendering."""
        if self.ok and not self.warnings:
            return f"{self.subject}: ok"
        parts = []
        if self.errors:
            parts.append(f"{len(self.errors)} error(s)")
        if self.warnings:
            parts.append(f"{len(self.warnings)} warning(s)")
        return f"{self.subject}: " + ", ".join(parts)


def _room_choices() -> tuple:
    """Registered room-preset names (resolved late: TOML can add rooms)."""
    from .scenario import ROOM_PRESETS

    return tuple(ROOM_PRESETS)


def _base_choices() -> tuple:
    """Registered base-preset names."""
    from .scenario import _BASE_PRESETS

    return tuple(_BASE_PRESETS)


def _qos_choices() -> tuple:
    """Registered QoS class-mix names."""
    from ..stream.traffic import QOS_MIXES

    return tuple(sorted(QOS_MIXES))


def _traffic_violation(value: object) -> str | None:
    """Validate an arrival-process spec string (``mixed`` allowed)."""
    from ..stream.traffic import validate_traffic

    try:
        validate_traffic(str(value))
    except ConfigurationError as exc:
        return str(exc)
    return None


#: The declared scenario schema, in definition order.  Mirrors the
#: fields of :class:`~repro.campaign.scenario.Scenario`; that dataclass
#: delegates its construction-time validation here.
SCENARIO_PARAMETERS: tuple[Parameter, ...] = (
    Parameter(
        name="name",
        type_hint=str,
        description="Registry name (kebab-case by convention)",
        allowed=lambda v: "must not be empty" if not v else None,
        tags=("identity",),
    ),
    Parameter(
        name="description",
        type_hint=str,
        description="One-line summary printed by `repro list-scenarios`",
        tags=("identity",),
    ),
    Parameter(
        name="base",
        type_hint=str,
        description="Base dimension preset the scenario derives from",
        default="reduced",
        choices=_base_choices,
        label="base preset",
        tags=("dimensions",),
    ),
    Parameter(
        name="room",
        type_hint=str,
        description="Room-geometry preset key (see ROOM_PRESETS)",
        default="paper-lab",
        choices=_room_choices,
        label="room preset",
        tags=("environment",),
    ),
    Parameter(
        name="trajectory",
        type_hint=str,
        description="Human-trajectory preset walked by every set",
        default="random-waypoint",
        choices=TRAJECTORY_PRESETS,
        label="trajectory preset",
        tags=("mobility",),
    ),
    Parameter(
        name="num_humans",
        type_hint=int,
        description="Simultaneous humans walking the movement area",
        default=1,
        bounds=NUM_HUMANS_BOUNDS,
        tags=("mobility",),
    ),
    Parameter(
        name="speed_range_mps",
        type_hint=tuple,
        description="Walking-speed override (min, max) in m/s",
        default=None,
        optional=True,
        length=(2, 2),
        element_type=float,
        bounds=MOBILITY_SPEED_BOUNDS_MPS,
        label="walking speed",
        tags=("mobility",),
    ),
    Parameter(
        name="speed_profile",
        type_hint=str,
        description=(
            "Per-walker speed assignment: every walker draws from the "
            "full range ('uniform') or from its own disjoint band "
            "('heterogeneous')"
        ),
        default="uniform",
        choices=SPEED_PROFILES,
        label="speed profile",
        tags=("mobility",),
    ),
    Parameter(
        name="snr_db",
        type_hint=float,
        description="Operating-point SNR override in dB",
        default=None,
        optional=True,
        bounds=SNR_BOUNDS_DB,
        label="SNR",
        tags=("channel",),
    ),
    Parameter(
        name="snr_grid_db",
        type_hint=tuple,
        description="SNR grid in dB evaluated by `repro sweep`",
        default=(3.0, 6.0, 9.5, 12.0),
        length=(1, 16),
        element_type=float,
        bounds=SNR_BOUNDS_DB,
        label="SNR",
        tags=("channel",),
    ),
    Parameter(
        name="num_sets",
        type_hint=int,
        description="Measurement-set count override",
        default=None,
        optional=True,
        bounds=NUM_SETS_BOUNDS,
        tags=("dimensions",),
    ),
    Parameter(
        name="packets_per_set",
        type_hint=int,
        description="Packets-per-set override",
        default=None,
        optional=True,
        bounds=PACKETS_PER_SET_BOUNDS,
        tags=("dimensions",),
    ),
    Parameter(
        name="seed",
        type_hint=int,
        description="Campaign seed override",
        default=None,
        optional=True,
        bounds=SEED_BOUNDS,
        tags=("dimensions",),
    ),
    Parameter(
        name="stream_links",
        type_hint=int,
        description="Concurrent links `repro stream` replays by default",
        default=4,
        bounds=STREAM_LINKS_BOUNDS,
        tags=("stream",),
    ),
    Parameter(
        name="traffic",
        type_hint=str,
        description=(
            "Arrival-process model for capacity runs: periodic[:R], "
            "poisson:R, onoff:R:ON:OFF, diurnal:R:P[:D], or 'mixed'"
        ),
        default="periodic",
        label="traffic spec",
        allowed=_traffic_violation,
        tags=("stream", "traffic"),
    ),
    Parameter(
        name="qos",
        type_hint=str,
        description="QoS class mix capacity runs schedule against",
        default="uniform",
        choices=_qos_choices,
        label="QoS mix",
        tags=("stream", "traffic"),
    ),
    Parameter(
        name="tags",
        type_hint=tuple,
        description="Free-form labels shown by `repro list-scenarios`",
        default=(),
        length=(0, 16),
        element_type=str,
        tags=("identity",),
    ),
)

_PARAMETER_INDEX = {p.name: p for p in SCENARIO_PARAMETERS}


def get_parameter(name: str) -> Parameter:
    """The declared scenario :class:`Parameter` called ``name``."""
    parameter = _PARAMETER_INDEX.get(name)
    if parameter is None:
        raise ConfigurationError(
            f"unknown scenario parameter {name!r}; known parameters: "
            f"{', '.join(p.name for p in SCENARIO_PARAMETERS)}"
        )
    return parameter


def _speed_range_ordered(values: Mapping[str, object]) -> bool:
    speed = values.get("speed_range_mps")
    if speed is None:
        return True
    low, high = speed
    return low <= high


def _grouped_has_company(values: Mapping[str, object]) -> bool:
    if values.get("trajectory") != "grouped":
        return True
    return values.get("num_humans", 1) >= 2


def _crossing_not_solo(values: Mapping[str, object]) -> bool:
    if values.get("trajectory") != "crossing":
        return True
    return values.get("num_humans", 1) >= 2


def _snr_grid_sorted_unique(values: Mapping[str, object]) -> bool:
    grid = values.get("snr_grid_db") or ()
    return all(a < b for a, b in zip(grid, grid[1:]))


def _stream_links_present(values: Mapping[str, object]) -> bool:
    links = values.get("stream_links")
    return links is None or links >= 1


#: The declared cross-parameter conditions, in evaluation order.
SCENARIO_CONDITIONS: tuple[Condition, ...] = (
    Condition(
        name="speed-range-ordered",
        description="speed_range_mps min must be <= max",
        requires=("speed_range_mps",),
        check=_speed_range_ordered,
    ),
    Condition(
        name="grouped-needs-company",
        description=(
            "grouped trajectories require num_humans >= 2 (a group is "
            "at least a leader and one follower)"
        ),
        requires=("trajectory", "num_humans"),
        check=_grouped_has_company,
    ),
    Condition(
        name="solo-crossing",
        description=(
            "crossing with a single walker is a sparse-blockage "
            "streaming workload; blockage-density studies want "
            "num_humans >= 2"
        ),
        requires=("trajectory", "num_humans"),
        check=_crossing_not_solo,
        severity="warning",
    ),
    Condition(
        name="snr-grid-sorted-unique",
        description="snr_grid_db must be strictly ascending (no dupes)",
        requires=("snr_grid_db",),
        check=_snr_grid_sorted_unique,
    ),
    Condition(
        name="stream-links-positive",
        description="stream scenarios need at least one link",
        requires=("stream_links",),
        check=_stream_links_present,
    ),
)


def _normalize(value: object) -> object:
    """Lists (e.g. from TOML/JSON) become tuples, recursively."""
    if isinstance(value, list):
        return tuple(_normalize(item) for item in value)
    if isinstance(value, tuple):
        return tuple(_normalize(item) for item in value)
    return value


@dataclass(frozen=True)
class ScenarioSpec:
    """A validated-data scenario: declared parameter values + schema.

    The configuration object of the scenario language.  ``values``
    holds only the explicitly-set parameters; :meth:`effective` merges
    the schema defaults in.  Specs are plain data — they load from
    TOML/JSON (:func:`load_scenario_file`), delta-copy into variants
    (:meth:`delta`), sample from the declared ranges
    (:func:`sample_scenario_specs`) and materialize as registry
    :class:`~repro.campaign.scenario.Scenario` objects
    (:meth:`to_scenario`) with byte-identical resolution semantics.
    """

    #: Explicitly-set ``parameter -> value`` pairs (normalized tuples).
    values: tuple[tuple[str, object], ...] = ()

    @classmethod
    def from_mapping(cls, values: Mapping[str, object]) -> "ScenarioSpec":
        """Build a spec from a dict (TOML table, JSON object, kwargs)."""
        return cls(
            values=tuple(
                (name, _normalize(value))
                for name, value in values.items()
            )
        )

    def effective(self) -> dict[str, object]:
        """Declared defaults overlaid with the explicitly-set values."""
        merged: dict[str, object] = {
            p.name: p.default
            for p in SCENARIO_PARAMETERS
            if p.default is not _MISSING
        }
        merged.update(dict(self.values))
        return merged

    @property
    def subject(self) -> str:
        """Message noun of this spec (uses the name when present)."""
        name = dict(self.values).get("name")
        return f"scenario {name!r}" if name else "scenario spec"

    def validate(self) -> ValidationReport:
        """Check every parameter, then every condition, aggregating all.

        Parameter checks run in schema order; conditions run in
        declared order afterwards and are skipped when any parameter
        they ``require`` already failed (or was unknown), so one root
        cause yields one violation.  Unknown keys are errors.
        """
        explicit = dict(self.values)
        merged = self.effective()
        errors: list[str] = []
        warnings: list[str] = []
        failed: set[str] = set()
        for key in explicit:
            if key not in _PARAMETER_INDEX:
                errors.append(
                    f"{key}: unknown parameter; known parameters: "
                    f"{', '.join(p.name for p in SCENARIO_PARAMETERS)}"
                )
                failed.add(key)
        for parameter in SCENARIO_PARAMETERS:
            if parameter.required and parameter.name not in explicit:
                errors.append(
                    f"{parameter.name}: value is required"
                )
                failed.add(parameter.name)
                continue
            problems = parameter.violations(merged[parameter.name])
            if problems:
                errors.extend(problems)
                failed.add(parameter.name)
        for condition in SCENARIO_CONDITIONS:
            if any(name in failed for name in condition.requires):
                continue
            if condition.check(merged):
                continue
            line = condition.message(merged)
            if condition.severity == "warning":
                warnings.append(line)
            else:
                errors.append(line)
        return ValidationReport(
            subject=self.subject,
            errors=tuple(errors),
            warnings=tuple(warnings),
        )

    def delta(self, **changes: object) -> "ScenarioSpec":
        """Delta-copy: this spec with ``changes`` overlaid (cinnamon).

        Replaces the ad-hoc ``dataclasses.replace`` chains: the copy
        revalidates wherever it is materialized, so an inconsistent
        variant fails at construction with the full violation list.
        """
        merged = dict(self.values)
        for name, value in changes.items():
            merged[name] = _normalize(value)
        return ScenarioSpec.from_mapping(merged)

    def to_scenario(self):
        """Materialize the registry :class:`Scenario` (validates)."""
        from .scenario import Scenario

        return Scenario(**self.effective())

    def to_dict(self) -> dict[str, object]:
        """JSON-ready dict of the *effective* parameter values."""
        effective = self.effective()
        return {
            name: list(value) if isinstance(value, tuple) else value
            for name, value in effective.items()
        }

    def canonical_json(self) -> str:
        """Canonical one-line JSON (sorted keys) — diff/fuzz stable."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )


def spec_from_scenario(scenario) -> ScenarioSpec:
    """The :class:`ScenarioSpec` equivalent of a ``Scenario`` dataclass."""
    import dataclasses

    return ScenarioSpec.from_mapping(
        {
            f.name: getattr(scenario, f.name)
            for f in dataclasses.fields(scenario)
        }
    )


def validate_scenario_values(
    values: Mapping[str, object]
) -> ValidationReport:
    """Validate a plain mapping against the scenario schema."""
    return ScenarioSpec.from_mapping(values).validate()


def describe_parameters() -> str:
    """Human-readable catalog of the declared schema + conditions."""
    lines = ["scenario parameters:"]
    for p in SCENARIO_PARAMETERS:
        constraint = []
        choices = p.resolved_choices()
        if choices is not None:
            constraint.append(f"choices={sorted(choices)}")
        if p.bounds is not None:
            constraint.append(f"range=[{p.bounds[0]}, {p.bounds[1]}]")
        if p.optional:
            constraint.append("optional")
        if p.default is not _MISSING and p.default is not None:
            constraint.append(f"default={p.default!r}")
        suffix = f" ({'; '.join(constraint)})" if constraint else ""
        lines.append(
            f"  {p.name:<16} {_type_name(p.type_hint):<7} "
            f"{p.description}{suffix}"
        )
    lines.append("conditions:")
    for c in SCENARIO_CONDITIONS:
        severity = "" if c.severity == "error" else f" [{c.severity}]"
        lines.append(f"  {c.name:<24} {c.description}{severity}")
    return "\n".join(lines)


# -- room geometry schema (custom rooms from TOML/JSON files) ------------
def _xy_area_in_room(values: Mapping[str, object]) -> bool:
    area = values.get("movement_area")
    x0, y0, x1, y1 = area
    return (
        0 <= x0 < x1 <= values["width_m"]
        and 0 <= y0 < y1 <= values["depth_m"]
    )


def _devices_in_room(values: Mapping[str, object]) -> bool:
    for key in ("tx_position", "rx_position"):
        x, y, z = values[key]
        if not (
            0 <= x <= values["width_m"]
            and 0 <= y <= values["depth_m"]
            and 0 <= z <= values["height_m"]
        ):
            return False
    return True


#: The declared room-geometry schema used by TOML ``[rooms.<name>]``
#: tables; mirrors :class:`~repro.config.RoomConfig`.
ROOM_PARAMETERS: tuple[Parameter, ...] = (
    Parameter(
        name="width_m",
        type_hint=float,
        description="Room width in metres",
        bounds=(1.0, 50.0),
    ),
    Parameter(
        name="depth_m",
        type_hint=float,
        description="Room depth in metres",
        bounds=(1.0, 50.0),
    ),
    Parameter(
        name="height_m",
        type_hint=float,
        description="Room height in metres",
        default=3.0,
        bounds=(2.0, 10.0),
    ),
    Parameter(
        name="tx_position",
        type_hint=tuple,
        description="Transmitter (x, y, z) in metres",
        length=(3, 3),
        element_type=float,
    ),
    Parameter(
        name="rx_position",
        type_hint=tuple,
        description="Receiver (x, y, z) in metres",
        length=(3, 3),
        element_type=float,
    ),
    Parameter(
        name="movement_area",
        type_hint=tuple,
        description="Walker area (x0, y0, x1, y1) in metres",
        length=(4, 4),
        element_type=float,
    ),
    Parameter(
        name="scatterers",
        type_hint=tuple,
        description="Static scatterers as (x, y, height, gain) tuples",
        default=(),
        length=(0, 16),
        element_type=tuple,
    ),
    Parameter(
        name="wall_reflectivity",
        type_hint=float,
        description="Wall reflection coefficient",
        default=0.45,
        bounds=(0.0, 1.0),
    ),
    Parameter(
        name="ceiling_reflectivity",
        type_hint=float,
        description="Ceiling reflection coefficient",
        default=0.30,
        bounds=(0.0, 1.0),
    ),
)

#: Cross-parameter conditions of the room schema.
ROOM_CONDITIONS: tuple[Condition, ...] = (
    Condition(
        name="movement-area-in-room",
        description=(
            "movement_area must lie inside the room footprint with "
            "x0 < x1 and y0 < y1"
        ),
        requires=("movement_area", "width_m", "depth_m"),
        check=_xy_area_in_room,
    ),
    Condition(
        name="devices-in-room",
        description="tx_position and rx_position must lie inside the room",
        requires=(
            "tx_position",
            "rx_position",
            "width_m",
            "depth_m",
            "height_m",
        ),
        check=_devices_in_room,
    ),
)


def validate_room_values(
    values: Mapping[str, object], subject: str = "room spec"
) -> ValidationReport:
    """Aggregate-validate a room table against :data:`ROOM_PARAMETERS`."""
    explicit = {
        name: _normalize(value) for name, value in values.items()
    }
    index = {p.name: p for p in ROOM_PARAMETERS}
    merged = {
        p.name: p.default
        for p in ROOM_PARAMETERS
        if p.default is not _MISSING
    }
    merged.update(explicit)
    errors: list[str] = []
    failed: set[str] = set()
    for key in explicit:
        if key not in index:
            errors.append(f"{key}: unknown room parameter")
            failed.add(key)
    for parameter in ROOM_PARAMETERS:
        if parameter.required and parameter.name not in explicit:
            errors.append(f"{parameter.name}: value is required")
            failed.add(parameter.name)
            continue
        problems = parameter.violations(merged[parameter.name])
        if problems:
            errors.extend(problems)
            failed.add(parameter.name)
    for condition in ROOM_CONDITIONS:
        if any(name in failed for name in condition.requires):
            continue
        if not condition.check(merged):
            errors.append(condition.message(merged))
    return ValidationReport(subject=subject, errors=tuple(errors))


def build_room(values: Mapping[str, object], name: str):
    """Construct a validated :class:`~repro.config.RoomConfig`.

    Runs the aggregated room schema first — every violation reported
    at once — then materializes the (already consistent) dataclass.
    """
    from ..config import RoomConfig

    report = validate_room_values(values, subject=f"room {name!r}")
    report.raise_for_errors()
    merged = {
        p.name: p.default
        for p in ROOM_PARAMETERS
        if p.default is not _MISSING
    }
    merged.update(
        {key: _normalize(value) for key, value in values.items()}
    )
    return RoomConfig(**merged)


# -- TOML / JSON scenario files ------------------------------------------
def _parse_scenario_file(path: Path) -> dict:
    """Raw payload of a ``.toml`` or ``.json`` scenario file."""
    if path.suffix == ".toml":
        import tomllib

        return tomllib.loads(path.read_text())
    if path.suffix == ".json":
        return json.loads(path.read_text())
    raise ConfigurationError(
        f"unsupported scenario file {path.name!r}; expected .toml or "
        ".json"
    )


def load_scenario_file(
    path: str | Path, register: bool = True, replace: bool = False
) -> list:
    """Load (and by default register) scenarios from a TOML/JSON file.

    The file declares an optional ``[rooms.<name>]`` table per custom
    room geometry (validated through :data:`ROOM_PARAMETERS` and added
    to ``ROOM_PRESETS``) and a ``[[scenarios]]`` array of scenario
    tables (validated through the scenario schema).  Every table is
    validated *before* anything is registered, so a broken file changes
    nothing; the aggregated error lists each bad table's full violation
    set.  Returns the loaded :class:`Scenario` objects in file order.
    """
    from .scenario import ROOM_PRESETS, register_scenario

    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no such scenario file: {path}")
    payload = _parse_scenario_file(path)
    unknown = set(payload) - {"rooms", "scenarios"}
    if unknown:
        raise ConfigurationError(
            f"{path.name}: unknown top-level key(s) "
            f"{sorted(unknown)}; expected 'rooms' and 'scenarios'"
        )
    rooms = payload.get("rooms", {})
    entries = payload.get("scenarios", [])
    if not isinstance(rooms, dict) or not isinstance(entries, list):
        raise ConfigurationError(
            f"{path.name}: 'rooms' must be a table and 'scenarios' an "
            "array of tables"
        )
    errors: list[str] = []
    built_rooms = {}
    for room_name, table in rooms.items():
        report = validate_room_values(
            table, subject=f"room {room_name!r}"
        )
        if report.errors:
            errors.extend(report.errors)
        else:
            built_rooms[room_name] = build_room(table, room_name)
    # Custom rooms must be visible to scenario validation below.
    ROOM_PRESETS.update(built_rooms)
    specs = [ScenarioSpec.from_mapping(entry) for entry in entries]
    for spec in specs:
        report = spec.validate()
        errors.extend(
            f"{report.subject}: {line}" for line in report.errors
        )
    if errors:
        for room_name in built_rooms:
            ROOM_PRESETS.pop(room_name, None)
        raise ConfigurationError(
            f"{path.name} failed validation with {len(errors)} "
            "violation(s): " + "; ".join(errors)
        )
    scenarios = [spec.to_scenario() for spec in specs]
    if register:
        for scenario in scenarios:
            register_scenario(scenario, replace=replace)
    return scenarios


# -- seeded sampling of the scenario space -------------------------------
#: SNR lattice (0.5 dB steps inside the trained range) the sampler
#: draws sweep grids from; a sorted sample of a lattice is strictly
#: ascending and unique by construction.
_SNR_LATTICE = tuple(
    round(SNR_BOUNDS_DB[0] + 0.5 * k, 1)
    for k in range(int((SNR_BOUNDS_DB[1] - SNR_BOUNDS_DB[0]) * 2) + 1)
)

#: Sampling scales: ``full`` roams the whole declared space; ``tiny``
#: clamps to seconds-scale dimensions so fuzz round trips stay cheap.
SAMPLE_SCALES = ("full", "tiny")


def _draw_values(
    rng: random.Random, seed: int, index: int, scale: str
) -> dict[str, object]:
    """One (possibly invalid) uniform draw from the declared ranges."""
    if scale == "tiny":
        base = "tiny"
        num_sets = 3
        packets = rng.randint(6, 10)
    else:
        base = rng.choice(("tiny", "reduced", "paper"))
        num_sets = rng.choice((None, rng.randint(*NUM_SETS_BOUNDS[:1] + (8,))))
        packets = rng.choice((None, rng.randint(8, 60)))
    low = round(rng.uniform(MOBILITY_SPEED_BOUNDS_MPS[0], 2.0), 2)
    high = round(
        rng.uniform(low, min(low + 1.2, MOBILITY_SPEED_BOUNDS_MPS[1])), 2
    )
    grid = tuple(
        sorted(rng.sample(_SNR_LATTICE, k=rng.randint(2, 4)))
    )
    return {
        "name": f"sampled-{seed}-{index:04d}",
        "description": f"seeded sample {index} of scenario space "
        f"(seed {seed})",
        "base": base,
        "room": rng.choice(tuple(_room_choices())),
        "trajectory": rng.choice(TRAJECTORY_PRESETS),
        "num_humans": rng.randint(1, 3),
        "speed_range_mps": rng.choice((None, (low, high))),
        "speed_profile": rng.choice(SPEED_PROFILES),
        "snr_db": rng.choice(
            (None, round(rng.uniform(*SNR_BOUNDS_DB), 1))
        ),
        "snr_grid_db": grid,
        "num_sets": num_sets,
        "packets_per_set": packets,
        "seed": rng.randint(0, 99_999),
        "stream_links": rng.randint(1, 6),
        "traffic": rng.choice(
            (
                "periodic",
                "poisson:12",
                "onoff:40:1:4",
                "diurnal:10:60:0.8",
                "mixed",
            )
        ),
        "qos": rng.choice(("uniform", "triple")),
        "tags": ("sampled", scale),
    }


def sample_scenario_specs(
    seed: int, count: int, scale: str = "full"
) -> list[ScenarioSpec]:
    """Draw ``count`` *valid* scenario specs from the declared ranges.

    Rejection sampling over :func:`_draw_values`: each candidate is a
    uniform draw from every parameter's declared range/choices; draws
    violating a declared condition (e.g. a grouped trajectory with one
    human) are discarded and redrawn, so every returned spec validates
    and resolves.  The sequence is a pure function of ``(seed, count,
    scale)`` — :class:`random.Random` is process- and platform-stable —
    which is what makes the fuzz suite and the nightly determinism
    sentinel reproducible.
    """
    if scale not in SAMPLE_SCALES:
        raise ConfigurationError(
            f"unknown sample scale {scale!r}; expected one of "
            f"{SAMPLE_SCALES}"
        )
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    rng = random.Random(int(seed))
    specs: list[ScenarioSpec] = []
    attempts = 0
    while len(specs) < count:
        attempts += 1
        if attempts > 100 * count:
            raise ConfigurationError(
                "sampler failed to draw enough valid specs; the "
                "declared ranges are inconsistent with the conditions"
            )
        spec = ScenarioSpec.from_mapping(
            _draw_values(rng, int(seed), len(specs), scale)
        )
        if spec.validate().ok:
            specs.append(spec)
    return specs


def sample_scenarios(
    seed: int, count: int, scale: str = "full"
) -> list:
    """:func:`sample_scenario_specs` materialized as ``Scenario`` objects."""
    return [
        spec.to_scenario()
        for spec in sample_scenario_specs(seed, count, scale=scale)
    ]
