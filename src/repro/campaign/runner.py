"""Campaign execution: a DAG of cached, resumable steps.

A campaign is a list of :class:`CampaignStep` objects with declared
dependencies.  :class:`Campaign` topologically orders them and executes
each step at most once, journaling per-step status into a
:class:`~repro.campaign.manifest.CampaignManifest` and persisting each
step's text payload under the campaign directory — so a killed run
resumes exactly where it stopped, and a completed campaign replays its
report without touching the simulator.

Two campaign shapes are provided:

:func:`sweep_steps`
    One ``dataset@<snr>`` + ``eval@<snr>`` pair per SNR operating point
    (datasets resolved through the content-addressed cache, evaluation
    via :func:`~repro.experiments.snr_sweep.evaluate_snr_point`) and a
    final ``report`` step assembling the PER table.

:func:`figure_steps`
    One ``dataset`` step plus one ``figure:<name>`` step per requested
    table/figure; the evaluation bundle is built lazily once and shared
    in-process between figure steps.

:func:`train_steps`
    One ``train@combo<k>`` step per Table 2 set combination, each
    resolving its VVD model through the content-addressed
    :class:`~repro.campaign.models.ModelCheckpointRegistry` (training
    only on a registry miss), plus a final ``report`` step summarizing
    per-variant training outcomes.

:func:`stream_steps`
    The closed-loop streaming campaign: cached scenario dataset +
    ``train@stream`` model resolution (when a prediction-driven policy
    runs), a cached ``links`` dataset of per-link walks, one
    ``stream@<policy>`` simulation step per requested link-adaptation
    policy, and a ``report`` step assembling the policy comparison table
    and the proactive-vs-reactive timeline figure purely from stored
    payloads.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from .. import faults
from ..config import SimulationConfig
from ..obs import log, metrics as obs_metrics, trace
from ..dataset.sets import rotating_set_combinations
from ..errors import (
    ConfigurationError,
    StepTimeoutError,
    WorkerCrashError,
    is_transient,
)
from ..experiments.bundle import EvaluationBundle, build_evaluation_bundle
from ..experiments.reporting import format_series_table
from ..experiments.snr_sweep import evaluate_snr_point, snr_point_config
from .cache import DatasetCache
from .manifest import (
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_QUARANTINED,
    STATUS_RUNNING,
    CampaignManifest,
)
from .models import ModelCheckpointRegistry

#: Figures/tables renderable by ``figure_steps`` (CLI ``repro figure``).
FIGURE_NAMES = (
    "table1",
    "table2",
    "fig5",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
)


class CampaignContext:
    """Everything steps need at run time.

    Holds the resolved configuration, the dataset cache, the model
    checkpoint registry, the worker fan-out, per-run options and a
    ``shared`` dict for expensive in-process artifacts (the evaluation
    bundle, aging results) that are memoized across steps of one run but
    never persisted.
    """

    def __init__(
        self,
        config: SimulationConfig,
        cache: DatasetCache,
        directory: str | Path,
        workers: int | None = None,
        verbose: bool = False,
        options: dict | None = None,
        checkpoints: ModelCheckpointRegistry | None = None,
    ) -> None:
        self.config = config
        self.cache = cache
        self.directory = Path(directory)
        self.workers = workers
        self.verbose = verbose
        self.options = dict(options or {})
        #: Content-addressed registry resolving VVD trainings; steps
        #: that train models require it (``repro train``, figure
        #: campaigns pass one so repeat runs never retrain).
        self.checkpoints = checkpoints
        self.shared: dict = {}
        #: Step ids fenced off by the current run (failed after
        #: exhausting their retry budget, or dependent on such a step).
        #: Populated by the executor; ``run_on_partial`` report steps
        #: consult it to render partial results.
        self.quarantined: set[str] = set()

    def output_path(self, step_id: str) -> Path:
        """File persisting one step's text payload."""
        safe = step_id.replace("/", "_")
        return self.directory / "outputs" / f"{safe}.out"

    def write_output(self, step_id: str, payload: str) -> None:
        """Persist a step payload (atomic enough for text artifacts)."""
        path = self.output_path(step_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(payload)

    def read_output(self, step_id: str) -> str:
        """Payload a completed step stored (raises if absent)."""
        path = self.output_path(step_id)
        if not path.exists():
            raise ConfigurationError(
                f"no stored output for step {step_id!r} at {path}"
            )
        return path.read_text()


@dataclass(frozen=True)
class CampaignStep:
    """One node of the campaign DAG."""

    #: Unique id, also the manifest key and output file stem.
    step_id: str
    #: One-line human description (shown in verbose runs).
    description: str
    #: Step body; returns the text payload persisted for resume/report.
    run: Callable[[CampaignContext], str | None]
    #: Ids of steps that must be ``done`` before this one runs.
    depends_on: tuple[str, ...] = ()
    #: Optional process-pool job factory: given the context, returns a
    #: picklable ``(fn, kwargs)`` pair (``fn`` a module-level function
    #: returning the step's payload string).  Steps with a worker run
    #: concurrently under :meth:`Campaign.run` with ``jobs > 1``; steps
    #: without one (reports, in-process-memoized bodies) run inline in
    #: the scheduler once their dependencies complete.
    worker: Callable[[CampaignContext], tuple] | None = None
    #: Under a quarantining run, execute this step even when some of
    #: its dependencies were quarantined (report steps render partial
    #: results naming the missing points).  Steps with this flag that
    #: completed partially are journaled ``done`` with a ``partial:``
    #: detail and re-execute on the next run.
    run_on_partial: bool = False


@dataclass
class CampaignResult:
    """Outcome of one :meth:`Campaign.run` invocation."""

    executed: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    #: Steps fenced off after exhausting their retry budget (plus their
    #: non-partial dependents), in quarantine order.
    quarantined: list[str] = field(default_factory=list)
    #: Number of step attempts that were retried this run.
    retried: int = 0

    @property
    def total(self) -> int:
        """Steps visited this run (executed + resumed)."""
        return len(self.executed) + len(self.skipped)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-step retry/timeout semantics of one campaign run.

    Transient failures (see :func:`repro.errors.is_transient`) are
    re-attempted up to ``max_attempts`` times with exponential backoff;
    permanent failures never retry.  The backoff jitter is
    deterministic — a sha256 hash of ``step_id:attempt`` — so two runs
    of the same campaign retry on the same schedule, keeping chaos
    runs reproducible.  ``timeout_s`` bounds each *worker* attempt's
    wall time: the supervising scheduler kills a worker process that
    exceeds it and requeues the step (inline steps cannot be killed
    from within their own process and are not timed out).
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1 (got {self.max_attempts})"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigurationError("backoff durations must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError(
                f"timeout_s must be > 0 (got {self.timeout_s})"
            )

    def backoff_s(self, step_id: str, attempt: int) -> float:
        """Deterministically jittered backoff before attempt+1.

        Exponential in the attempt number, scaled by a factor in
        ``[0.5, 1.5)`` derived from ``sha256(step_id:attempt)`` — the
        same step retries on the same schedule in every run, while
        different steps desynchronize instead of thundering together.
        """
        base = min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.backoff_max_s,
        )
        digest = hashlib.sha256(
            f"{step_id}:{attempt}".encode()
        ).digest()
        jitter = int.from_bytes(digest[:8], "big") / 2**64
        return base * (0.5 + jitter)

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Whether a failed attempt gets another try."""
        return attempt < self.max_attempts and is_transient(exc)


#: Legacy semantics: one attempt, no timeout — used when
#: :meth:`Campaign.run` is called without a retry policy.
_SINGLE_ATTEMPT = RetryPolicy(max_attempts=1)


def _supervised_entry(
    fn: Callable, kwargs: dict, result_path: str, step_id: str
) -> None:
    """Body of a supervised worker process.

    Runs the step's worker function and transports its outcome —
    ``("ok", payload)`` or ``("error", exception)`` — back to the
    scheduler through a pickled file published with an atomic rename,
    so the parent either sees a complete outcome or none at all.  The
    ``worker.body`` fault site fires here, in the child, which is what
    makes injected crash faults kill a worker and never the scheduler.
    """
    try:
        with trace.span("worker.body", step=step_id):
            faults.inject("worker.body", step_id)
            outcome: tuple = ("ok", fn(**kwargs))
    except BaseException as exc:  # transported to the scheduler
        outcome = ("error", exc)
    tmp = f"{result_path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            pickle.dump(outcome, handle)
    except Exception as exc:  # unpicklable payload or exception
        with open(tmp, "wb") as handle:
            pickle.dump(
                (
                    "error",
                    WorkerCrashError(
                        f"worker outcome for step {step_id!r} could "
                        f"not be transported: {type(exc).__name__}: "
                        f"{exc}"
                    ),
                ),
                handle,
            )
    os.replace(tmp, result_path)


def _mp_context():
    """The multiprocessing context for supervised workers.

    Fork keeps worker dispatch cheap and inherits the scheduler's
    armed fault plan; platforms without fork fall back to the default
    start method (workers then re-resolve ``REPRO_FAULT_PLAN`` from
    the environment).
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


@dataclass
class _WorkerJob:
    """One in-flight supervised worker attempt."""

    step: CampaignStep
    attempt: int
    process: object
    result_path: Path
    deadline: float | None

    def outcome(self) -> tuple | None:
        """Poll once: ``(status, value)`` when finished, else None.

        ``status`` is ``ok`` (value = payload) or ``error`` (value =
        the exception to handle).  A worker past its deadline is
        killed here and reported as a :class:`StepTimeoutError`; a
        worker that died without publishing a result becomes a
        :class:`WorkerCrashError`.  Both are transient, so the retry
        policy requeues the step.
        """
        if self.result_path.exists():
            return self._collect()
        if self.process.is_alive():
            if (
                self.deadline is not None
                and time.monotonic() >= self.deadline
            ):
                self._kill()
                return (
                    "error",
                    StepTimeoutError(
                        f"step {self.step.step_id!r} attempt "
                        f"{self.attempt} exceeded its timeout; hung "
                        "worker killed and step requeued"
                    ),
                )
            return None
        # Exited: give a just-published result file one more look
        # (the child renames it immediately before exiting).
        if self.result_path.exists():
            return self._collect()
        return (
            "error",
            WorkerCrashError(
                f"worker process for step {self.step.step_id!r} died "
                f"(exit code {self.process.exitcode}) without "
                "reporting a result"
            ),
        )

    def _collect(self) -> tuple:
        """Load and consume the published outcome file."""
        self.process.join(timeout=5.0)
        try:
            with open(self.result_path, "rb") as handle:
                status, value = pickle.load(handle)
        except Exception as exc:
            status, value = (
                "error",
                WorkerCrashError(
                    f"result of step {self.step.step_id!r} could not "
                    f"be read back: {type(exc).__name__}: {exc}"
                ),
            )
        self.result_path.unlink(missing_ok=True)
        return (status, value)

    def _kill(self) -> None:
        """Terminate (then kill) the worker process and reap it."""
        self.process.terminate()
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - stuck in D
            self.process.kill()
            self.process.join(timeout=2.0)
        self.result_path.unlink(missing_ok=True)


class Campaign:
    """Topologically ordered, manifest-journaled step executor."""

    def __init__(
        self,
        name: str,
        steps: Sequence[CampaignStep],
        directory: str | Path,
    ) -> None:
        self.name = name
        self.directory = Path(directory)
        self.steps = list(steps)
        self._order = self._topological_order(self.steps)
        self.manifest = CampaignManifest.load(
            self.directory / "manifest.json"
        )

    @staticmethod
    def _topological_order(
        steps: Sequence[CampaignStep],
    ) -> list[CampaignStep]:
        """Dependency-respecting order; rejects dup ids/unknown deps/cycles.

        Greedy by declaration order: repeatedly runs the *first declared*
        step whose dependencies are satisfied.  This keeps producer →
        consumer chains adjacent (``dataset@s`` directly before
        ``eval@s``), so a cache-cold sweep holds at most one operating
        point's measurement sets in memory instead of stacking every
        point's datasets before the first evaluation.
        """
        by_id: dict[str, CampaignStep] = {}
        for step in steps:
            if step.step_id in by_id:
                raise ConfigurationError(
                    f"duplicate step id {step.step_id!r}"
                )
            by_id[step.step_id] = step
        for step in steps:
            for dep in step.depends_on:
                if dep not in by_id:
                    raise ConfigurationError(
                        f"step {step.step_id!r} depends on unknown step "
                        f"{dep!r}"
                    )
        done: set[str] = set()
        remaining = list(steps)
        order: list[CampaignStep] = []
        while remaining:
            for index, step in enumerate(remaining):
                if all(dep in done for dep in step.depends_on):
                    order.append(step)
                    done.add(step.step_id)
                    del remaining[index]
                    break
            else:
                raise ConfigurationError(
                    "campaign DAG has a cycle among "
                    f"{sorted(s.step_id for s in remaining)}"
                )
        return order

    def run(
        self,
        context: CampaignContext,
        resume: bool = True,
        jobs: int = 1,
        retry: RetryPolicy | None = None,
        quarantine: bool = False,
    ) -> CampaignResult:
        """Execute every step not already completed.

        With ``resume=True`` (default) steps whose manifest status is
        ``done`` and whose output file survives are skipped; otherwise
        the manifest is reset and everything re-runs.

        Failure semantics are governed by ``retry`` and ``quarantine``.
        Without either (the default, backward compatible), a step
        exception is journaled as ``failed`` before propagating.  With
        a :class:`RetryPolicy`, transient failures re-attempt with
        deterministic backoff (each attempt journaled into the
        manifest's per-step attempt history) and worker attempts
        exceeding ``timeout_s`` are killed and requeued.  With
        ``quarantine=True``, a step that still fails after its budget
        is journaled ``quarantined`` instead of aborting the run:
        its dependents are fenced off transitively (except
        ``run_on_partial`` report steps, which execute against the
        surviving subset), independent DAG branches keep running, and
        the ids land in :attr:`CampaignResult.quarantined` /
        :attr:`CampaignContext.quarantined`.

        ``jobs > 1`` schedules the DAG as a topological wavefront over
        supervised worker processes: every pending step whose
        dependencies are done is eligible at once, steps carrying a
        :attr:`CampaignStep.worker` job factory execute in child
        processes (survivable: a crashed or hung worker costs one
        attempt, never the scheduler), and the rest run inline.
        Per-step journal entries and kill-resume semantics are
        identical to the serial path.  Step payloads must be
        deterministic; given that, a campaign's outputs are
        byte-identical for every ``jobs`` value — and, because faults
        only ever cost attempts, for every fault plan it survives.
        """
        if not resume:
            self.manifest.reset()
        policy = retry or _SINGLE_ATTEMPT
        with trace.span(
            "campaign.run",
            campaign=self.name,
            steps=len(self._order),
            jobs=jobs,
        ):
            if jobs <= 1:
                result = self._run_serial(context, policy, quarantine)
            else:
                result = self._run_parallel(
                    context, jobs, policy, quarantine
                )
        self._export_telemetry(context, result)
        return result

    def _export_telemetry(
        self, context: CampaignContext, result: CampaignResult
    ) -> None:
        """Merge trace shards and export the run's metrics snapshot.

        Runs after the root span closes so the merged journal contains
        it.  Everything written here lands beside the manifest — never
        in ``outputs/`` or ``results/`` — keeping telemetry outside
        the determinism firewall.
        """
        tracer = trace.active_tracer()
        if tracer is not None:
            trace.merge_shards(tracer.directory)
        registry = obs_metrics.collect(
            cache_stats=getattr(context.cache, "stats", None),
            model_stats=getattr(context.checkpoints, "stats", None),
            campaign_result=result,
        )
        registry.write(self.directory)

    def _skip_or_pend(
        self, context: CampaignContext, result: CampaignResult
    ) -> list[CampaignStep]:
        """Partition steps into resumed (recorded) and still-pending.

        A ``done`` step whose detail records a partial execution (a
        report rendered while some dependency was quarantined) is
        *not* resumed — the quarantined dependency re-runs this run,
        so the partial artifact must be rebuilt from complete inputs.
        """
        pending: list[CampaignStep] = []
        for step in self._order:
            record = self.manifest.steps.get(step.step_id, {})
            done = record.get("status") == STATUS_DONE
            partial = str(record.get("detail", "")).startswith(
                "partial:"
            )
            if (
                done
                and not partial
                and context.output_path(step.step_id).exists()
            ):
                result.skipped.append(step.step_id)
                if context.verbose:
                    log.info(
                        f"[{self.name}] {step.step_id}: resumed (done)"
                    )
            else:
                pending.append(step)
        return pending

    def _complete_step(
        self,
        step: CampaignStep,
        context: CampaignContext,
        result: CampaignResult,
        payload: str | None,
    ) -> None:
        """Persist a finished step's payload and journal ``done``.

        A ``run_on_partial`` step that executed while some of its
        dependencies sat in quarantine is journaled with a
        ``partial:`` detail so the next run rebuilds it.
        """
        context.write_output(step.step_id, payload or "")
        missing = sorted(set(step.depends_on) & context.quarantined)
        detail = (
            "partial: missing " + ", ".join(missing) if missing else ""
        )
        self.manifest.mark(step.step_id, STATUS_DONE, detail=detail)
        result.executed.append(step.step_id)

    def _mark_quarantined(
        self,
        step: CampaignStep,
        detail: str,
        context: CampaignContext,
        result: CampaignResult,
    ) -> None:
        """Fence a step off for the rest of this run."""
        self.manifest.mark(
            step.step_id, STATUS_QUARANTINED, detail=detail
        )
        context.quarantined.add(step.step_id)
        result.quarantined.append(step.step_id)
        if context.verbose:
            log.info(
                f"[{self.name}] {step.step_id}: quarantined ({detail})"
            )

    def _journal_attempt(
        self,
        step_id: str,
        attempt: int,
        exc: BaseException,
        action: str,
        backoff_s: float = 0.0,
    ) -> None:
        """Append one entry to the step's manifest attempt history."""
        self.manifest.record_attempt(
            step_id,
            {
                "attempt": attempt,
                "error": f"{type(exc).__name__}: {exc}",
                "transient": is_transient(exc),
                "action": action,
                "backoff_s": round(backoff_s, 6),
            },
        )

    def _classify_failure(
        self,
        step: CampaignStep,
        exc: BaseException,
        attempt: int,
        result: CampaignResult,
        policy: RetryPolicy,
        quarantine: bool,
    ) -> str:
        """Journal a failed attempt and decide what happens next.

        Returns ``"retry"`` (transient, budget left) or
        ``"quarantine"``; when neither applies — permanent failure
        without quarantining, exhausted budget without quarantining,
        or a ``KeyboardInterrupt``/``SystemExit`` which always aborts —
        the step is journaled ``failed`` and ``exc`` is re-raised.
        """
        fatal = isinstance(exc, (KeyboardInterrupt, SystemExit))
        if not fatal and policy.should_retry(exc, attempt):
            backoff = policy.backoff_s(step.step_id, attempt)
            self._journal_attempt(
                step.step_id, attempt, exc, "retry", backoff
            )
            trace.event(
                "step.retry",
                step=step.step_id,
                attempt=attempt,
                backoff_s=round(backoff, 6),
                error=type(exc).__name__,
            )
            result.retried += 1
            return "retry"
        if not fatal and quarantine:
            self._journal_attempt(
                step.step_id, attempt, exc, "quarantine"
            )
            return "quarantine"
        self._journal_attempt(step.step_id, attempt, exc, "fail")
        self.manifest.mark(
            step.step_id,
            STATUS_FAILED,
            detail=f"{type(exc).__name__}: {exc}",
        )
        raise exc

    def _spawn(
        self,
        step: CampaignStep,
        fn: Callable,
        kwargs: dict,
        attempt: int,
        timeout_s: float | None,
    ) -> _WorkerJob:
        """Start one supervised worker process for a step attempt."""
        scratch = self.directory / "scratch"
        scratch.mkdir(parents=True, exist_ok=True)
        safe = step.step_id.replace("/", "_")
        result_path = scratch / f"{safe}.attempt{attempt:02d}.pkl"
        result_path.unlink(missing_ok=True)
        process = _mp_context().Process(
            target=_supervised_entry,
            args=(fn, dict(kwargs), str(result_path), step.step_id),
        )
        process.start()
        deadline = (
            time.monotonic() + timeout_s
            if timeout_s is not None
            else None
        )
        return _WorkerJob(step, attempt, process, result_path, deadline)

    def _attempt(
        self,
        step: CampaignStep,
        context: CampaignContext,
        policy: RetryPolicy,
        attempt: int,
    ) -> str | None:
        """Execute one attempt of a step in-scheduler (blocking).

        Worker-backed steps run supervised (killable) when the policy
        carries a timeout; everything else runs inline, where the
        ``step.body`` fault site fires.
        """
        if context.verbose:
            log.info(
                f"[{self.name}] {step.step_id}: {step.description}"
            )
        with trace.span(
            "step.attempt", step=step.step_id, attempt=attempt
        ):
            if step.worker is not None and policy.timeout_s is not None:
                fn, kwargs = step.worker(context)
                job = self._spawn(
                    step, fn, kwargs, attempt, policy.timeout_s
                )
                while True:
                    outcome = job.outcome()
                    if outcome is not None:
                        break
                    time.sleep(0.005)
                status, value = outcome
                if status == "error":
                    raise value
                return value
            faults.inject("step.body", step.step_id)
            return step.run(context)

    def _run_serial(
        self,
        context: CampaignContext,
        policy: RetryPolicy,
        quarantine: bool,
    ) -> CampaignResult:
        """The sequential executor (``jobs=1``): one step at a time."""
        result = CampaignResult()
        for step in self._skip_or_pend(context, result):
            bad_deps = sorted(
                dep
                for dep in step.depends_on
                if dep in context.quarantined
            )
            if bad_deps and not step.run_on_partial:
                self._mark_quarantined(
                    step,
                    "dependency quarantined: " + ", ".join(bad_deps),
                    context,
                    result,
                )
                continue
            self.manifest.mark(step.step_id, STATUS_RUNNING)
            attempt = 0
            while True:
                attempt += 1
                try:
                    payload = self._attempt(
                        step, context, policy, attempt
                    )
                except BaseException as exc:
                    action = self._classify_failure(
                        step, exc, attempt, result, policy, quarantine
                    )
                    if action == "retry":
                        time.sleep(
                            policy.backoff_s(step.step_id, attempt)
                        )
                        continue
                    self._mark_quarantined(
                        step,
                        f"{type(exc).__name__}: {exc}",
                        context,
                        result,
                    )
                    break
                self._complete_step(step, context, result, payload)
                break
        return result

    def _run_parallel(
        self,
        context: CampaignContext,
        jobs: int,
        policy: RetryPolicy,
        quarantine: bool,
    ) -> CampaignResult:
        """Topological-wavefront executor over supervised workers.

        Ready steps (all dependencies ``done``) dispatch in
        declaration order; worker-backed steps run in supervised child
        processes — at most ``jobs`` concurrently — and the rest run
        inline between polls.  Supervision makes worker failure a
        per-attempt event: a crash, transported exception or timeout
        costs that attempt only, feeding the shared retry/quarantine
        classification.  Without retry or quarantine a failure
        journals ``failed``, the remaining in-flight workers are
        terminated (their steps stay ``running``, exactly like a
        killed run, so the next invocation re-executes them) and the
        original exception propagates.
        """
        result = CampaignResult()
        pending = self._skip_or_pend(context, result)
        if not pending:
            return result
        pending_ids = {step.step_id for step in pending}
        remaining_deps = {
            step.step_id: {
                dep for dep in step.depends_on if dep in pending_ids
            }
            for step in pending
        }
        dependents: dict[str, list[CampaignStep]] = {}
        for step in pending:
            for dep in remaining_deps[step.step_id]:
                dependents.setdefault(dep, []).append(step)
        ready = [
            step for step in pending if not remaining_deps[step.step_id]
        ]
        inline: list[CampaignStep] = []
        running: list[_WorkerJob] = []
        #: step_id -> (step, monotonic time its next attempt is due).
        waiting: dict[str, tuple[CampaignStep, float]] = {}
        attempts: dict[str, int] = {}

        def _promote(step: CampaignStep) -> None:
            bad = sorted(
                dep
                for dep in step.depends_on
                if dep in context.quarantined
            )
            if bad and not step.run_on_partial:
                _quarantine(
                    step, "dependency quarantined: " + ", ".join(bad)
                )
            else:
                ready.append(step)

        def _unlock(step_id: str) -> None:
            for dependent in dependents.get(step_id, ()):
                deps = remaining_deps[dependent.step_id]
                deps.discard(step_id)
                if not deps:
                    _promote(dependent)

        def _quarantine(step: CampaignStep, detail: str) -> None:
            self._mark_quarantined(step, detail, context, result)
            _unlock(step.step_id)

        def _complete(step: CampaignStep, payload: str | None) -> None:
            self._complete_step(step, context, result, payload)
            _unlock(step.step_id)

        def _fail(step: CampaignStep, exc: BaseException) -> None:
            attempt = attempts[step.step_id]
            action = self._classify_failure(
                step, exc, attempt, result, policy, quarantine
            )
            if action == "retry":
                waiting[step.step_id] = (
                    step,
                    time.monotonic()
                    + policy.backoff_s(step.step_id, attempt),
                )
            else:
                _quarantine(step, f"{type(exc).__name__}: {exc}")

        try:
            while ready or inline or running or waiting:
                progressed = False
                now = time.monotonic()
                for step_id in list(waiting):
                    step, due = waiting[step_id]
                    if now >= due:
                        del waiting[step_id]
                        ready.append(step)
                        progressed = True
                deferred: list[CampaignStep] = []
                while ready:
                    step = ready.pop(0)
                    if step.worker is None:
                        self.manifest.mark(
                            step.step_id, STATUS_RUNNING
                        )
                        inline.append(step)
                        continue
                    if len(running) >= jobs:
                        deferred.append(step)
                        continue
                    self.manifest.mark(step.step_id, STATUS_RUNNING)
                    attempts[step.step_id] = (
                        attempts.get(step.step_id, 0) + 1
                    )
                    if context.verbose:
                        log.info(
                            f"[{self.name}] {step.step_id}: "
                            f"{step.description}"
                        )
                    try:
                        # The job factory runs in the scheduler; its
                        # failures classify like any other attempt.
                        fn, kwargs = step.worker(context)
                    except BaseException as exc:
                        _fail(step, exc)
                        continue
                    running.append(
                        self._spawn(
                            step,
                            fn,
                            kwargs,
                            attempts[step.step_id],
                            policy.timeout_s,
                        )
                    )
                    progressed = True
                ready.extend(deferred)
                if inline:
                    step = inline.pop(0)
                    attempts[step.step_id] = (
                        attempts.get(step.step_id, 0) + 1
                    )
                    try:
                        payload = self._attempt(
                            step,
                            context,
                            policy,
                            attempts[step.step_id],
                        )
                    except BaseException as exc:
                        _fail(step, exc)
                    else:
                        _complete(step, payload)
                    continue
                for job in list(running):
                    outcome = job.outcome()
                    if outcome is None:
                        continue
                    running.remove(job)
                    progressed = True
                    status, value = outcome
                    if status == "ok":
                        _complete(job.step, value)
                    else:
                        _fail(job.step, value)
                if not progressed:
                    time.sleep(0.01)
        except BaseException:
            # Abort: reap in-flight workers; their steps stay
            # 'running' and re-execute on the next invocation.
            for job in running:
                job._kill()
            raise
        return result


# -- sweep campaign -----------------------------------------------------
def _snr_tag(snr_db: float) -> str:
    return f"{snr_db:g}dB"


def _materialize_dataset(
    ctx: CampaignContext, config: SimulationConfig
) -> str:
    """Shared dataset-step body: ensure ``config`` is cached.

    A complete on-disk entry is left untouched (the consuming step loads
    it once); otherwise the missing sets are generated and the loaded
    campaign is stashed under ``ctx.shared['sets:<key>']`` for the
    consumer to pop, avoiding an immediate reload.  Returns the JSON
    payload persisted for the step.
    """
    key = ctx.cache.key_for(config)
    if ctx.cache.has(config):
        return json.dumps({"key": key, "sets_generated": 0})
    generated_before = ctx.cache.stats.sets_generated
    ctx.shared[f"sets:{key}"] = ctx.cache.load_or_generate(
        config, workers=ctx.workers, verbose=ctx.verbose
    )
    return json.dumps(
        {
            "key": key,
            "sets_generated": ctx.cache.stats.sets_generated
            - generated_before,
        }
    )


def sweep_steps(
    config: SimulationConfig,
    snrs_db: Sequence[float],
    num_sets: int | None = None,
    suite: str = "baseline",
) -> list[CampaignStep]:
    """Steps of an SNR-sweep campaign over ``config``.

    Per operating point: a ``dataset@<snr>`` step that materializes the
    point's measurement sets in the cache (a no-op cache hit on repeat
    runs) and an ``eval@<snr>`` step persisting the per-technique
    PER/CER as JSON.  The final ``report`` step assembles the Sec. 6.6
    PER-vs-SNR table purely from the stored JSON payloads.
    """
    if len(snrs_db) < 2:
        raise ConfigurationError("sweep needs at least two SNR points")
    ordered = sorted(set(float(s) for s in snrs_db))
    steps: list[CampaignStep] = []
    eval_ids = []
    for snr in ordered:
        tag = _snr_tag(snr)
        point = snr_point_config(config, snr, num_sets=num_sets)

        def _run_dataset(
            ctx: CampaignContext, point=point
        ) -> str:
            return _materialize_dataset(ctx, point)

        def _run_eval(
            ctx: CampaignContext, point=point, snr=snr
        ) -> str:
            techniques = evaluate_snr_point(
                point,
                suite=suite,
                cache=ctx.cache,
                workers=ctx.workers,
                sets=ctx.shared.pop(
                    f"sets:{ctx.cache.key_for(point)}", None
                ),
            )
            return json.dumps(
                {
                    "snr_db": snr,
                    "per": {
                        name: result.per
                        for name, result in techniques.items()
                    },
                    "cer": {
                        name: result.cer
                        for name, result in techniques.items()
                    },
                }
            )

        steps.append(
            CampaignStep(
                step_id=f"dataset@{tag}",
                description=f"materialize cached dataset at {tag}",
                run=_run_dataset,
            )
        )
        steps.append(
            CampaignStep(
                step_id=f"eval@{tag}",
                description=f"evaluate suite {suite!r} at {tag}",
                run=_run_eval,
                depends_on=(f"dataset@{tag}",),
            )
        )
        eval_ids.append(f"eval@{tag}")

    def _run_report(ctx: CampaignContext) -> str:
        # Under a quarantining run the report still renders, from the
        # operating points that survived; quarantined points are named
        # below the table instead of aborting the campaign.
        available = [
            step_id
            for step_id in eval_ids
            if step_id not in ctx.quarantined
            and ctx.output_path(step_id).exists()
        ]
        if not available:
            raise ConfigurationError(
                "sweep report has no completed operating point; all "
                f"{len(eval_ids)} eval step(s) are quarantined"
            )
        points = [
            json.loads(ctx.read_output(step_id))
            for step_id in available
        ]
        names = list(points[0]["per"])
        series = {
            name: [point["per"][name] for point in points]
            for name in names
        }
        table = format_series_table(
            f"SNR sweep — PER per technique (suite: {suite})",
            "snr_db",
            [point["snr_db"] for point in points],
            series,
        )
        missing = [s for s in eval_ids if s not in available]
        if missing:
            table += (
                f"\n{len(missing)} operating point(s) quarantined: "
                + ", ".join(missing)
            )
        return table

    steps.append(
        CampaignStep(
            step_id="report",
            description="assemble PER-vs-SNR table",
            run=_run_report,
            depends_on=tuple(eval_ids),
            run_on_partial=True,
        )
    )
    return steps


# -- figure campaign ----------------------------------------------------
def _bundle(ctx: CampaignContext) -> EvaluationBundle:
    """Build (once per run) the shared evaluation bundle via the cache."""
    bundle = ctx.shared.get("bundle")
    if bundle is None:
        bundle = build_evaluation_bundle(
            ctx.config,
            num_combinations=ctx.options.get("combinations"),
            verbose=ctx.verbose,
            workers=ctx.workers,
            cache=ctx.cache,
            sets=ctx.shared.pop(
                f"sets:{ctx.cache.key_for(ctx.config)}", None
            ),
            checkpoints=ctx.checkpoints,
            vvd_seed=ctx.options.get("vvd_seed", 7),
        )
        ctx.shared["bundle"] = bundle
    return bundle


def _aging(ctx: CampaignContext) -> object:
    """Memoized Figs. 16/17 aging result (one experiment, two figures)."""
    from ..experiments.figures import fig16

    aging = ctx.shared.get("aging")
    if aging is None:
        aging = fig16.generate(_bundle(ctx))
        ctx.shared["aging"] = aging
    return aging


def render_figure(name: str, ctx: CampaignContext) -> str:
    """Render one paper table/figure from the cached evaluation bundle."""
    from ..experiments.figures import (
        fig5,
        fig11,
        fig12,
        fig13,
        fig14,
        fig15,
        fig16,
        fig17,
        table1,
        table2,
    )

    if name == "table1":
        return table1.render(_bundle(ctx))
    if name == "table2":
        return table2.render(_bundle(ctx).sets)
    if name == "fig5":
        bundle = _bundle(ctx)
        return fig5.render(
            fig5.generate(bundle.sets[1], bundle.sets[2:])
        )
    if name == "fig11":
        bundle = _bundle(ctx)
        return fig11.render(
            fig11.generate(
                bundle.runner,
                bundle.combinations,
                bundle.config,
                checkpoints=ctx.checkpoints,
                vvd_seed=ctx.options.get("vvd_seed", 7),
            )
        )
    if name == "fig12":
        return fig12.render(_bundle(ctx))
    if name == "fig13":
        return fig13.render(_bundle(ctx))
    if name == "fig14":
        return fig14.render(_bundle(ctx))
    if name == "fig15":
        return fig15.render(fig15.generate(_bundle(ctx)))
    if name == "fig16":
        return fig16.render(_aging(ctx))
    if name == "fig17":
        return fig17.render(_aging(ctx))
    raise ConfigurationError(
        f"unknown figure {name!r}; known figures: "
        f"{', '.join(FIGURE_NAMES)}"
    )


def figure_steps(
    config: SimulationConfig, names: Sequence[str]
) -> list[CampaignStep]:
    """Steps of a figure campaign: one cached dataset + one step/figure."""
    unknown = [name for name in names if name not in FIGURE_NAMES]
    if unknown:
        raise ConfigurationError(
            f"unknown figures {unknown}; known figures: "
            f"{', '.join(FIGURE_NAMES)}"
        )

    def _run_dataset(ctx: CampaignContext) -> str:
        return _materialize_dataset(ctx, ctx.config)

    steps = [
        CampaignStep(
            step_id="dataset",
            description="materialize cached dataset",
            run=_run_dataset,
        )
    ]
    for name in names:

        def _run_figure(ctx: CampaignContext, name=name) -> str:
            return render_figure(name, ctx)

        steps.append(
            CampaignStep(
                step_id=f"figure:{name}",
                description=f"render {name}",
                run=_run_figure,
                depends_on=("dataset",),
            )
        )
    return steps


# -- training campaign ---------------------------------------------------
def _campaign_sets(ctx: CampaignContext) -> list:
    """The campaign's measurement sets, loaded once per run.

    Unlike the sweep's producer/consumer stash (which *pops* its entry),
    training steps share one in-memory copy across every variant: the
    first caller resolves the sets through the cache and later callers —
    including steps re-executed after a resume, when the ``dataset``
    step itself was skipped — reuse it.
    """
    key = f"sets:{ctx.cache.key_for(ctx.config)}"
    sets = ctx.shared.get(key)
    if sets is None:
        sets = ctx.cache.load_or_generate(
            ctx.config, workers=ctx.workers, verbose=ctx.verbose
        )
        ctx.shared[key] = sets
    return sets


def train_steps(
    config: SimulationConfig,
    num_combinations: int | None = None,
    horizons: Sequence[int] = (0,),
    seed: int = 7,
) -> list[CampaignStep]:
    """Steps of a training campaign: one model per (combination, horizon).

    Per Table 2 combination and prediction horizon: a
    ``train@combo<k>@h<f>`` step that resolves the variant's VVD model
    through the run's
    :class:`~repro.campaign.models.ModelCheckpointRegistry`
    (``ctx.checkpoints``) — training the CNN only when the registry has
    no checkpoint for the (config, split, horizon, seed) key — and
    persists a JSON payload recording the key and whether a training
    actually ran.  ``horizons=(0, 1, 3)`` pre-trains every Fig. 11
    future-prediction variant alongside the VVD-Current models.  The
    final ``report`` step assembles the per-variant summary table
    purely from the stored payloads, so a completed campaign replays
    without touching the registry.
    """
    combinations = rotating_set_combinations(config.dataset.num_sets)
    if num_combinations is not None:
        if num_combinations < 1:
            raise ConfigurationError("num_combinations must be >= 1")
        combinations = combinations[:num_combinations]
    horizons = tuple(dict.fromkeys(int(h) for h in horizons))
    if not horizons:
        raise ConfigurationError("horizons must not be empty")
    if any(h < 0 for h in horizons):
        raise ConfigurationError(
            f"horizons must be >= 0, got {horizons}"
        )

    def _run_dataset(ctx: CampaignContext) -> str:
        return _materialize_dataset(ctx, ctx.config)

    steps = [
        CampaignStep(
            step_id="dataset",
            description="materialize cached dataset",
            run=_run_dataset,
        )
    ]
    train_ids = []
    for combination in combinations:
        for horizon in horizons:

            def _run_train(
                ctx: CampaignContext,
                combination=combination,
                horizon=horizon,
            ) -> str:
                if ctx.checkpoints is None:
                    raise ConfigurationError(
                        "training steps need a CampaignContext with a "
                        "checkpoints= model registry"
                    )
                sets = _campaign_sets(ctx)
                training = [
                    sets[i] for i in combination.training_indices()
                ]
                validation = [sets[combination.validation_index]]
                trained_before = ctx.checkpoints.stats.models_trained
                trained = ctx.checkpoints.load_or_train(
                    training,
                    validation,
                    ctx.config,
                    horizon_frames=horizon,
                    seed=seed,
                    verbose=ctx.verbose,
                )
                return json.dumps(
                    {
                        "combination": combination.number,
                        "horizon": horizon,
                        "key": ctx.checkpoints.key_for(
                            ctx.config,
                            training,
                            validation,
                            horizon_frames=horizon,
                            seed=seed,
                        ),
                        "trained": ctx.checkpoints.stats.models_trained
                        - trained_before,
                        "epochs": len(trained.history.train_loss),
                        "best_epoch": trained.history.best_epoch,
                        "best_val_loss": trained.history.best_val_loss,
                    }
                )

            step_id = (
                f"train@combo{combination.number:02d}@h{horizon}"
            )
            steps.append(
                CampaignStep(
                    step_id=step_id,
                    description=(
                        f"train/resolve VVD for combination "
                        f"{combination.number}, horizon {horizon}"
                    ),
                    run=_run_train,
                    depends_on=("dataset",),
                )
            )
            train_ids.append(step_id)

    def _run_report(ctx: CampaignContext) -> str:
        available = [
            step_id
            for step_id in train_ids
            if step_id not in ctx.quarantined
            and ctx.output_path(step_id).exists()
        ]
        if not available:
            raise ConfigurationError(
                "training report has no completed variant; all "
                f"{len(train_ids)} train step(s) are quarantined"
            )
        rows = [
            json.loads(ctx.read_output(step_id))
            for step_id in available
        ]
        lines = [
            f"Training campaign — {len(rows)} Table 2 variant(s), "
            f"horizon(s) {list(horizons)}, seed {seed}",
            f"{'Combo':>5}  {'Hzn':>3}  {'Model key':<16}  "
            f"{'Trained':>7}  {'Best epoch':>10}  {'Best val MSE':>12}",
        ]
        for row in rows:
            lines.append(
                f"{row['combination']:>5}  {row['horizon']:>3}  "
                f"{row['key']:<16}  "
                f"{'yes' if row['trained'] else 'cached':>7}  "
                f"{row['best_epoch'] + 1:>10}  "
                f"{row['best_val_loss']:>12.3e}"
            )
        newly_trained = sum(row["trained"] for row in rows)
        lines.append(
            f"{newly_trained} model(s) trained, "
            f"{len(rows) - newly_trained} resolved from checkpoints"
        )
        missing = [s for s in train_ids if s not in available]
        if missing:
            lines.append(
                f"{len(missing)} variant(s) quarantined: "
                + ", ".join(missing)
            )
        return "\n".join(lines)

    steps.append(
        CampaignStep(
            step_id="report",
            description="assemble per-variant training summary",
            run=_run_report,
            depends_on=tuple(train_ids),
            run_on_partial=True,
        )
    )
    return steps


# -- streaming campaign ---------------------------------------------------
def _stream_traces(
    ctx: CampaignContext, links: int, slots: int | None
) -> list:
    """The run's link traces, loaded once and shared across steps.

    Resolution goes through :func:`~repro.stream.events.
    build_link_traces` with the dataset cache — a completed ``links``
    step is a pure cache hit here, and a ``links`` step that just
    generated the sets hands them over through the shared stash —
    so simulation steps re-executed after a resume reload without
    regenerating.  The campaign parameters come from the
    :func:`stream_steps` closures, never from ``ctx.options``.
    """
    from ..stream.events import build_link_traces, stream_link_config

    key = f"stream-traces:{links}:{slots}"
    traces = ctx.shared.get(key)
    if traces is None:
        derived = stream_link_config(ctx.config, links, slots=slots)
        traces = build_link_traces(
            ctx.config,
            links,
            slots=slots,
            cache=ctx.cache,
            workers=ctx.workers,
            verbose=ctx.verbose,
            sets=ctx.shared.pop(
                f"sets:{ctx.cache.key_for(derived)}", None
            ),
        )
        ctx.shared[key] = traces
    return traces


def _stream_service(ctx: CampaignContext, horizon: int, seed: int):
    """The run's :class:`~repro.stream.service.PredictionService`.

    Built once per run from the campaign's model registry over the
    scenario's first Table 2 split; on resumed runs the registry serves
    the checkpoint, so no CNN is retrained.
    """
    from ..stream.service import PredictionService

    key = f"stream-service:{horizon}:{seed}"
    service = ctx.shared.get(key)
    if service is None:
        if ctx.checkpoints is None:
            raise ConfigurationError(
                "prediction-driven stream steps need a CampaignContext "
                "with a checkpoints= model registry"
            )
        sets = _campaign_sets(ctx)
        combination = rotating_set_combinations(
            ctx.config.dataset.num_sets
        )[0]
        service = PredictionService.from_registry(
            ctx.checkpoints,
            ctx.config,
            [sets[i] for i in combination.training_indices()],
            [sets[combination.validation_index]],
            horizon_frames=horizon,
            seed=seed,
            verbose=ctx.verbose,
        )
        ctx.shared[key] = service
    return service


def _stream_simulator(
    ctx: CampaignContext,
    links: int,
    slots: int | None,
    deadline_slots: int,
    round_deadline_s: float | None = None,
):
    """The run's simulator (components + traces), built once."""
    from ..stream.simulator import StreamSimulator

    key = (
        f"stream-simulator:{links}:{slots}:{deadline_slots}:"
        f"{round_deadline_s}"
    )
    simulator = ctx.shared.get(key)
    if simulator is None:
        from ..dataset.generator import build_components
        from ..stream.events import stream_link_config

        derived = stream_link_config(ctx.config, links, slots=slots)
        simulator = StreamSimulator(
            build_components(derived),
            _stream_traces(ctx, links, slots),
            deadline_slots=deadline_slots,
            round_deadline_s=round_deadline_s,
        )
        ctx.shared[key] = simulator
    return simulator


def stream_steps(
    config: SimulationConfig,
    links: int,
    policies: Sequence[str],
    slots: int | None = None,
    deadline_slots: int = 3,
    horizon: int = 0,
    seed: int = 7,
    defer_threshold: float | None = None,
    round_deadline_s: float | None = None,
) -> list[CampaignStep]:
    """Steps of a closed-loop streaming campaign over ``config``.

    The DAG mirrors the training campaign: a cached ``dataset`` step
    and a ``train@stream`` model-resolution step exist only when a
    prediction-driven policy (``proactive``) is requested; a ``links``
    step materializes the derived per-link walk dataset in the cache;
    one ``stream@<policy>`` step per policy runs the closed loop and
    persists its deterministic metrics payload; the final ``report``
    step assembles the comparison table and the timeline figure purely
    from the stored JSON payloads, so a completed campaign replays
    without touching the simulator.
    """
    from ..stream.policy import POLICY_BUILDERS, build_policy

    policies = list(dict.fromkeys(policies))
    if not policies:
        raise ConfigurationError("stream_steps needs >= 1 policy")
    unknown = [p for p in policies if p not in POLICY_BUILDERS]
    if unknown:
        raise ConfigurationError(
            f"unknown policies {unknown}; known policies: "
            f"{', '.join(sorted(POLICY_BUILDERS))}"
        )
    needs_service = any(
        build_policy(name).uses_predictions for name in policies
    )

    steps: list[CampaignStep] = []
    stream_deps = ["links"]
    if needs_service:

        def _run_dataset(ctx: CampaignContext) -> str:
            return _materialize_dataset(ctx, ctx.config)

        def _run_train(ctx: CampaignContext) -> str:
            if ctx.checkpoints is None:
                raise ConfigurationError(
                    "the stream train step needs a CampaignContext "
                    "with a checkpoints= model registry"
                )
            sets = _campaign_sets(ctx)
            combination = rotating_set_combinations(
                ctx.config.dataset.num_sets
            )[0]
            training = [
                sets[i] for i in combination.training_indices()
            ]
            validation = [sets[combination.validation_index]]
            trained_before = ctx.checkpoints.stats.models_trained
            _stream_service(ctx, horizon, seed)
            return json.dumps(
                {
                    "key": ctx.checkpoints.key_for(
                        ctx.config,
                        training,
                        validation,
                        horizon_frames=horizon,
                        seed=seed,
                    ),
                    "horizon": horizon,
                    "seed": seed,
                    "trained": ctx.checkpoints.stats.models_trained
                    - trained_before,
                }
            )

        steps.append(
            CampaignStep(
                step_id="dataset",
                description="materialize cached training dataset",
                run=_run_dataset,
            )
        )
        steps.append(
            CampaignStep(
                step_id="train@stream",
                description="resolve the serving VVD model",
                run=_run_train,
                depends_on=("dataset",),
            )
        )
        stream_deps.append("train@stream")

    def _run_links(ctx: CampaignContext) -> str:
        from ..stream.events import stream_link_config

        derived = stream_link_config(
            ctx.config, links, slots=slots
        )
        return _materialize_dataset(ctx, derived)

    steps.append(
        CampaignStep(
            step_id="links",
            description=f"materialize {links} cached link trace(s)",
            run=_run_links,
        )
    )

    stream_ids = []
    for name in policies:

        def _run_stream(ctx: CampaignContext, name=name) -> str:
            kwargs = {}
            if defer_threshold is not None and name == "proactive":
                kwargs["defer_threshold"] = defer_threshold
            policy = build_policy(name, **kwargs)
            service = (
                _stream_service(ctx, horizon, seed)
                if policy.uses_predictions
                else None
            )
            result = _stream_simulator(
                ctx, links, slots, deadline_slots, round_deadline_s
            ).run(policy, service=service, verbose=ctx.verbose)
            return json.dumps(result.payload(), sort_keys=True)

        def _stream_worker(ctx: CampaignContext, name=name):
            from ..stream.tasks import (
                StreamPolicyTask,
                run_stream_policy_task,
            )

            uses_predictions = build_policy(name).uses_predictions
            if uses_predictions and ctx.checkpoints is None:
                raise ConfigurationError(
                    "prediction-driven stream steps need a "
                    "CampaignContext with a checkpoints= model registry"
                )
            task = StreamPolicyTask(
                config=ctx.config,
                links=links,
                slots=slots,
                deadline_slots=deadline_slots,
                policy=name,
                defer_threshold=defer_threshold,
                cache_root=str(ctx.cache.root),
                model_root=(
                    str(ctx.checkpoints.root)
                    if uses_predictions
                    else None
                ),
                horizon=horizon,
                seed=seed,
                round_deadline_s=round_deadline_s,
            )
            return run_stream_policy_task, {"task": task}

        step_id = f"stream@{name}"
        steps.append(
            CampaignStep(
                step_id=step_id,
                description=f"closed-loop simulation, policy {name!r}",
                run=_run_stream,
                depends_on=tuple(stream_deps),
                worker=_stream_worker,
            )
        )
        stream_ids.append(step_id)

    def _run_report(ctx: CampaignContext) -> str:
        from ..experiments.figures import stream_timeline
        from ..experiments.metrics import StreamMetrics

        available = [
            step_id
            for step_id in stream_ids
            if step_id not in ctx.quarantined
            and ctx.output_path(step_id).exists()
        ]
        if not available:
            raise ConfigurationError(
                "stream report has no completed policy; all "
                f"{len(stream_ids)} simulation step(s) are quarantined"
            )
        payloads = [
            json.loads(ctx.read_output(step_id))
            for step_id in available
        ]
        name_width = max(
            [len(p["policy"]) for p in payloads] + [len("policy")]
        )
        lines = [
            f"Stream campaign — {links} link(s) x "
            f"{payloads[0]['num_slots']} slot(s), deadline "
            f"{deadline_slots} slot(s)",
            f"{'policy':<{name_width}}  {'goodput':>9}  {'outage':>7}  "
            f"{'ddl-miss':>8}  {'defer':>6}  {'delivered':>12}",
        ]
        for payload in payloads:
            metrics = StreamMetrics.from_dict(payload["metrics"])
            lines.append(
                f"{payload['policy']:<{name_width}}  "
                f"{metrics.goodput_pps:>7.2f}/s  "
                f"{metrics.outage:>7.3f}  "
                f"{metrics.deadline_miss_rate:>8.3f}  "
                f"{metrics.defer_rate:>6.3f}  "
                f"{metrics.delivered:>5}/{metrics.offered:<6}"
            )
        missing = [s for s in stream_ids if s not in available]
        if missing:
            lines.append(
                f"{len(missing)} policy step(s) quarantined: "
                + ", ".join(missing)
            )
        degraded = {
            payload["policy"]: StreamMetrics.from_dict(
                payload["metrics"]
            ).degraded_rounds
            for payload in payloads
        }
        if any(degraded.values()):
            lines.append(
                "degraded prediction rounds (reactive fallback): "
                + ", ".join(
                    f"{name}={count}"
                    for name, count in degraded.items()
                    if count
                )
            )
        lines.append("")
        lines.append(
            stream_timeline.render(stream_timeline.generate(payloads))
        )
        return "\n".join(lines)

    steps.append(
        CampaignStep(
            step_id="report",
            description="assemble policy comparison + timeline figure",
            run=_run_report,
            depends_on=tuple(stream_ids),
            run_on_partial=True,
        )
    )
    return steps


# -- capacity campaign ----------------------------------------------------
def capacity_steps(
    link_counts: Sequence[int],
    duration_s: float = 30.0,
    traffic: str = "mixed",
    qos: str = "triple",
    seed: int = 7,
    service_pps: float = 900.0,
    admission_limit: int = 512,
) -> list[CampaignStep]:
    """Steps of a capacity campaign: one modeled point per link count.

    Capacity points are pure queueing-model simulations over the heap
    scheduler (no PHY, no datasets, no checkpoints), so every
    ``capacity@<links>`` step is independent and worker-runnable; the
    final ``report`` step assembles the SLA summary of the largest
    point plus the links-sustained-vs-SLO capacity curve purely from
    the persisted JSON payloads.
    """
    from ..stream.tasks import CapacityTask, run_capacity_task

    counts = sorted({int(c) for c in link_counts})
    if not counts:
        raise ConfigurationError("capacity_steps needs link counts")

    def _task_for(links: int) -> CapacityTask:
        return CapacityTask(
            links=links,
            duration_s=duration_s,
            traffic=traffic,
            qos=qos,
            seed=seed,
            service_pps=service_pps,
            admission_limit=admission_limit,
        )

    steps: list[CampaignStep] = []
    point_ids: list[str] = []
    for links in counts:

        def _run_point(ctx: CampaignContext, links=links) -> str:
            return run_capacity_task(_task_for(links))

        def _point_worker(ctx: CampaignContext, links=links):
            return run_capacity_task, {"task": _task_for(links)}

        step_id = f"capacity@{links}"
        steps.append(
            CampaignStep(
                step_id=step_id,
                description=(
                    f"modeled capacity point at {links} link(s)"
                ),
                run=_run_point,
                worker=_point_worker,
            )
        )
        point_ids.append(step_id)

    def _run_report(ctx: CampaignContext) -> str:
        from ..experiments.figures import capacity as capacity_figure
        from ..stream.capacity import CapacityResult
        from ..stream.tasks import CapacityTask  # noqa: F401

        available = [
            step_id
            for step_id in point_ids
            if step_id not in ctx.quarantined
            and ctx.output_path(step_id).exists()
        ]
        if not available:
            raise ConfigurationError(
                "capacity report has no completed point; all "
                f"{len(point_ids)} step(s) are quarantined"
            )
        payloads = [
            json.loads(ctx.read_output(step_id))
            for step_id in available
        ]
        payloads.sort(key=lambda p: p["links"])
        from ..experiments.metrics import StreamMetrics

        largest = payloads[-1]
        result = CapacityResult(
            links=largest["links"],
            duration_s=largest["duration_s"],
            traffic=largest["traffic"],
            qos=largest["qos"],
            metrics=StreamMetrics.from_dict(largest["metrics"]),
            arrivals=largest["arrivals"],
            batches=largest["batches"],
        )
        lines = [result.sla_summary(), ""]
        lines.append(
            capacity_figure.render(capacity_figure.generate(payloads))
        )
        missing = [s for s in point_ids if s not in available]
        if missing:
            lines.append(
                f"{len(missing)} point(s) quarantined: "
                + ", ".join(missing)
            )
        return "\n".join(lines)

    steps.append(
        CampaignStep(
            step_id="report",
            description="assemble SLA summary + capacity curve",
            run=_run_report,
            depends_on=tuple(point_ids),
            run_on_partial=True,
        )
    )
    return steps
