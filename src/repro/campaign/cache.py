"""Content-addressed on-disk cache of generated measurement sets.

Every figure script used to regenerate its campaign from scratch; the
cache keys each campaign by a stable hash of the *resolved*
:class:`~repro.config.SimulationConfig` (every field, canonically
serialized) plus the processing engine and a code-version salt, and
stores the measurement sets as ``set_<k>.npz`` files under one
directory per key.  Generation is
resumable at set granularity: a killed campaign leaves its completed
``.npz`` files behind and the next run only simulates the missing sets,
fanning them over a process pool when ``workers`` is given.

The cache root defaults to ``~/.cache/repro-vvd/datasets`` and is
overridden by the ``REPRO_CACHE_DIR`` environment variable or the
``--cache-dir`` CLI flag.  Hit/miss statistics accumulate per
:class:`DatasetCache` instance; :meth:`DatasetCache.invalidate` removes
entries by key or config, :meth:`DatasetCache.clear` empties the cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from .. import faults
from ..config import SimulationConfig
from ..dataset.generator import (
    _generate_set_task,
    build_components,
    generate_measurement_set,
)
from ..dataset.io import load_measurement_set, save_measurement_set
from ..dataset.trace import MeasurementSet
from ..errors import CacheCorruptionError, ConfigurationError
from ..obs import log, trace
from .locking import FileLock, atomic_write_text, sweep_stale_tmp

#: Code-version salt mixed into every cache key.  Bump the trailing
#: component whenever generator/trace semantics change so stale datasets
#: can never be replayed against incompatible code.
DATASET_CACHE_SALT = "repro-vvd-dataset/v2"

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-vvd/datasets``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-vvd" / "datasets"


#: Config fields added *after* :data:`DATASET_CACHE_SALT` v2 shipped,
#: keyed by ``(dataclass name, field name)``.  They are elided from
#: canonicalization while they hold their declared default, so every
#: pre-v3 dataset/model cache key stays byte-identical; a config that
#: actually activates one of them hashes to a distinct key.  Never
#: remove an entry without bumping the salt.
_POST_V2_FIELDS = {
    ("MobilityConfig", "speed_profile"),
    ("MobilityConfig", "group_spread_m"),
}


def _canonical(value: object) -> object:
    """Recursively convert config values into JSON-stable primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls_name = type(value).__name__
        out = {}
        for f in dataclasses.fields(value):
            field_value = getattr(value, f.name)
            if (
                (cls_name, f.name) in _POST_V2_FIELDS
                and field_value == f.default
            ):
                continue
            out[f.name] = _canonical(field_value)
        return out
    if isinstance(value, complex):
        return {"re": value.real, "im": value.imag}
    if isinstance(value, (tuple, list)):
        return [_canonical(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigurationError(
        f"cannot canonicalize config value of type {type(value).__name__}"
    )


def config_fingerprint(
    config: SimulationConfig, engine: str = "batch"
) -> str:
    """Stable 16-hex-digit content hash of a resolved configuration.

    Two campaigns share a fingerprint iff every config field (including
    nested dataclasses and complex device responses) *and* the
    processing engine are equal — the engines agree only to ``1e-10``,
    so a ``scalar`` verification run must never be served
    batch-generated floats.  The :data:`DATASET_CACHE_SALT` ties the key
    to the generator version.
    """
    canonical = json.dumps(
        {
            "salt": DATASET_CACHE_SALT,
            "engine": engine,
            "config": _canonical(config),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass
class CacheStats:
    """Per-instance cache accounting (reset with :meth:`reset`)."""

    hits: int = 0
    misses: int = 0
    sets_loaded: int = 0
    sets_generated: int = 0
    #: Sets whose content failed sha256 verification (or could not be
    #: parsed) and were quarantined + regenerated.
    sets_corrupt: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.hits = 0
        self.misses = 0
        self.sets_loaded = 0
        self.sets_generated = 0
        self.sets_corrupt = 0

    def summary(self) -> str:
        """One-line human-readable form used by the CLI."""
        return (
            f"{self.hits} hit(s), {self.misses} miss(es); "
            f"{self.sets_loaded} set(s) loaded, "
            f"{self.sets_generated} set(s) generated"
        )


@dataclass
class CacheEntry:
    """Metadata of one cached campaign directory."""

    key: str
    path: Path
    num_sets_present: int
    num_sets_expected: int | None
    size_bytes: int
    created: float | None = None
    description: str = ""

    @property
    def complete(self) -> bool:
        """Whether every expected measurement set is on disk."""
        return (
            self.num_sets_expected is not None
            and self.num_sets_present >= self.num_sets_expected
        )


class DatasetCache:
    """Content-addressed store of generated measurement campaigns."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()

    # -- addressing -------------------------------------------------------
    def key_for(
        self, config: SimulationConfig, engine: str = "batch"
    ) -> str:
        """Cache key of a resolved configuration + processing engine."""
        return config_fingerprint(config, engine=engine)

    def entry_dir(
        self, config: SimulationConfig, engine: str = "batch"
    ) -> Path:
        """Directory holding the campaign of ``config``/``engine``."""
        return self.root / self.key_for(config, engine=engine)

    def _set_path(self, directory: Path, set_index: int) -> Path:
        return directory / f"set_{set_index:02d}.npz"

    def _digest_path(self, directory: Path, set_index: int) -> Path:
        return directory / f"set_{set_index:02d}.npz.sha256"

    def _verify_set(self, directory: Path, set_index: int) -> str:
        """Content-verify one cached set: ``ok``/``missing``/``corrupt``.

        Compares the payload's sha256 against the digest sidecar
        written at save time.  Legacy entries without a sidecar are
        backfilled (hashed and recorded) so later corruption becomes
        detectable; an unreadable payload counts as corrupt.
        """
        path = self._set_path(directory, set_index)
        if not path.exists():
            return "missing"
        try:
            digest = hashlib.sha256(path.read_bytes()).hexdigest()
        except OSError:
            return "corrupt"
        sidecar = self._digest_path(directory, set_index)
        if not sidecar.exists():
            atomic_write_text(sidecar, digest + "\n")
            return "ok"
        try:
            expected = sidecar.read_text().strip()
        except OSError:
            expected = ""
        return "ok" if digest == expected else "corrupt"

    def _quarantine_set(
        self, directory: Path, set_index: int, reason: str
    ) -> None:
        """Move a corrupt set aside (``*.corrupt.<pid>``) and warn.

        Corruption is never fatal: the caller treats the set as a miss
        and regenerates it.  The quarantined bytes are kept next to
        the entry for post-mortems instead of being deleted.
        """
        path = self._set_path(directory, set_index)
        quarantined = path.with_name(
            f"{path.name}.corrupt.{os.getpid()}"
        )
        try:
            os.replace(path, quarantined)
        except OSError:  # pragma: no cover - racing quarantine
            pass
        self._digest_path(directory, set_index).unlink(missing_ok=True)
        self.stats.sets_corrupt += 1
        log.warning(
            f"warning: cache corruption detected in "
            f"{directory.name}/{path.name} — quarantined to "
            f"{quarantined.name}, regenerating ({reason})"
        )

    def _load_set_checked(
        self, directory: Path, set_index: int
    ) -> MeasurementSet:
        """Load one verified set; quarantine + raise if unparsable."""
        try:
            return load_measurement_set(
                self._set_path(directory, set_index)
            )
        except Exception as exc:
            self._quarantine_set(
                directory,
                set_index,
                f"unreadable npz: {type(exc).__name__}: {exc}",
            )
            raise CacheCorruptionError(
                f"cached set {set_index} of {directory.name} could "
                "not be parsed"
            ) from exc

    def has(
        self, config: SimulationConfig, engine: str = "batch"
    ) -> bool:
        """Whether every measurement set of ``config`` is cached."""
        directory = self.entry_dir(config, engine=engine)
        return all(
            self._set_path(directory, i).exists()
            for i in range(config.dataset.num_sets)
        )

    # -- load / generate --------------------------------------------------
    def load_or_generate(
        self,
        config: SimulationConfig,
        workers: int | None = None,
        engine: str = "batch",
        verbose: bool = False,
        force: bool = False,
    ) -> list[MeasurementSet]:
        """Return the campaign of ``config``, generating only what's missing.

        A full on-disk campaign counts as one *hit* (every set is loaded
        from ``.npz``); anything else is a *miss* and the missing sets
        are simulated — over a process pool of ``workers`` when given —
        and persisted before the call returns.  ``force=True`` discards
        any cached entry first.  Entries are keyed per ``engine``, so a
        ``scalar`` verification campaign is never served batch-generated
        data (or vice versa).  The returned list is ordered by set index
        and numerically identical to a fresh
        :func:`~repro.dataset.generator.generate_dataset` run.
        """
        directory = self.entry_dir(config, engine=engine)
        if force and directory.exists():
            shutil.rmtree(directory)
        num_sets = config.dataset.num_sets
        key = self.key_for(config, engine=engine)
        if faults.active_plan() is not None:
            faults.inject("cache.load", key)
            for i in range(num_sets):
                path = self._set_path(directory, i)
                if path.exists() and faults.corrupt_file(
                    "cache.load", key, path
                ):
                    break
        sweep_stale_tmp(directory)
        missing = []
        with trace.span("cache.verify", key=key, sets=num_sets):
            for i in range(num_sets):
                state = self._verify_set(directory, i)
                if state == "corrupt":
                    self._quarantine_set(
                        directory, i, "sha256 digest mismatch"
                    )
                if state != "ok":
                    missing.append(i)
        if not missing:
            try:
                with trace.span(
                    "cache.load", key=key, sets=num_sets
                ):
                    sets = [
                        self._load_set_checked(directory, i)
                        for i in range(num_sets)
                    ]
            except CacheCorruptionError:
                missing = [
                    i
                    for i in range(num_sets)
                    if not self._set_path(directory, i).exists()
                ]
            else:
                self.stats.hits += 1
                self.stats.sets_loaded += num_sets
                if verbose:
                    log.info(
                        f"cache hit {key}: "
                        f"loaded {num_sets} set(s) from {directory}"
                    )
                return sets

        self.stats.misses += 1
        if verbose:
            log.info(
                f"cache miss {self.key_for(config, engine=engine)}: "
                f"generating {len(missing)}/{num_sets} set(s)"
            )
        directory.mkdir(parents=True, exist_ok=True)
        generated: dict[int, MeasurementSet] = {}
        with trace.span(
            "cache.generate", key=key, sets=len(missing)
        ):
            if workers is not None and workers > 1 and len(missing) > 1:
                pool_size = min(workers, len(missing))
                with ProcessPoolExecutor(max_workers=pool_size) as pool:
                    for measurement_set in pool.map(
                        _generate_set_task,
                        [config] * len(missing),
                        missing,
                        [engine] * len(missing),
                    ):
                        generated[measurement_set.index] = (
                            measurement_set
                        )
            else:
                components = build_components(config)
                for set_index in missing:
                    generated[set_index] = generate_measurement_set(
                        components, set_index, engine=engine
                    )
        with trace.span("cache.store", key=key, sets=len(generated)):
            for set_index, measurement_set in generated.items():
                self._atomic_save(
                    directory, set_index, measurement_set
                )
        self.stats.sets_generated += len(missing)
        self._write_meta(directory, config, engine)

        sets = []
        for set_index in range(num_sets):
            if set_index in generated:
                sets.append(generated[set_index])
            else:
                try:
                    sets.append(
                        self._load_set_checked(directory, set_index)
                    )
                except CacheCorruptionError:
                    # Torn under our feet between verification and
                    # load (racing writer): regenerate just this set.
                    regenerated = generate_measurement_set(
                        build_components(config),
                        set_index,
                        engine=engine,
                    )
                    self._atomic_save(
                        directory, set_index, regenerated
                    )
                    self.stats.sets_generated += 1
                    sets.append(regenerated)
                    continue
                self.stats.sets_loaded += 1
        return sets

    def _atomic_save(
        self,
        directory: Path,
        set_index: int,
        measurement_set: MeasurementSet,
    ) -> None:
        """Write one set via a unique temp file so kills never leave
        torn npz and concurrent writers of the same entry never clobber
        each other's in-flight temp file.  A sha256 digest sidecar is
        published alongside so later loads can verify content."""
        final = self._set_path(directory, set_index)
        tmp = directory / f".tmp_set_{set_index:02d}.{os.getpid()}.npz"
        save_measurement_set(measurement_set, tmp)
        digest = hashlib.sha256(tmp.read_bytes()).hexdigest()
        os.replace(tmp, final)
        atomic_write_text(
            self._digest_path(directory, set_index), digest + "\n"
        )

    def _write_meta(
        self, directory: Path, config: SimulationConfig, engine: str
    ) -> None:
        """Write the entry's ``meta.json`` index record.

        Guarded by the entry's sidecar lock: two workers finishing the
        same cache entry concurrently (e.g. grid members sharing one
        underlying configuration) serialize their index mutation instead
        of interleaving temp-file writes.
        """
        meta = {
            "key": self.key_for(config, engine=engine),
            "salt": DATASET_CACHE_SALT,
            "engine": engine,
            "num_sets": config.dataset.num_sets,
            "packets_per_set": config.dataset.packets_per_set,
            "created": time.time(),
            "config": _canonical(config),
        }
        with FileLock(directory / ".meta.lock"):
            atomic_write_text(
                directory / "meta.json",
                json.dumps(meta, indent=2, sort_keys=True),
            )

    # -- inspection / invalidation ----------------------------------------
    def entries(self) -> list[CacheEntry]:
        """Metadata of every campaign directory under the cache root."""
        if not self.root.exists():
            return []
        found = []
        for directory in sorted(self.root.iterdir()):
            if not directory.is_dir() or directory.name == "campaigns":
                continue
            sets = sorted(directory.glob("set_*.npz"))
            expected = None
            created = None
            description = ""
            meta_path = directory / "meta.json"
            if meta_path.exists():
                try:
                    meta = json.loads(meta_path.read_text())
                    expected = meta.get("num_sets")
                    created = meta.get("created")
                    packets = meta.get("packets_per_set")
                    description = f"{expected} sets x {packets} packets"
                except (json.JSONDecodeError, OSError):
                    pass
            size = sum(p.stat().st_size for p in sets)
            found.append(
                CacheEntry(
                    key=directory.name,
                    path=directory,
                    num_sets_present=len(sets),
                    num_sets_expected=expected,
                    size_bytes=size,
                    created=created,
                    description=description,
                )
            )
        return found

    def invalidate(
        self,
        config: SimulationConfig | None = None,
        key: str | None = None,
        engine: str = "batch",
    ) -> int:
        """Remove one cached campaign (by config or key); returns 1 or 0.

        ``key`` must be a 16-hex-digit fingerprint (the
        :func:`config_fingerprint` format) — anything else is rejected
        so a malformed key can never escape the cache root or hit the
        ``campaigns/`` manifests.
        """
        if (config is None) == (key is None):
            raise ConfigurationError(
                "invalidate() needs exactly one of config= or key="
            )
        if config is not None:
            key = self.key_for(config, engine=engine)
        else:
            key = str(key)
            if len(key) != 16 or any(
                c not in "0123456789abcdef" for c in key
            ):
                raise ConfigurationError(
                    f"invalid cache key {key!r}: expected 16 hex digits"
                )
        directory = self.root / key
        if not directory.is_dir():
            return 0
        shutil.rmtree(directory)
        return 1

    def clear(self) -> int:
        """Remove every cached campaign; returns the number removed."""
        removed = 0
        for entry in self.entries():
            shutil.rmtree(entry.path)
            removed += 1
        return removed
