"""Per-step campaign manifests: the resume journal of a campaign run.

A manifest is one JSON file mapping step id -> {status, detail,
updated}.  The campaign runner marks each step ``running`` before
executing it and ``done``/``failed`` after, saving atomically on every
transition, so a killed campaign records exactly which steps completed;
the next run skips ``done`` steps and re-executes the rest.

Status transitions are safe under concurrent writers: :meth:`
CampaignManifest.mark` takes a sidecar file lock, re-reads the journal
from disk and merges its transition on top before the atomic save, so
two processes sharing one manifest (the parallel executor, or two
campaign invocations racing on the same directory) never drop each
other's records the way a plain load-modify-write would
(last-writer-wins).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from ..errors import ConfigurationError
from .locking import FileLock, atomic_write_text, lock_path_for

#: Step states persisted in the manifest.
STATUS_PENDING = "pending"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_FAILED = "failed"
#: Exhausted its retry budget (or failed permanently) under a
#: quarantining run: the step and its dependents were fenced off while
#: independent DAG branches completed.  Re-executed on the next run,
#: exactly like ``failed``.
STATUS_QUARANTINED = "quarantined"

_VALID_STATUSES = (
    STATUS_PENDING,
    STATUS_RUNNING,
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_QUARANTINED,
)

_MANIFEST_VERSION = 1


class CampaignManifest:
    """Load/update/save the per-step status journal of one campaign."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.steps: dict[str, dict] = {}

    @classmethod
    def load(cls, path: str | Path) -> "CampaignManifest":
        """Read a manifest from disk (empty manifest if absent)."""
        manifest = cls(path)
        if manifest.path.exists():
            data = json.loads(manifest.path.read_text())
            if data.get("version") != _MANIFEST_VERSION:
                raise ConfigurationError(
                    f"manifest {manifest.path} has version "
                    f"{data.get('version')!r}; expected {_MANIFEST_VERSION}"
                )
            manifest.steps = dict(data.get("steps", {}))
        return manifest

    def save(self) -> None:
        """Persist atomically (unique temp file + rename)."""
        atomic_write_text(
            self.path,
            json.dumps(
                {"version": _MANIFEST_VERSION, "steps": self.steps},
                indent=2,
                sort_keys=True,
            ),
        )

    def status(self, step_id: str) -> str:
        """Current status of a step (``pending`` when never recorded)."""
        return self.steps.get(step_id, {}).get("status", STATUS_PENDING)

    def mark(self, step_id: str, status: str, detail: str = "") -> None:
        """Record a status transition and save immediately.

        The update is a locked read-merge-write: under the sidecar file
        lock the on-disk journal is re-read and this transition applied
        on top, so transitions recorded by other processes between our
        loads are preserved instead of being overwritten.
        """
        if status not in _VALID_STATUSES:
            raise ConfigurationError(
                f"unknown step status {status!r}; expected one of "
                f"{_VALID_STATUSES}"
            )
        record = {
            "status": status,
            "detail": detail,
            "updated": time.time(),
        }
        with FileLock(lock_path_for(self.path)):
            if self.path.exists():
                try:
                    data = json.loads(self.path.read_text())
                except json.JSONDecodeError:
                    data = {}
                if data.get("version") == _MANIFEST_VERSION:
                    disk = dict(data.get("steps", {}))
                    previous = disk.get(step_id, {})
                    if "attempts" in previous:
                        record = dict(record)
                        record["attempts"] = previous["attempts"]
                    disk.update({step_id: record})
                    self.steps = disk
                else:
                    self.steps[step_id] = record
            else:
                self.steps[step_id] = record
            self.save()

    def record_attempt(self, step_id: str, entry: dict) -> None:
        """Append one retry-journal entry to a step's attempt history.

        Entries are produced by the runner's retry loop (attempt
        number, error, transient classification, chosen backoff,
        action taken) and survive subsequent :meth:`mark` transitions,
        so a finished manifest shows the full self-healing history of
        every step.  Locked read-merge-write like :meth:`mark`.
        """
        with FileLock(lock_path_for(self.path)):
            if self.path.exists():
                try:
                    data = json.loads(self.path.read_text())
                except json.JSONDecodeError:
                    data = {}
                if data.get("version") == _MANIFEST_VERSION:
                    self.steps = dict(data.get("steps", {}))
            record = dict(self.steps.get(step_id, {}))
            record.setdefault("status", STATUS_RUNNING)
            record.setdefault("detail", "")
            record["updated"] = time.time()
            record["attempts"] = list(record.get("attempts", [])) + [
                dict(entry)
            ]
            self.steps[step_id] = record
            self.save()

    def attempts(self, step_id: str) -> list[dict]:
        """The recorded attempt history of a step (empty when clean)."""
        return list(self.steps.get(step_id, {}).get("attempts", []))

    def counts(self) -> dict[str, int]:
        """Histogram of step statuses (only statuses that occur)."""
        out: dict[str, int] = {}
        for record in self.steps.values():
            status = record.get("status", STATUS_PENDING)
            out[status] = out.get(status, 0) + 1
        return out

    def reset(self) -> None:
        """Forget every recorded step (used by ``--fresh`` runs)."""
        with FileLock(lock_path_for(self.path)):
            self.steps = {}
            self.save()
