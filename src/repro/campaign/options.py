"""One declarative table for every shared ``repro`` option.

The campaign subcommands used to re-declare ``--cache-dir``,
``--workers``, ``--retries`` et al. per subparser, and the REST job
validation of ``repro serve`` would have had to re-declare them a third
time.  This module is the single source of truth: each
:class:`OptionSpec` describes one option (flag, type, default, help) and
is rendered into argparse parsers by :func:`add_option_group` and into
REST job-option validation by :func:`validate_job_options` — so CLI
flags and service job fields can never drift.

Option groups:

``common``
    ``--cache-dir/--workers/--verbose/--quiet`` — accepted by every
    subcommand.
``model``
    ``--model-dir`` — commands that resolve model checkpoints.
``robustness``
    ``--retries/--step-timeout/--no-quarantine/--faults`` — the
    self-healing knobs of the campaign commands.
``trace``
    ``--trace`` — the span-journal arm flag.
``execution``
    ``--fresh`` and ``--jobs`` — manifest replay control and DAG-level
    parallelism (``--jobs`` only where the command supports it).
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass

from .. import faults
from ..errors import ConfigurationError


def default_workers() -> int | None:
    """Worker default: ``$REPRO_BENCH_WORKERS`` (unset/empty/0 = serial)."""
    raw = os.environ.get("REPRO_BENCH_WORKERS", "").strip()
    try:
        return int(raw) or None
    except ValueError:
        return None


@dataclass(frozen=True)
class OptionSpec:
    """One shared option: argparse rendering + REST validation in one row."""

    #: Destination attribute name (``args.<name>`` / job-option key).
    name: str
    #: Command-line flag (``--cache-dir``).
    flag: str
    #: Help text rendered into ``--help``.
    help: str
    #: Value type for non-flag options (argparse ``type=``).
    type: type | None = None
    #: Static default (``default_factory`` wins when set).
    default: object = None
    #: Callable producing the default at parser-build time.
    default_factory: object = None
    #: ``store_true`` for boolean flags, ``None`` for valued options.
    action: str | None = None
    #: Whether the serve layer accepts this option in a job submission.
    service: bool = True

    def resolve_default(self) -> object:
        """The effective default value of this option."""
        if self.default_factory is not None:
            return self.default_factory()
        return self.default


def _faults_help() -> str:
    return (
        "arm a fault-injection plan for chaos testing: a built-in "
        f"name ({', '.join(sorted(faults.BUILTIN_PLANS))}) or the path "
        "of a plan JSON file (also: $REPRO_FAULT_PLAN)"
    )


#: The shared option table, keyed by group name.  ``service=False``
#: options are host-side resources the daemon owns (its cache/model
#: roots are fixed at startup) and are rejected in job submissions.
OPTION_GROUPS: dict[str, tuple[OptionSpec, ...]] = {
    "common": (
        OptionSpec(
            name="cache_dir",
            flag="--cache-dir",
            default=None,
            service=False,
            help="dataset cache root (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro-vvd/datasets)",
        ),
        OptionSpec(
            name="workers",
            flag="--workers",
            type=int,
            default_factory=default_workers,
            help="process-pool size for dataset generation "
            "(default: $REPRO_BENCH_WORKERS or serial)",
        ),
        OptionSpec(
            name="verbose",
            flag="--verbose",
            action="store_true",
            default=False,
            help="print per-step/per-set progress",
        ),
        OptionSpec(
            name="quiet",
            flag="--quiet",
            action="store_true",
            default=False,
            service=False,
            help="suppress summaries and sentinels (log level WARNING); "
            "corruption warnings and errors still print",
        ),
    ),
    "model": (
        OptionSpec(
            name="model_dir",
            flag="--model-dir",
            default=None,
            service=False,
            help="model checkpoint registry root (default: "
            "$REPRO_MODEL_DIR or ~/.cache/repro-vvd/models)",
        ),
    ),
    "robustness": (
        OptionSpec(
            name="retries",
            flag="--retries",
            type=int,
            default=3,
            help="max attempts per step for transient failures "
            "(1 = no retry; backoff is deterministic per step)",
        ),
        OptionSpec(
            name="step_timeout",
            flag="--step-timeout",
            type=float,
            default=None,
            help="per-attempt wall-time budget of worker steps in "
            "seconds; a hung worker is killed and the step requeued",
        ),
        OptionSpec(
            name="no_quarantine",
            flag="--no-quarantine",
            action="store_true",
            default=False,
            help="abort on the first permanently failed step instead of "
            "quarantining it and finishing independent DAG branches",
        ),
        OptionSpec(
            name="faults",
            flag="--faults",
            default=None,
            default_factory=None,
            help="",  # rendered lazily; see _faults_help()
        ),
    ),
    "trace": (
        OptionSpec(
            name="trace",
            flag="--trace",
            action="store_true",
            default=False,
            help="record a structured span journal under "
            "<campaign dir>/trace (inspect with `repro trace summary`); "
            "wall-clock side-channel only — payloads, cache keys and "
            "manifests stay byte-identical",
        ),
    ),
    "execution": (
        OptionSpec(
            name="fresh",
            flag="--fresh",
            action="store_true",
            default=False,
            help="ignore the campaign manifest and re-run every step",
        ),
        OptionSpec(
            name="jobs",
            flag="--jobs",
            type=int,
            default=1,
            help="worker processes scheduling independent steps "
            "concurrently (1 = serial; results are byte-identical "
            "either way)",
        ),
    ),
}


def iter_options(*groups: str) -> list[OptionSpec]:
    """The specs of the named groups, in declared order."""
    specs: list[OptionSpec] = []
    for group in groups:
        if group not in OPTION_GROUPS:
            raise ConfigurationError(
                f"unknown option group {group!r}; expected one of "
                f"{sorted(OPTION_GROUPS)}"
            )
        specs.extend(OPTION_GROUPS[group])
    return specs


def add_option_group(
    parser: argparse.ArgumentParser,
    group: str,
    *,
    only: tuple[str, ...] | None = None,
    help_overrides: dict[str, str] | None = None,
) -> None:
    """Render one option group into an argparse parser.

    ``only`` restricts to a subset of the group's option names (used by
    commands that take ``--fresh`` but not ``--jobs``);
    ``help_overrides`` swaps the help text per option name — help may
    vary per command, types and defaults may not.
    """
    overrides = dict(help_overrides or {})
    for spec in iter_options(group):
        if only is not None and spec.name not in only:
            continue
        text = overrides.get(spec.name, spec.help)
        if spec.name == "faults" and spec.name not in overrides:
            text = _faults_help()
        if spec.action is not None:
            parser.add_argument(spec.flag, action=spec.action, help=text)
        else:
            parser.add_argument(
                spec.flag,
                type=spec.type,
                default=spec.resolve_default(),
                help=text,
            )


#: Job-option names a service submission may carry, mapped to specs.
SERVICE_OPTIONS: dict[str, OptionSpec] = {
    spec.name: spec
    for group in ("common", "robustness", "trace", "execution")
    for spec in OPTION_GROUPS[group]
    if spec.service
}


def validate_job_options(payload: dict | None) -> dict:
    """Validate the ``options`` object of a REST job submission.

    Returns a complete option dict (defaults filled from the same table
    the CLI parsers use).  Unknown keys, host-side options and
    mistyped values raise :class:`ConfigurationError` — the daemon maps
    that to HTTP 400.
    """
    payload = dict(payload or {})
    unknown = sorted(set(payload) - set(SERVICE_OPTIONS))
    if unknown:
        raise ConfigurationError(
            f"unknown job option(s) {', '.join(unknown)}; accepted: "
            f"{', '.join(sorted(SERVICE_OPTIONS))}"
        )
    resolved: dict[str, object] = {}
    for name, spec in SERVICE_OPTIONS.items():
        if name not in payload:
            resolved[name] = spec.resolve_default()
            continue
        value = payload[name]
        if spec.action == "store_true":
            if not isinstance(value, bool):
                raise ConfigurationError(
                    f"job option {name!r} expects a boolean, got "
                    f"{type(value).__name__}"
                )
            resolved[name] = value
        elif value is None:
            resolved[name] = None
        elif spec.type is not None:
            if isinstance(value, bool) or not isinstance(
                value, (int, float, str)
            ):
                raise ConfigurationError(
                    f"job option {name!r} expects "
                    f"{spec.type.__name__}, got {type(value).__name__}"
                )
            try:
                resolved[name] = spec.type(value)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"job option {name!r} expects "
                    f"{spec.type.__name__}, got {value!r}"
                ) from None
        else:
            if not isinstance(value, str):
                raise ConfigurationError(
                    f"job option {name!r} expects a string, got "
                    f"{type(value).__name__}"
                )
            resolved[name] = value
    return resolved
