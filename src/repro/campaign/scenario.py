"""Declarative scenario registry for campaign orchestration.

A :class:`Scenario` names one complete measurement-campaign
configuration — environment geometry, human-trajectory preset, SNR
grid, packet budget and seed — and resolves to the concrete
:class:`~repro.config.SimulationConfig` the dataset generator consumes.
Named presets cover the paper's configurations (``paper``, ``reduced``,
``tiny``) plus new workloads (multi-human crossings, varied walking
speeds, a dense-office geometry) and a seconds-scale ``smoke`` scenario
used by the CI cached-campaign job.

Presets live in a module-level registry; :func:`register_scenario` adds
project-specific scenarios (see the README's "Running campaigns"
section) and the ``repro list-scenarios`` CLI prints every entry.
Parametric grids (:class:`~repro.campaign.grid.GridSpec`) register
their derived member scenarios here too — a grid member like
``smoke-grid/snr_db=6,seed=0,speed=0.4-0.8`` is a first-class scenario
every step builder accepts by name.

Validation is delegated to the scenario language in
:mod:`repro.campaign.params`: every field is a declared
:class:`~repro.campaign.params.Parameter` and cross-field rules are
declared :class:`~repro.campaign.params.Condition` objects, so an
inconsistent scenario fails at construction with the *full* list of
violations.  :meth:`Scenario.variant` delta-copies through the same
schema, and scenarios can be loaded from TOML/JSON files
(:func:`~repro.campaign.params.load_scenario_file`) or sampled from the
declared ranges (:func:`~repro.campaign.params.sample_scenarios`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..config import MobilityConfig, RoomConfig, SimulationConfig
from ..errors import ConfigurationError, NotFoundError

#: Room-geometry presets selectable by name from a scenario.
ROOM_PRESETS: dict[str, RoomConfig] = {
    # The paper's laboratory (Fig. 2): 8 x 6 m, three metal cabinets.
    "paper-lab": RoomConfig(),
    # A larger open-plan office: longer link, six desk/cabinet clusters
    # crowding the movement area with extra scatter paths.
    "dense-office": RoomConfig(
        width_m=10.0,
        depth_m=8.0,
        height_m=3.0,
        tx_position=(1.0, 4.0, 1.2),
        rx_position=(9.0, 4.0, 1.2),
        movement_area=(2.4, 1.4, 8.2, 6.6),
        scatterers=(
            (2.0, 6.8, 1.1, 0.30),
            (4.0, 1.0, 0.9, 0.26),
            (5.0, 6.9, 1.4, 0.28),
            (6.5, 1.1, 1.1, 0.24),
            (8.0, 6.7, 1.0, 0.27),
            (3.2, 7.2, 1.5, 0.22),
        ),
    ),
    # A long narrow corridor: 16 x 3 m, near-grazing wall bounces and a
    # LoS link running the full length; two doorframe scatterers.
    "corridor": RoomConfig(
        width_m=16.0,
        depth_m=3.0,
        height_m=3.0,
        tx_position=(1.0, 1.5, 1.2),
        rx_position=(15.0, 1.5, 1.2),
        movement_area=(2.0, 0.5, 14.0, 2.5),
        scatterers=(
            (5.0, 0.3, 1.0, 0.22),
            (10.0, 2.7, 1.0, 0.22),
        ),
    ),
}

#: SimulationConfig base presets selectable by name from a scenario.
_BASE_PRESETS = {
    "paper": SimulationConfig.paper_scale,
    "reduced": SimulationConfig.reduced,
    "tiny": SimulationConfig.tiny,
}


@dataclass(frozen=True)
class Scenario:
    """One named, declarative campaign configuration.

    Every field is plain data so scenarios hash stably into dataset
    cache keys; :meth:`resolve` materializes the corresponding
    :class:`~repro.config.SimulationConfig`.
    """

    #: Registry name (kebab-case by convention).
    name: str
    #: One-line summary printed by ``repro list-scenarios``.
    description: str
    #: Base dimension preset: ``"paper"``, ``"reduced"`` or ``"tiny"``.
    base: str = "reduced"
    #: Room-geometry preset key from :data:`ROOM_PRESETS`.
    room: str = "paper-lab"
    #: Human-trajectory preset (``"random-waypoint"`` or ``"crossing"``).
    trajectory: str = "random-waypoint"
    #: Number of simultaneous humans walking the movement area.
    num_humans: int = 1
    #: Walking-speed range override ``(min, max)`` in m/s.
    speed_range_mps: tuple[float, float] | None = None
    #: Per-walker speed assignment: ``"uniform"`` (all walkers share
    #: the full range) or ``"heterogeneous"`` (disjoint per-walker
    #: bands; see :func:`repro.channel.walker_speed_band`).
    speed_profile: str = "uniform"
    #: Operating-point SNR override for single-point campaigns.
    snr_db: float | None = None
    #: SNR grid evaluated by ``repro sweep`` (highest first in reports).
    snr_grid_db: tuple[float, ...] = (3.0, 6.0, 9.5, 12.0)
    #: Measurement-set count override (packet budget = sets x packets).
    num_sets: int | None = None
    #: Packets-per-set override.
    packets_per_set: int | None = None
    #: Campaign seed override.
    seed: int | None = None
    #: Concurrent links the ``repro stream`` campaign replays by
    #: default (each link walks its own seed-disjoint trajectory).
    stream_links: int = 4
    #: Arrival-process spec capacity runs drive the links with
    #: (``periodic[:R]``, ``poisson:R``, ``onoff:R:ON:OFF``,
    #: ``diurnal:R:P[:D]`` or ``mixed``).  Stream-only: never part of
    #: :meth:`resolve`, so dataset cache keys are unaffected.
    traffic: str = "periodic"
    #: QoS class mix capacity runs schedule against (see
    #: :data:`repro.stream.traffic.QOS_MIXES`).  Stream-only, like
    #: :attr:`traffic`.
    qos: str = "uniform"
    #: Free-form labels shown by ``repro list-scenarios``.
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        from .params import spec_from_scenario

        spec_from_scenario(self).validate().raise_for_errors()

    def variant(self, **overrides: object) -> "Scenario":
        """Delta-copy: this scenario with ``overrides`` applied.

        Routes through the :class:`~repro.campaign.params.ScenarioSpec`
        schema, so an inconsistent variant fails at construction with
        the full aggregated violation list (replacing the old ad-hoc
        ``dataclasses.replace`` chains).
        """
        from .params import spec_from_scenario

        spec = spec_from_scenario(self).delta(**overrides)
        return spec.to_scenario()

    def resolve(self) -> SimulationConfig:
        """Materialize the concrete :class:`SimulationConfig`.

        The base preset is loaded and each declared override is applied
        via ``dataclasses.replace``; dataclass validation runs on every
        intermediate config, so an inconsistent scenario fails here with
        a :class:`~repro.errors.ConfigurationError`.
        """
        config = _BASE_PRESETS[self.base]()
        if self.room != "paper-lab":
            config = config.replace(room=ROOM_PRESETS[self.room])
        mobility_changes: dict[str, object] = {}
        if self.trajectory != MobilityConfig.trajectory:
            mobility_changes["trajectory"] = self.trajectory
        if self.num_humans != 1:
            mobility_changes["num_humans"] = self.num_humans
        if self.speed_range_mps is not None:
            low, high = self.speed_range_mps
            mobility_changes["speed_min_mps"] = float(low)
            mobility_changes["speed_max_mps"] = float(high)
        if self.speed_profile != "uniform":
            mobility_changes["speed_profile"] = self.speed_profile
        if mobility_changes:
            config = config.replace(
                mobility=dataclasses.replace(
                    config.mobility, **mobility_changes
                )
            )
        if self.snr_db is not None:
            config = config.replace(
                channel=dataclasses.replace(
                    config.channel, snr_db=float(self.snr_db)
                )
            )
        dataset_changes: dict[str, object] = {}
        if self.num_sets is not None:
            dataset_changes["num_sets"] = self.num_sets
        if self.packets_per_set is not None:
            dataset_changes["packets_per_set"] = self.packets_per_set
            if self.packets_per_set <= config.dataset.skip_initial:
                dataset_changes["skip_initial"] = max(
                    1, self.packets_per_set // 4
                )
        if dataset_changes:
            config = config.replace(
                dataset=dataclasses.replace(
                    config.dataset, **dataset_changes
                )
            )
        if self.seed is not None:
            config = config.replace(seed=self.seed)
        return config


_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add a scenario to the registry (``replace=True`` to overwrite)."""
    if not replace and scenario.name in _REGISTRY:
        raise ConfigurationError(
            f"scenario {scenario.name!r} already registered; pass "
            "replace=True to overwrite"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name; raises listing the known names."""
    scenario = _REGISTRY.get(name)
    if scenario is None:
        raise NotFoundError(
            f"unknown scenario {name!r}; known scenarios: "
            f"{', '.join(sorted(_REGISTRY))}"
        )
    return scenario


def list_scenarios() -> list[Scenario]:
    """Every registered scenario, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def _register_builtins() -> None:
    """Populate the registry with the built-in presets."""
    builtins = [
        Scenario(
            name="paper",
            description=(
                "Paper-scale campaign: 15 sets x 1514 packets, 127 B "
                "PSDUs, 200 training epochs (slow in pure numpy)"
            ),
            base="paper",
            tags=("paper",),
        ),
        Scenario(
            name="reduced",
            description=(
                "Benchmark default: paper structure at tractable scale "
                "(15 sets x 100 packets)"
            ),
            base="reduced",
            tags=("paper", "default"),
        ),
        Scenario(
            name="tiny",
            description="Unit-test preset: full pipeline in seconds",
            base="tiny",
            snr_grid_db=(6.0, 9.5, 12.0),
            tags=("test",),
        ),
        Scenario(
            name="smoke",
            description=(
                "CI cached-campaign smoke: 3 sets x 8 packets, "
                "three-point SNR grid"
            ),
            base="tiny",
            num_sets=3,
            packets_per_set=8,
            # 9.5 dB is the base config's operating point, so `repro
            # generate --scenario smoke` materializes exactly the entry
            # the sweep's 9.5 dB point reads — CI asserts that handoff.
            snr_grid_db=(6.0, 9.5, 12.0),
            tags=("ci",),
        ),
        Scenario(
            name="multi-human-crossing",
            description=(
                "Two humans shuttling across the LoS: dense blockage "
                "events, crossing trajectories"
            ),
            base="reduced",
            trajectory="crossing",
            num_humans=2,
            tags=("new-workload",),
        ),
        Scenario(
            name="slow-walk",
            description=(
                "Slow walkers (0.15-0.35 m/s): long coherent blockage "
                "dwells"
            ),
            base="reduced",
            speed_range_mps=(0.15, 0.35),
            tags=("new-workload",),
        ),
        Scenario(
            name="brisk-walk",
            description=(
                "Brisk walkers (1.0-1.6 m/s): fast fading, short "
                "blockage events"
            ),
            base="reduced",
            speed_range_mps=(1.0, 1.6),
            tags=("new-workload",),
        ),
        Scenario(
            name="dense-office",
            description=(
                "10 x 8 m open-plan office, six scatter clusters, longer "
                "TX-RX link"
            ),
            base="reduced",
            room="dense-office",
            tags=("new-workload",),
        ),
        Scenario(
            name="brisk-crossing",
            description=(
                "Streaming showcase: one brisk walker (1.0-1.6 m/s) "
                "shuttling across the LoS — fast dynamics that starve "
                "reactive estimation"
            ),
            base="reduced",
            trajectory="crossing",
            speed_range_mps=(1.0, 1.6),
            stream_links=6,
            tags=("new-workload", "stream"),
        ),
        Scenario(
            name="corridor-commute",
            description=(
                "Grouped commuters in a 16 x 3 m corridor: a "
                "three-walker cluster with heterogeneous per-walker "
                "speeds sweeping the full-length LoS link"
            ),
            base="reduced",
            room="corridor",
            trajectory="grouped",
            num_humans=3,
            speed_range_mps=(0.6, 1.4),
            speed_profile="heterogeneous",
            tags=("new-workload", "grouped"),
        ),
        Scenario(
            name="stream-smoke",
            description=(
                "CI streaming smoke: single crossing walker, two "
                "links, seconds-scale closed loop"
            ),
            base="tiny",
            trajectory="crossing",
            stream_links=2,
            tags=("ci", "stream"),
        ),
    ]
    for scenario in builtins:
        register_scenario(scenario, replace=True)


_register_builtins()
