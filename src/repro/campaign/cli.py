"""The ``repro`` command line: orchestrated, cached, resumable campaigns.

Installed as the ``repro`` console script (``setup.py``) and runnable as
``python -m repro``.  Subcommands:

``list-scenarios``
    Print every registered scenario preset.
``generate``
    Materialize a scenario's measurement sets in the dataset cache.
``sweep``
    Run the SNR-sweep campaign of a scenario as a resumable step DAG.
``train``
    Train every Table 2 VVD variant of a scenario through the
    content-addressed model checkpoint registry (zero retraining on
    repeat runs).
``figure``
    Render paper tables/figures from the cached evaluation bundle.
``stream``
    Replay a scenario as N concurrent links and run closed-loop link
    adaptation (proactive VVD vs reactive vs genie) as a resumable
    campaign: cached link traces, checkpoint-resolved serving model,
    per-policy goodput/outage/deadline metrics and a timeline figure.
``capacity``
    Sweep a modeled serving fleet over link counts: heterogeneous
    per-link arrival processes (``--traffic``), QoS classes with
    deadlines (``--qos``), admission control and load shedding on the
    modeled prediction backend — reported as a per-class SLA summary
    (p50/p99/p999, deadline-miss and shed rates vs. targets) plus the
    links-sustained-vs-SLO capacity curve.  Pure queueing simulation:
    no PHY, no datasets, no checkpoints; byte-identical across
    ``--jobs`` and repeat runs.
``grid``
    Expand a parametric scenario grid, evaluate every derived scenario
    as an independent campaign step (scheduled as a topological
    wavefront over ``--jobs`` worker processes) and render the
    cross-scenario summary table from the aggregated results store.
``scenarios``
    The scenario language: ``load`` validates and registers scenarios
    (and custom rooms) from a TOML/JSON file, ``sample`` draws seeded
    uniformly-valid specs from the declared parameter ranges (one
    canonical JSON line per spec — diffable, so two runs with the same
    seed must print byte-identical output), and ``describe`` prints the
    declared parameter/condition catalog.
``cache``
    Inspect (``stats``/``list``) or invalidate (``clear``) the cache.

Every subcommand accepts ``--cache-dir`` (default: ``$REPRO_CACHE_DIR``
or ``~/.cache/repro-vvd/datasets``); model-training commands accept
``--model-dir`` (default: ``$REPRO_MODEL_DIR`` or
``~/.cache/repro-vvd/models``); dataset generation fans out over
``--workers`` processes (default: ``$REPRO_BENCH_WORKERS``); DAG-level
parallelism is ``--jobs`` (``repro grid``, ``repro stream``).

The campaign commands (``sweep``/``train``/``stream``/``grid``)
self-heal by default: transient step failures retry with deterministic
backoff (``--retries``), a worker attempt exceeding ``--step-timeout``
is killed and requeued, and a step that still fails is *quarantined* —
independent DAG branches finish and the report names the missing
points (``--no-quarantine`` restores abort-on-first-failure).
``--faults <plan>`` arms a seeded fault-injection plan (chaos testing);
runs that quarantined anything exit 3.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from pathlib import Path

from .. import faults
from ..errors import ReproError
from ..experiments.suite import SUITE_BUILDERS
from ..obs import analysis as obs_analysis, log, trace
from ..stream.policy import POLICY_BUILDERS, build_policy
from .cache import DATASET_CACHE_SALT, DatasetCache
from .grid import get_grid, grid_steps, list_grids
from .manifest import STATUS_DONE, STATUS_PENDING
from .models import MODEL_CACHE_SALT, ModelCheckpointRegistry
from .runner import (
    FIGURE_NAMES,
    Campaign,
    CampaignContext,
    RetryPolicy,
    capacity_steps,
    figure_steps,
    stream_steps,
    sweep_steps,
    train_steps,
)
from .scenario import get_scenario, list_scenarios


def _default_workers() -> int | None:
    """Worker default: ``$REPRO_BENCH_WORKERS`` (unset/empty/0 = serial)."""
    raw = os.environ.get("REPRO_BENCH_WORKERS", "").strip()
    try:
        return int(raw) or None
    except ValueError:
        return None


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="dataset cache root (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-vvd/datasets)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=_default_workers(),
        help="process-pool size for dataset generation "
        "(default: $REPRO_BENCH_WORKERS or serial)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print per-step/per-set progress",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress summaries and sentinels (log level WARNING); "
        "corruption warnings and errors still print",
    )


def _add_model_dir_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model-dir",
        default=None,
        help="model checkpoint registry root (default: $REPRO_MODEL_DIR "
        "or ~/.cache/repro-vvd/models)",
    )


def _add_robustness_options(parser: argparse.ArgumentParser) -> None:
    """Self-healing / chaos options shared by the campaign commands."""
    parser.add_argument(
        "--retries",
        type=int,
        default=3,
        help="max attempts per step for transient failures "
        "(1 = no retry; backoff is deterministic per step)",
    )
    parser.add_argument(
        "--step-timeout",
        type=float,
        default=None,
        help="per-attempt wall-time budget of worker steps in seconds; "
        "a hung worker is killed and the step requeued",
    )
    parser.add_argument(
        "--no-quarantine",
        action="store_true",
        help="abort on the first permanently failed step instead of "
        "quarantining it and finishing independent DAG branches",
    )
    parser.add_argument(
        "--faults",
        default=None,
        help="arm a fault-injection plan for chaos testing: a built-in "
        f"name ({', '.join(sorted(faults.BUILTIN_PLANS))}) or the path "
        "of a plan JSON file (also: $REPRO_FAULT_PLAN)",
    )


def _add_trace_option(parser: argparse.ArgumentParser) -> None:
    """``--trace`` flag shared by the campaign commands."""
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record a structured span journal under "
        "<campaign dir>/trace (inspect with `repro trace summary`); "
        "wall-clock side-channel only — payloads, cache keys and "
        "manifests stay byte-identical",
    )


def _arm_tracing(args: argparse.Namespace, directory: Path) -> bool:
    """Arm the span journal under ``<campaign dir>/trace``.

    Deliberately *not* part of the :func:`_campaign_dir` hash: a traced
    and an untraced invocation of the same campaign share one manifest
    and resume each other — the determinism firewall guarantees their
    payloads are byte-identical anyway.
    """
    if not getattr(args, "trace", False):
        return False
    trace.arm(directory / "trace")
    log.info(f"tracing armed: journal under {directory / 'trace'}")
    return True


def _retry_policy(args: argparse.Namespace) -> RetryPolicy:
    """Build the run's :class:`RetryPolicy` from the CLI options."""
    return RetryPolicy(
        max_attempts=args.retries, timeout_s=args.step_timeout
    )


def _arm_faults(
    args: argparse.Namespace, directory: Path
) -> "faults.FaultPlan | None":
    """Resolve and activate ``--faults`` under the campaign directory.

    The plan file and the cross-process firing ledger live under
    ``<campaign dir>/faults/``, so one armed plan injects each fault a
    bounded number of times across every worker and retry of the run —
    and a replay over the same directory sees the spent slots.
    """
    if args.faults is None:
        return None
    plan = faults.resolve_plan(
        args.faults, state_dir=directory / "faults" / "state"
    )
    faults.activate(plan, directory / "faults" / "plan.json")
    log.info(f"fault plan {plan.name!r} armed: {plan.summary()}")
    return plan


def _self_healing_summary(result, plan) -> None:
    """Print the retry/quarantine sentinels of one campaign run.

    Printed whenever something actually self-healed — or whenever a
    fault plan is armed, so chaos CI can grep the sentinels
    unconditionally (a clean chaos run prints ``... 0 step(s)
    quarantined``).
    """
    if plan is None and not result.retried and not result.quarantined:
        return
    line = (
        f"self-healing: {result.retried} step attempt(s) retried, "
        f"{len(result.quarantined)} step(s) quarantined"
    )
    if result.quarantined:
        line += ": " + ", ".join(result.quarantined)
    log.info(line)


def _campaign_dir(
    cache: DatasetCache, kind: str, name: str, options: dict
) -> Path:
    """Stable per-campaign directory under ``<cache root>/campaigns``.

    The id hashes the scenario/grid name plus the campaign options and
    the dataset code-version salt, so changing the SNR grid, the suite,
    the set count — or bumping the generator version — starts a fresh
    manifest, while re-running the identical command resumes the
    previous one.  (Pass ``--fresh`` to force re-execution after code
    changes the salt does not capture, e.g. estimator fixes.  ``--jobs``
    is deliberately *not* hashed: a serial and a parallel invocation of
    the same campaign share one manifest and resume each other.)
    """
    canonical = json.dumps(
        {
            "scenario": name,
            "kind": kind,
            "options": options,
            "salt": DATASET_CACHE_SALT,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(canonical.encode()).hexdigest()[:12]
    # Grid-member scenario names contain "/" (grid/axis=value,...);
    # flatten so every campaign stays one directory under campaigns/.
    safe = name.replace("/", "_")
    return cache.root / "campaigns" / f"{kind}-{safe}-{digest}"


# -- subcommands --------------------------------------------------------
def _cmd_list_scenarios(args: argparse.Namespace) -> int:
    scenarios = list_scenarios()
    name_width = max(len(s.name) for s in scenarios)
    log.info(f"{'scenario':<{name_width}}  {'base':<8} description")
    log.info("-" * (name_width + 60))
    for scenario in scenarios:
        tags = f"  [{', '.join(scenario.tags)}]" if scenario.tags else ""
        log.info(
            f"{scenario.name:<{name_width}}  {scenario.base:<8} "
            f"{scenario.description}{tags}"
        )
    log.info(
        f"\n{len(scenarios)} scenario(s); run one with e.g. "
        "`python -m repro generate --scenario <name>`"
    )
    grids = list_grids()
    if grids:
        log.info("")
        grid_width = max(len(g.name) for g in grids)
        log.info(f"{'grid':<{grid_width}}  {'members':>7}  axes")
        log.info("-" * (grid_width + 60))
        for spec in grids:
            axes = " x ".join(
                f"{axis}[{len(values)}]" for axis, values in spec.axes
            )
            log.info(
                f"{spec.name:<{grid_width}}  {spec.num_points:>7}  "
                f"{axes} — {spec.description}"
            )
        log.info(
            f"\n{len(grids)} grid(s); run one with e.g. "
            "`python -m repro grid --grid <name> --jobs 4`"
        )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    config = scenario.resolve()
    cache = DatasetCache(args.cache_dir)
    sets = cache.load_or_generate(
        config,
        workers=args.workers,
        engine=args.engine,
        verbose=args.verbose,
        force=args.force,
    )
    log.info(
        f"scenario {scenario.name!r}: {len(sets)} set(s) ready under "
        f"{cache.entry_dir(config, engine=args.engine)}"
    )
    log.info(f"cache: {cache.stats.summary()}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    config = scenario.resolve()
    snrs = tuple(args.snrs) if args.snrs else scenario.snr_grid_db
    cache = DatasetCache(args.cache_dir)
    options = {
        "snrs_db": sorted(float(s) for s in snrs),
        "num_sets": args.num_sets,
        "suite": args.suite,
    }
    directory = _campaign_dir(cache, "sweep", scenario.name, options)
    campaign = Campaign(
        f"sweep[{scenario.name}]",
        sweep_steps(
            config,
            snrs,
            num_sets=args.num_sets,
            suite=args.suite,
        ),
        directory,
    )
    context = CampaignContext(
        config,
        cache,
        directory,
        workers=args.workers,
        verbose=args.verbose,
    )
    plan = _arm_faults(args, directory)
    traced = _arm_tracing(args, directory)
    try:
        result = campaign.run(
            context,
            resume=not args.fresh,
            retry=_retry_policy(args),
            quarantine=not args.no_quarantine,
        )
    finally:
        if plan is not None:
            faults.deactivate()
        if traced:
            trace.disarm()
    log.info(context.read_output("report"))
    log.info(
        f"\nsteps: {len(result.executed)} executed, "
        f"{len(result.skipped)} resumed from manifest "
        f"({directory / 'manifest.json'})"
    )
    _self_healing_summary(result, plan)
    log.info(f"cache: {cache.stats.summary()}")
    if cache.stats.sets_generated == 0:
        log.info("no measurement sets regenerated (100% cache hits)")
    return 3 if result.quarantined else 0


def _invalidate_stale_train_steps(
    campaign: Campaign,
    context: CampaignContext,
    registry: ModelCheckpointRegistry,
) -> int:
    """Re-open ``done`` train steps whose checkpoint has vanished.

    The campaign manifest can outlive the model registry (a wiped or
    different ``--model-dir``); trusting it blindly would replay the
    stored report and claim "100% checkpoint hits" over models that no
    longer exist.  Any completed ``train@`` step whose recorded key is
    absent from the registry — or whose payload is unreadable — is
    marked ``pending`` again (along with the ``report`` step) so the
    run re-resolves it.  Returns the number of re-opened train steps.
    """
    stale = []
    for step in campaign.steps:
        if not step.step_id.startswith("train@"):
            continue
        if campaign.manifest.status(step.step_id) != STATUS_DONE:
            continue
        path = context.output_path(step.step_id)
        if not path.exists():
            # The runner will re-execute the step anyway (its skip
            # condition requires the output file), but the report step
            # must be re-opened too — fall through to the stale list.
            stale.append(step.step_id)
            continue
        try:
            key = json.loads(path.read_text())["key"]
        except (json.JSONDecodeError, KeyError, TypeError):
            stale.append(step.step_id)
            continue
        if not registry.has_key(key):
            stale.append(step.step_id)
    if stale:
        for step_id in stale:
            campaign.manifest.mark(step_id, STATUS_PENDING)
        campaign.manifest.mark("report", STATUS_PENDING)
    return len(stale)


def _cmd_train(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    config = scenario.resolve()
    cache = DatasetCache(args.cache_dir)
    registry = ModelCheckpointRegistry(args.model_dir)
    horizons = sorted(set(args.horizons))
    options = {
        "combinations": args.combinations,
        "horizons": horizons,
        "seed": args.seed,
        "model_salt": MODEL_CACHE_SALT,
    }
    directory = _campaign_dir(cache, "train", scenario.name, options)
    campaign = Campaign(
        f"train[{scenario.name}]",
        train_steps(
            config,
            num_combinations=args.combinations,
            horizons=horizons,
            seed=args.seed,
        ),
        directory,
    )
    context = CampaignContext(
        config,
        cache,
        directory,
        workers=args.workers,
        verbose=args.verbose,
        checkpoints=registry,
    )
    if not args.fresh:
        reopened = _invalidate_stale_train_steps(
            campaign, context, registry
        )
        if reopened and args.verbose:
            log.info(
                f"{reopened} completed step(s) lost their checkpoint; "
                "re-resolving"
            )
    plan = _arm_faults(args, directory)
    traced = _arm_tracing(args, directory)
    try:
        result = campaign.run(
            context,
            resume=not args.fresh,
            retry=_retry_policy(args),
            quarantine=not args.no_quarantine,
        )
    finally:
        if plan is not None:
            faults.deactivate()
        if traced:
            trace.disarm()
    log.info(context.read_output("report"))
    log.info(
        f"\nsteps: {len(result.executed)} executed, "
        f"{len(result.skipped)} resumed from manifest "
        f"({directory / 'manifest.json'})"
    )
    _self_healing_summary(result, plan)
    log.info(f"cache: {cache.stats.summary()}")
    log.info(f"models: {registry.stats.summary()}")
    if registry.stats.models_trained == 0:
        log.info("no models retrained (100% checkpoint hits)")
    return 3 if result.quarantined else 0


def _cmd_figure(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    config = scenario.resolve()
    names = []
    for name in args.names:
        if name == "all":
            names.extend(
                f for f in FIGURE_NAMES if f not in names
            )
        elif name not in names:
            names.append(name)
    cache = DatasetCache(args.cache_dir)
    options = {
        "figures": names,
        "combinations": args.combinations,
        "vvd_seed": args.seed,
    }
    directory = _campaign_dir(cache, "figure", scenario.name, options)
    campaign = Campaign(
        f"figure[{scenario.name}]",
        figure_steps(config, names),
        directory,
    )
    context = CampaignContext(
        config,
        cache,
        directory,
        workers=args.workers,
        verbose=args.verbose,
        options={
            "combinations": args.combinations,
            "vvd_seed": args.seed,
        },
        checkpoints=ModelCheckpointRegistry(args.model_dir),
    )
    traced = _arm_tracing(args, directory)
    try:
        result = campaign.run(context, resume=not args.fresh)
    finally:
        if traced:
            trace.disarm()
    for name in names:
        log.info(context.read_output(f"figure:{name}"))
        log.info("")
    log.info(
        f"steps: {len(result.executed)} executed, "
        f"{len(result.skipped)} resumed; cache: {cache.stats.summary()}"
    )
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from ..stream.traffic import get_qos_mix, validate_traffic

    scenario = get_scenario(args.scenario)
    config = scenario.resolve()
    policies = list(dict.fromkeys(args.policies))
    links = args.links if args.links is not None else scenario.stream_links
    # Heterogeneous-traffic options resolve CLI > scenario and are
    # validated before any dataset generation or training runs.  They
    # drive only the modeled SLA appendix printed after the replay
    # report — never the replay steps themselves — so they are
    # deliberately NOT part of the campaign-directory hash: existing
    # stream campaign directories (and their byte-identical payloads)
    # stay untouched.
    traffic = validate_traffic(
        args.traffic if args.traffic is not None else scenario.traffic
    )
    qos = args.qos if args.qos is not None else scenario.qos
    get_qos_mix(qos)
    # Probe-build every requested policy with its actual arguments so a
    # bad --defer-threshold fails here, before any dataset generation
    # or model training runs.
    needs_service = any(
        build_policy(
            name,
            **(
                {"defer_threshold": args.defer_threshold}
                if name == "proactive"
                and args.defer_threshold is not None
                else {}
            ),
        ).uses_predictions
        for name in policies
    )
    cache = DatasetCache(args.cache_dir)
    registry = ModelCheckpointRegistry(args.model_dir)
    options = {
        "links": links,
        "slots": args.slots,
        "policies": policies,
        "deadline_slots": args.deadline_slots,
        "horizon": args.horizon,
        "seed": args.seed,
        "defer_threshold": args.defer_threshold,
        "round_deadline_s": args.round_deadline,
        "model_salt": MODEL_CACHE_SALT if needs_service else None,
    }
    directory = _campaign_dir(cache, "stream", scenario.name, options)
    campaign = Campaign(
        f"stream[{scenario.name}]",
        stream_steps(
            config,
            links,
            policies,
            slots=args.slots,
            deadline_slots=args.deadline_slots,
            horizon=args.horizon,
            seed=args.seed,
            defer_threshold=args.defer_threshold,
            round_deadline_s=args.round_deadline,
        ),
        directory,
    )
    context = CampaignContext(
        config,
        cache,
        directory,
        workers=args.workers,
        verbose=args.verbose,
        options=options,
        checkpoints=registry,
    )
    if needs_service and not args.fresh:
        reopened = _invalidate_stale_train_steps(
            campaign, context, registry
        )
        if reopened and args.verbose:
            log.info(
                f"{reopened} completed step(s) lost their checkpoint; "
                "re-resolving"
            )
    plan = _arm_faults(args, directory)
    traced = _arm_tracing(args, directory)
    try:
        result = campaign.run(
            context,
            resume=not args.fresh,
            jobs=args.jobs,
            retry=_retry_policy(args),
            quarantine=not args.no_quarantine,
        )
    finally:
        if plan is not None:
            faults.deactivate()
        if traced:
            trace.disarm()
    log.info(context.read_output("report"))
    # Non-default traffic/QoS append the modeled per-class SLA summary
    # at the replayed link count (pure queueing simulation, in-process,
    # deterministic — see `repro capacity` for the full sweep).
    if traffic != "periodic" or qos != "uniform":
        from ..stream.capacity import simulate_capacity

        modeled = simulate_capacity(
            links, traffic=traffic, qos=qos, seed=args.seed
        )
        log.info("")
        log.info(modeled.sla_summary())
    service = context.shared.get(
        f"stream-service:{args.horizon}:{args.seed}"
    )
    # Under --jobs > 1 the policy simulations serve their predictions
    # in pool workers, so the parent service's counters stay zero —
    # print the wall-clock stats only when this process served.
    if service is not None and service.stats.predictions > 0:
        log.info(f"\nservice: {service.stats.summary()}")
    log.info(
        f"\nsteps: {len(result.executed)} executed, "
        f"{len(result.skipped)} resumed from manifest "
        f"({directory / 'manifest.json'})"
    )
    _self_healing_summary(result, plan)
    log.info(f"cache: {cache.stats.summary()}")
    if needs_service:
        log.info(f"models: {registry.stats.summary()}")
    # Under --jobs > 1 the stream@<policy> steps run in pool workers
    # whose private cache/registry instances are invisible to the
    # parent's counters, so a worker that (pathologically — e.g. after
    # a mid-campaign `repro cache clear`) regenerated data would not
    # show up here.  Claim the replay-purity sentinels only when no
    # simulation step executed out of process; repeat runs execute
    # nothing and keep printing them.
    workers_simulated = args.jobs > 1 and any(
        step_id.startswith("stream@") for step_id in result.executed
    )
    if cache.stats.sets_generated == 0 and not workers_simulated:
        log.info("no measurement sets regenerated (100% cache hits)")
    if (
        needs_service
        and registry.stats.models_trained == 0
        and not workers_simulated
    ):
        log.info("no models retrained (100% checkpoint hits)")
    return 3 if result.quarantined else 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    from ..stream.traffic import get_qos_mix, validate_traffic

    traffic = validate_traffic(args.traffic)
    get_qos_mix(args.qos)
    link_counts = sorted({int(n) for n in args.links})
    cache = DatasetCache(args.cache_dir)
    options = {
        "links": link_counts,
        "duration_s": args.duration,
        "traffic": traffic,
        "qos": args.qos,
        "seed": args.seed,
        "service_pps": args.service_pps,
        "admission_limit": args.admission_limit,
    }
    directory = _campaign_dir(cache, "capacity", args.qos, options)
    campaign = Campaign(
        f"capacity[{traffic}/{args.qos}]",
        capacity_steps(
            link_counts,
            duration_s=args.duration,
            traffic=traffic,
            qos=args.qos,
            seed=args.seed,
            service_pps=args.service_pps,
            admission_limit=args.admission_limit,
        ),
        directory,
    )
    # Capacity points are pure queueing simulations — the context's
    # scenario config is never consulted, but CampaignContext wants
    # one; the stream smoke preset resolves without touching the cache.
    context = CampaignContext(
        get_scenario("stream-smoke").resolve(),
        cache,
        directory,
        workers=args.workers,
        verbose=args.verbose,
        options=options,
    )
    plan = _arm_faults(args, directory)
    traced = _arm_tracing(args, directory)
    try:
        result = campaign.run(
            context,
            resume=not args.fresh,
            jobs=args.jobs,
            retry=_retry_policy(args),
            quarantine=not args.no_quarantine,
        )
    finally:
        if plan is not None:
            faults.deactivate()
        if traced:
            trace.disarm()
    log.info(context.read_output("report"))
    log.info(
        f"\nsteps: {len(result.executed)} executed, "
        f"{len(result.skipped)} resumed from manifest "
        f"({directory / 'manifest.json'})"
    )
    _self_healing_summary(result, plan)
    log.info(
        f"capacity: {len(link_counts)} modeled point(s) over "
        f"{args.jobs} job(s); no datasets or checkpoints touched"
    )
    return 3 if result.quarantined else 0


def _invalidate_stale_grid_steps(
    campaign: Campaign,
    context: CampaignContext,
    registry: ModelCheckpointRegistry,
) -> int:
    """Re-open ``done`` grid points whose VVD checkpoint has vanished.

    The grid analogue of :func:`_invalidate_stale_train_steps`: any
    completed ``point@`` step whose recorded model key is absent from
    the registry — or whose payload is unreadable — is marked
    ``pending`` again (along with the ``report`` step) so the run
    re-resolves it instead of replaying a stale "100% checkpoint hits"
    claim.  Returns the number of re-opened point steps.
    """
    stale = []
    for step in campaign.steps:
        if not step.step_id.startswith("point@"):
            continue
        if campaign.manifest.status(step.step_id) != STATUS_DONE:
            continue
        path = context.output_path(step.step_id)
        if not path.exists():
            stale.append(step.step_id)
            continue
        try:
            record = json.loads(path.read_text())["record"]
            key = record.get("vvd", {}).get("key")
        except (json.JSONDecodeError, KeyError, TypeError):
            stale.append(step.step_id)
            continue
        if key is not None and not registry.has_key(key):
            stale.append(step.step_id)
    if stale:
        for step_id in stale:
            campaign.manifest.mark(step_id, STATUS_PENDING)
        campaign.manifest.mark("report", STATUS_PENDING)
    return len(stale)


def _cmd_grid(args: argparse.Namespace) -> int:
    from .grid import format_axis_value

    spec = get_grid(args.grid)
    points = spec.expand()
    needs_models = args.vvd or "horizon" in spec.axis_names
    cache = DatasetCache(args.cache_dir)
    registry = (
        ModelCheckpointRegistry(args.model_dir) if needs_models else None
    )
    options = {
        "axes": [
            [axis, [format_axis_value(v) for v in values]]
            for axis, values in spec.axes
        ],
        "base": spec.base,
        "suite": args.suite,
        "vvd": bool(args.vvd),
        "horizon": args.horizon if args.vvd else None,
        "vvd_seed": args.seed,
        "model_salt": MODEL_CACHE_SALT if needs_models else None,
    }
    directory = _campaign_dir(cache, "grid", spec.name, options)
    campaign = Campaign(
        f"grid[{spec.name}]",
        grid_steps(
            spec,
            points,
            suite=args.suite,
            vvd=args.vvd,
            horizon=args.horizon,
            vvd_seed=args.seed,
        ),
        directory,
    )
    context = CampaignContext(
        get_scenario(spec.base).resolve(),
        cache,
        directory,
        workers=args.workers,
        verbose=args.verbose,
        options=options,
        checkpoints=registry,
    )
    if needs_models and not args.fresh:
        reopened = _invalidate_stale_grid_steps(
            campaign, context, registry
        )
        if reopened and args.verbose:
            log.info(
                f"{reopened} completed point(s) lost their checkpoint; "
                "re-resolving"
            )
    plan = _arm_faults(args, directory)
    traced = _arm_tracing(args, directory)
    try:
        result = campaign.run(
            context,
            resume=not args.fresh,
            jobs=args.jobs,
            retry=_retry_policy(args),
            quarantine=not args.no_quarantine,
        )
    finally:
        if plan is not None:
            faults.deactivate()
        if traced:
            trace.disarm()
    log.info(context.read_output("report"))
    sets_generated = 0
    models_trained = 0
    for step_id in result.executed:
        if not step_id.startswith("point@"):
            continue
        provenance = json.loads(context.read_output(step_id)).get(
            "provenance", {}
        )
        sets_generated += provenance.get("sets_generated", 0)
        models_trained += provenance.get("models_trained", 0)
    log.info(
        f"\nsteps: {len(result.executed)} executed, "
        f"{len(result.skipped)} resumed from manifest "
        f"({directory / 'manifest.json'})"
    )
    _self_healing_summary(result, plan)
    log.info(
        f"grid: {len(points)} derived scenario(s) over {args.jobs} "
        f"job(s); aggregate at {directory / 'results' / 'results.json'}"
    )
    log.info(
        f"cache: {sets_generated} set(s) generated, "
        f"{models_trained} model(s) trained (summed over executed steps)"
    )
    if sets_generated == 0:
        log.info("no measurement sets regenerated (100% cache hits)")
    if needs_models and models_trained == 0:
        log.info("no models retrained (100% checkpoint hits)")
    return 3 if result.quarantined else 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from .params import (
        describe_parameters,
        load_scenario_file,
        sample_scenario_specs,
        spec_from_scenario,
    )

    if args.action == "describe":
        if args.scenario is not None:
            scenario = get_scenario(args.scenario)
            report = spec_from_scenario(scenario).validate()
            log.info(spec_from_scenario(scenario).canonical_json())
            log.info(report.summary())
            for line in report.warnings:
                log.warning(f"warning: {line}")
            return 0
        log.info(describe_parameters())
        return 0
    if args.action == "load":
        if args.file is None:
            raise ReproError(
                "scenarios load needs a file argument, e.g. "
                "`repro scenarios load my-scenarios.toml`"
            )
        loaded = load_scenario_file(
            args.file, register=True, replace=args.replace
        )
        for scenario in loaded:
            log.info(f"registered scenario {scenario.name!r}")
        log.info(f"{len(loaded)} scenario(s) loaded from {args.file}")
        return 0
    if args.action == "sample":
        specs = sample_scenario_specs(
            args.seed, args.count, scale=args.scale
        )
        for spec in specs:
            log.info(spec.canonical_json())
        if args.register:
            from .scenario import register_scenario

            for spec in specs:
                register_scenario(spec.to_scenario(), replace=True)
            log.info(f"{len(specs)} sampled scenario(s) registered")
        return 0
    raise ReproError(f"unknown scenarios action {args.action!r}")


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = DatasetCache(args.cache_dir)
    if args.action == "stats":
        entries = cache.entries()
        total = sum(entry.size_bytes for entry in entries)
        complete = sum(1 for entry in entries if entry.complete)
        log.info(f"cache root: {cache.root}")
        log.info(
            f"{len(entries)} entr(ies), {complete} complete, "
            f"{total / 1e6:.1f} MB"
        )
        return 0
    if args.action == "list":
        entries = cache.entries()
        if not entries:
            log.info(f"cache root {cache.root} is empty")
            return 0
        for entry in entries:
            state = "complete" if entry.complete else "partial"
            log.info(
                f"{entry.key}  {entry.num_sets_present} set(s)  "
                f"{entry.size_bytes / 1e6:8.1f} MB  {state}  "
                f"{entry.description}"
            )
        return 0
    if args.action == "clear":
        if args.key:
            removed = cache.invalidate(key=args.key)
        else:
            removed = cache.clear()
        log.info(f"removed {removed} cache entr(ies) from {cache.root}")
        return 0
    raise ReproError(f"unknown cache action {args.action!r}")


def _cmd_trace(args: argparse.Namespace) -> int:
    """Inspect the span journal of a traced campaign run.

    Journal resolution: ``--journal`` wins; otherwise the newest
    ``campaigns/*/trace/trace.jsonl`` under the cache root.  A missing
    or empty journal is reported and exits 0 — `repro trace summary`
    must be safe to run on a box that never traced anything.
    """
    if args.journal is not None:
        journal = Path(args.journal)
    else:
        cache = DatasetCache(args.cache_dir)
        journal = obs_analysis.discover_journal(cache.root)
        if journal is None:
            log.info(
                f"no trace journal under {cache.root / 'campaigns'} — "
                "run a campaign with --trace first"
            )
            return 0
    records = obs_analysis.load_journal(journal)
    if args.action == "summary":
        log.info(obs_analysis.render_summary(records))
        return 0
    if args.action == "timeline":
        log.info(obs_analysis.render_timeline(records))
        return 0
    if args.action == "critical-path":
        log.info(obs_analysis.render_critical_path(records))
        return 0
    if args.action == "export":
        if not args.chrome:
            raise ReproError(
                "trace export currently supports only --chrome"
            )
        output = (
            Path(args.output)
            if args.output is not None
            else Path(journal).with_name("trace.chrome.json")
        )
        obs_analysis.write_chrome(records, output)
        log.info(
            f"wrote {len(records)} record(s) as Chrome trace JSON to "
            f"{output} (open via chrome://tracing or ui.perfetto.dev)"
        )
        return 0
    raise ReproError(f"unknown trace action {args.action!r}")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Campaign orchestration for the VVD reproduction: "
        "named scenarios, a content-addressed dataset cache and "
        "resumable sweep/figure campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser(
        "list-scenarios", help="print every registered scenario preset"
    )
    p_list.set_defaults(func=_cmd_list_scenarios)

    p_generate = sub.add_parser(
        "generate",
        help="materialize a scenario's measurement sets in the cache",
    )
    p_generate.add_argument(
        "--scenario", default="reduced", help="scenario preset name"
    )
    p_generate.add_argument(
        "--engine",
        choices=("batch", "scalar"),
        default="batch",
        help="packet-processing engine",
    )
    p_generate.add_argument(
        "--force",
        action="store_true",
        help="discard any cached entry and regenerate",
    )
    _add_common_options(p_generate)
    p_generate.set_defaults(func=_cmd_generate)

    p_sweep = sub.add_parser(
        "sweep",
        help="run the resumable SNR-sweep campaign of a scenario",
    )
    p_sweep.add_argument(
        "--scenario", default="reduced", help="scenario preset name"
    )
    p_sweep.add_argument(
        "--snrs",
        type=float,
        nargs="+",
        default=None,
        help="SNR grid in dB (default: the scenario's grid)",
    )
    p_sweep.add_argument(
        "--num-sets",
        type=int,
        default=None,
        help="limit the measurement sets per point",
    )
    p_sweep.add_argument(
        "--suite",
        default="baseline",
        choices=sorted(SUITE_BUILDERS),
        help="estimator line-up evaluated per point",
    )
    p_sweep.add_argument(
        "--fresh",
        action="store_true",
        help="ignore the campaign manifest and re-run every step",
    )
    _add_robustness_options(p_sweep)
    _add_trace_option(p_sweep)
    _add_common_options(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_train = sub.add_parser(
        "train",
        help="train every Table 2 VVD variant through the model "
        "checkpoint registry",
    )
    p_train.add_argument(
        "--scenario", default="reduced", help="scenario preset name"
    )
    p_train.add_argument(
        "--combinations",
        type=int,
        default=None,
        help="limit the Table 2 combinations trained (default: all)",
    )
    p_train.add_argument(
        "--horizons",
        type=int,
        nargs="+",
        default=[0],
        help="prediction horizons in camera frames (0 = VVD-Current; "
        "'0 1 3' pre-trains every Fig. 11 variant)",
    )
    p_train.add_argument(
        "--seed",
        type=int,
        default=7,
        help="weight-init / shuffle seed of every variant",
    )
    p_train.add_argument(
        "--fresh",
        action="store_true",
        help="ignore the campaign manifest and re-run every step",
    )
    _add_robustness_options(p_train)
    _add_trace_option(p_train)
    _add_model_dir_option(p_train)
    _add_common_options(p_train)
    p_train.set_defaults(func=_cmd_train)

    p_figure = sub.add_parser(
        "figure",
        help="render paper tables/figures from the cached bundle",
    )
    p_figure.add_argument(
        "names",
        nargs="+",
        choices=FIGURE_NAMES + ("all",),
        help="figures/tables to render ('all' = the full report)",
    )
    p_figure.add_argument(
        "--scenario", default="reduced", help="scenario preset name"
    )
    p_figure.add_argument(
        "--combinations",
        type=int,
        default=3,
        help="Table 2 combinations evaluated (15 = full)",
    )
    p_figure.add_argument(
        "--seed",
        type=int,
        default=7,
        help="VVD training seed; match the `repro train --seed` that "
        "warmed the model registry so figures retrain nothing",
    )
    p_figure.add_argument(
        "--fresh",
        action="store_true",
        help="ignore the campaign manifest and re-run every step",
    )
    _add_trace_option(p_figure)
    _add_model_dir_option(p_figure)
    _add_common_options(p_figure)
    p_figure.set_defaults(func=_cmd_figure)

    p_stream = sub.add_parser(
        "stream",
        help="run closed-loop link adaptation over N concurrent links",
    )
    p_stream.add_argument(
        "--scenario",
        default="stream-smoke",
        help="scenario preset name",
    )
    p_stream.add_argument(
        "--links",
        type=int,
        default=None,
        help="concurrent links replayed (default: the scenario's "
        "stream_links)",
    )
    p_stream.add_argument(
        "--slots",
        type=int,
        default=None,
        help="packet slots per link (default: the scenario's "
        "packets-per-set)",
    )
    p_stream.add_argument(
        "--policies",
        nargs="+",
        default=["proactive", "reactive"],
        choices=sorted(POLICY_BUILDERS),
        help="link-adaptation policies simulated (each gets its own "
        "pass over the same event stream)",
    )
    p_stream.add_argument(
        "--deadline-slots",
        type=int,
        default=3,
        help="slots a packet may wait before it counts as a "
        "deadline miss",
    )
    p_stream.add_argument(
        "--horizon",
        type=int,
        default=0,
        help="prediction horizon in camera frames of the serving model "
        "(compensates camera->decision latency)",
    )
    p_stream.add_argument(
        "--seed",
        type=int,
        default=7,
        help="serving-model training seed; match `repro train --seed` "
        "to reuse its checkpoints",
    )
    p_stream.add_argument(
        "--defer-threshold",
        type=float,
        default=None,
        help="proactive blockage-probability defer threshold "
        "(default: the policy's 0.9; 1.0 disables deferral)",
    )
    p_stream.add_argument(
        "--round-deadline",
        type=float,
        default=None,
        help="wall-time budget in seconds of one micro-batched "
        "prediction round; an overrunning or failing round degrades "
        "to the reactive fallback for that slot instead of aborting",
    )
    p_stream.add_argument(
        "--traffic",
        default=None,
        help="arrival-process spec for the modeled SLA appendix "
        "(periodic[:pps], poisson:pps, onoff:pps:on_s:off_s, "
        "diurnal:pps:period_s:depth, or 'mixed'; default: the "
        "scenario's traffic, usually 'periodic' = replay only)",
    )
    p_stream.add_argument(
        "--qos",
        default=None,
        help="QoS class mix of the modeled SLA appendix ('uniform' or "
        "'triple'; default: the scenario's qos)",
    )
    p_stream.add_argument(
        "--fresh",
        action="store_true",
        help="ignore the campaign manifest and re-run every step",
    )
    p_stream.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes running independent per-policy "
        "simulations concurrently (1 = serial)",
    )
    _add_robustness_options(p_stream)
    _add_trace_option(p_stream)
    _add_model_dir_option(p_stream)
    _add_common_options(p_stream)
    p_stream.set_defaults(func=_cmd_stream)

    p_capacity = sub.add_parser(
        "capacity",
        help="sweep the modeled serving fleet over link counts: "
        "heterogeneous traffic, QoS deadlines, admission control and "
        "the links-sustained-vs-SLO capacity curve",
    )
    p_capacity.add_argument(
        "--links",
        type=int,
        nargs="+",
        default=[16, 32, 64, 96, 128],
        help="link counts swept (one modeled capacity point each)",
    )
    p_capacity.add_argument(
        "--duration",
        type=float,
        default=30.0,
        help="simulated horizon in seconds per point",
    )
    p_capacity.add_argument(
        "--traffic",
        default="mixed",
        help="per-link arrival-process spec (periodic[:pps], "
        "poisson:pps, onoff:pps:on_s:off_s, diurnal:pps:period_s:depth "
        "or 'mixed' = rotate all four across links)",
    )
    p_capacity.add_argument(
        "--qos",
        default="triple",
        help="QoS class mix ('uniform' or 'triple' = "
        "gold/silver/bronze deadlines)",
    )
    p_capacity.add_argument(
        "--seed",
        type=int,
        default=7,
        help="arrival-process / class-assignment seed (same seed, "
        "byte-identical payloads — across --jobs and machines)",
    )
    p_capacity.add_argument(
        "--service-pps",
        type=float,
        default=900.0,
        help="modeled prediction-backend throughput in predictions/s",
    )
    p_capacity.add_argument(
        "--admission-limit",
        type=int,
        default=512,
        help="admission-controlled queue depth; arrivals beyond it "
        "shed the youngest lower-priority request (or themselves)",
    )
    p_capacity.add_argument(
        "--fresh",
        action="store_true",
        help="ignore the campaign manifest and re-run every step",
    )
    p_capacity.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes simulating independent capacity points "
        "concurrently (1 = serial; results are byte-identical either "
        "way)",
    )
    _add_robustness_options(p_capacity)
    _add_trace_option(p_capacity)
    _add_common_options(p_capacity)
    p_capacity.set_defaults(func=_cmd_capacity)

    p_grid = sub.add_parser(
        "grid",
        help="expand a parametric scenario grid and evaluate every "
        "derived scenario on a parallel wavefront",
    )
    p_grid.add_argument(
        "--grid",
        default="smoke-grid",
        help="grid spec name (see list-scenarios)",
    )
    p_grid.add_argument(
        "--suite",
        default="quick",
        choices=sorted(SUITE_BUILDERS),
        help="estimator line-up evaluated per derived scenario",
    )
    p_grid.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes scheduling independent grid points "
        "concurrently (1 = serial; results are byte-identical either "
        "way)",
    )
    p_grid.add_argument(
        "--vvd",
        action="store_true",
        help="resolve a VVD model per grid point through the model "
        "checkpoint registry (implied by a 'horizon' grid axis)",
    )
    p_grid.add_argument(
        "--horizon",
        type=int,
        default=0,
        help="VVD prediction horizon used with --vvd (a 'horizon' "
        "grid axis overrides it per member)",
    )
    p_grid.add_argument(
        "--seed",
        type=int,
        default=7,
        help="VVD training seed of --vvd / horizon-axis members",
    )
    p_grid.add_argument(
        "--fresh",
        action="store_true",
        help="ignore the campaign manifest and re-run every step",
    )
    _add_robustness_options(p_grid)
    _add_trace_option(p_grid)
    _add_model_dir_option(p_grid)
    _add_common_options(p_grid)
    p_grid.set_defaults(func=_cmd_grid)

    p_scenarios = sub.add_parser(
        "scenarios",
        help="scenario language: load TOML/JSON files, sample seeded "
        "specs, describe the declared schema",
    )
    p_scenarios.add_argument(
        "action",
        choices=("load", "sample", "describe"),
        help="load = validate+register a scenario file, sample = draw "
        "seeded valid specs, describe = print the parameter catalog",
    )
    p_scenarios.add_argument(
        "file",
        nargs="?",
        default=None,
        help="with 'load': the .toml/.json scenario file",
    )
    p_scenarios.add_argument(
        "--replace",
        action="store_true",
        help="with 'load': overwrite already-registered names",
    )
    p_scenarios.add_argument(
        "--seed",
        type=int,
        default=7,
        help="with 'sample': the draw seed (same seed, same specs — "
        "across processes and machines)",
    )
    p_scenarios.add_argument(
        "--count",
        type=int,
        default=10,
        help="with 'sample': number of valid specs to draw",
    )
    p_scenarios.add_argument(
        "--scale",
        choices=("full", "tiny"),
        default="full",
        help="with 'sample': 'tiny' clamps dimensions to seconds-scale "
        "specs (used by the fuzz round-trip tests)",
    )
    p_scenarios.add_argument(
        "--register",
        action="store_true",
        help="with 'sample': also register the sampled scenarios",
    )
    p_scenarios.add_argument(
        "--scenario",
        default=None,
        help="with 'describe': print one registered scenario's "
        "effective spec + validation summary instead of the catalog",
    )
    p_scenarios.set_defaults(func=_cmd_scenarios)

    p_cache = sub.add_parser(
        "cache", help="inspect or invalidate the dataset cache"
    )
    p_cache.add_argument(
        "action",
        choices=("stats", "list", "clear"),
        help="stats = totals, list = per-entry, clear = invalidate",
    )
    p_cache.add_argument(
        "--key",
        default=None,
        help="with 'clear': remove only this cache key",
    )
    _add_common_options(p_cache)
    p_cache.set_defaults(func=_cmd_cache)

    p_trace = sub.add_parser(
        "trace",
        help="inspect the span journal of a traced campaign run "
        "(arm one with `repro <cmd> ... --trace`)",
    )
    p_trace.add_argument(
        "action",
        choices=("summary", "timeline", "critical-path", "export"),
        help="summary = wall-time accounting + per-site totals, "
        "timeline = chronological nested listing, critical-path = "
        "dominant-child drill-down, export = write a viewer file",
    )
    p_trace.add_argument(
        "--journal",
        default=None,
        help="trace.jsonl path (default: the newest "
        "campaigns/*/trace/trace.jsonl under the cache root)",
    )
    p_trace.add_argument(
        "--chrome",
        action="store_true",
        help="with 'export': write Chrome trace-viewer JSON "
        "(chrome://tracing / ui.perfetto.dev)",
    )
    p_trace.add_argument(
        "--output",
        default=None,
        help="with 'export': output path (default: trace.chrome.json "
        "beside the journal)",
    )
    p_trace.add_argument(
        "--cache-dir",
        default=None,
        help="dataset cache root searched for journals (default: "
        "$REPRO_CACHE_DIR or ~/.cache/repro-vvd/datasets)",
    )
    p_trace.set_defaults(func=_cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    quiet = getattr(args, "quiet", False)
    if quiet:
        log.set_level("WARNING")
    try:
        return args.func(args)
    except ReproError as exc:
        log.error(f"error: {exc}")
        return 2
    finally:
        if quiet:
            log.reset()


if __name__ == "__main__":  # pragma: no cover - python -m repro.campaign.cli
    sys.exit(main())
