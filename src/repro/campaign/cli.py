"""The ``repro`` command line: a thin shell over :mod:`repro.api`.

Installed as the ``repro`` console script (``setup.py``) and runnable as
``python -m repro``.  Subcommands:

``list-scenarios``
    Print every registered scenario preset.
``generate``
    Materialize a scenario's measurement sets in the dataset cache.
``sweep``
    Run the SNR-sweep campaign of a scenario as a resumable step DAG.
``train``
    Train every Table 2 VVD variant of a scenario through the
    content-addressed model checkpoint registry (zero retraining on
    repeat runs).
``figure``
    Render paper tables/figures from the cached evaluation bundle.
``stream``
    Replay a scenario as N concurrent links and run closed-loop link
    adaptation (proactive VVD vs reactive vs genie) as a resumable
    campaign: cached link traces, checkpoint-resolved serving model,
    per-policy goodput/outage/deadline metrics and a timeline figure.
``capacity``
    Sweep a modeled serving fleet over link counts: heterogeneous
    per-link arrival processes (``--traffic``), QoS classes with
    deadlines (``--qos``), admission control and load shedding on the
    modeled prediction backend — reported as a per-class SLA summary
    (p50/p99/p999, deadline-miss and shed rates vs. targets) plus the
    links-sustained-vs-SLO capacity curve.  Pure queueing simulation:
    no PHY, no datasets, no checkpoints; byte-identical across
    ``--jobs`` and repeat runs.
``grid``
    Expand a parametric scenario grid, evaluate every derived scenario
    as an independent campaign step (scheduled as a topological
    wavefront over ``--jobs`` worker processes) and render the
    cross-scenario summary table from the aggregated results store.
``serve``
    Run the campaign-as-a-service daemon: a crash-persistent job queue
    under ``<cache-dir>/jobs/`` plus a REST API (``POST /v1/jobs`` et
    al.) through which many clients share one cache and one run of any
    campaign (see docs/ARCHITECTURE.md, "Campaign-as-a-service").
``scenarios``
    The scenario language: ``load`` validates and registers scenarios
    (and custom rooms) from a TOML/JSON file, ``sample`` draws seeded
    uniformly-valid specs from the declared parameter ranges (one
    canonical JSON line per spec — diffable, so two runs with the same
    seed must print byte-identical output), and ``describe`` prints the
    declared parameter/condition catalog.
``cache``
    Inspect (``stats``/``list``) or invalidate (``clear``) the cache.

Every subcommand accepts ``--cache-dir`` (default: ``$REPRO_CACHE_DIR``
or ``~/.cache/repro-vvd/datasets``); model-training commands accept
``--model-dir`` (default: ``$REPRO_MODEL_DIR`` or
``~/.cache/repro-vvd/models``); dataset generation fans out over
``--workers`` processes (default: ``$REPRO_BENCH_WORKERS``); DAG-level
parallelism is ``--jobs`` (``repro grid``, ``repro stream``).

The campaign commands (``sweep``/``train``/``stream``/``grid``)
self-heal by default: transient step failures retry with deterministic
backoff (``--retries``), a worker attempt exceeding ``--step-timeout``
is killed and requeued, and a step that still fails is *quarantined* —
independent DAG branches finish and the report names the missing
points (``--no-quarantine`` restores abort-on-first-failure).
``--faults <plan>`` arms a seeded fault-injection plan (chaos testing);
runs that quarantined anything exit 3.

Orchestration itself lives in :mod:`repro.api`: every campaign
subcommand builds a typed :class:`~repro.api.jobs.JobSpec` from its
parsed arguments and hands it to :func:`repro.api.prepare` — the same
facade the ``repro serve`` HTTP handlers and third-party code call —
so a campaign behaves identically no matter which surface submitted
it.  Exit codes come from the :mod:`repro.api.errors` table.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..api import errors as api_errors
from ..api.facade import RunOptions, prepare
from ..api.jobs import (
    CapacityJob,
    FigureJob,
    GridJob,
    JobSpec,
    StreamJob,
    SweepJob,
    TrainJob,
)
from ..errors import ReproError
from ..experiments.suite import SUITE_BUILDERS
from ..obs import analysis as obs_analysis, log
from ..stream.policy import POLICY_BUILDERS
from .cache import DatasetCache
from .grid import list_grids
from .options import add_option_group
from .runner import FIGURE_NAMES
from .scenario import get_scenario, list_scenarios


def _run_options(args: argparse.Namespace) -> RunOptions:
    """Map parsed campaign arguments onto facade run options."""
    return RunOptions(
        jobs=getattr(args, "jobs", 1),
        fresh=getattr(args, "fresh", False),
        retries=getattr(args, "retries", 3),
        step_timeout=getattr(args, "step_timeout", None),
        no_quarantine=getattr(args, "no_quarantine", False),
        faults=getattr(args, "faults", None),
        trace=getattr(args, "trace", False),
    )


def _run_campaign_command(
    spec: JobSpec, args: argparse.Namespace
) -> int:
    """Prepare, run and print one campaign; returns the exit code."""
    handle = prepare(
        spec,
        cache_dir=args.cache_dir,
        model_dir=getattr(args, "model_dir", None),
        workers=args.workers,
        verbose=args.verbose,
    )
    outcome = handle.run(_run_options(args))
    log.info(outcome.text)
    return outcome.exit_code


# -- subcommands --------------------------------------------------------
def _cmd_list_scenarios(args: argparse.Namespace) -> int:
    scenarios = list_scenarios()
    name_width = max(len(s.name) for s in scenarios)
    log.info(f"{'scenario':<{name_width}}  {'base':<8} description")
    log.info("-" * (name_width + 60))
    for scenario in scenarios:
        tags = f"  [{', '.join(scenario.tags)}]" if scenario.tags else ""
        log.info(
            f"{scenario.name:<{name_width}}  {scenario.base:<8} "
            f"{scenario.description}{tags}"
        )
    log.info(
        f"\n{len(scenarios)} scenario(s); run one with e.g. "
        "`python -m repro generate --scenario <name>`"
    )
    grids = list_grids()
    if grids:
        log.info("")
        grid_width = max(len(g.name) for g in grids)
        log.info(f"{'grid':<{grid_width}}  {'members':>7}  axes")
        log.info("-" * (grid_width + 60))
        for spec in grids:
            axes = " x ".join(
                f"{axis}[{len(values)}]" for axis, values in spec.axes
            )
            log.info(
                f"{spec.name:<{grid_width}}  {spec.num_points:>7}  "
                f"{axes} — {spec.description}"
            )
        log.info(
            f"\n{len(grids)} grid(s); run one with e.g. "
            "`python -m repro grid --grid <name> --jobs 4`"
        )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    config = scenario.resolve()
    cache = DatasetCache(args.cache_dir)
    sets = cache.load_or_generate(
        config,
        workers=args.workers,
        engine=args.engine,
        verbose=args.verbose,
        force=args.force,
    )
    log.info(
        f"scenario {scenario.name!r}: {len(sets)} set(s) ready under "
        f"{cache.entry_dir(config, engine=args.engine)}"
    )
    log.info(f"cache: {cache.stats.summary()}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = SweepJob(
        scenario=args.scenario,
        snrs=tuple(args.snrs) if args.snrs else None,
        num_sets=args.num_sets,
        suite=args.suite,
    )
    return _run_campaign_command(spec, args)


def _cmd_train(args: argparse.Namespace) -> int:
    spec = TrainJob(
        scenario=args.scenario,
        combinations=args.combinations,
        horizons=tuple(args.horizons),
        seed=args.seed,
    )
    return _run_campaign_command(spec, args)


def _cmd_figure(args: argparse.Namespace) -> int:
    spec = FigureJob(
        names=tuple(args.names),
        scenario=args.scenario,
        combinations=args.combinations,
        seed=args.seed,
    )
    return _run_campaign_command(spec, args)


def _cmd_stream(args: argparse.Namespace) -> int:
    spec = StreamJob(
        scenario=args.scenario,
        links=args.links,
        slots=args.slots,
        policies=tuple(args.policies),
        deadline_slots=args.deadline_slots,
        horizon=args.horizon,
        seed=args.seed,
        defer_threshold=args.defer_threshold,
        round_deadline=args.round_deadline,
        traffic=args.traffic,
        qos=args.qos,
    )
    return _run_campaign_command(spec, args)


def _cmd_capacity(args: argparse.Namespace) -> int:
    spec = CapacityJob(
        links=tuple(args.links),
        duration=args.duration,
        traffic=args.traffic,
        qos=args.qos,
        seed=args.seed,
        service_pps=args.service_pps,
        admission_limit=args.admission_limit,
    )
    return _run_campaign_command(spec, args)


def _cmd_grid(args: argparse.Namespace) -> int:
    spec = GridJob(
        grid=args.grid,
        suite=args.suite,
        vvd=bool(args.vvd),
        horizon=args.horizon,
        seed=args.seed,
    )
    return _run_campaign_command(spec, args)


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..serve.daemon import serve_forever

    return serve_forever(
        cache_dir=args.cache_dir,
        model_dir=args.model_dir,
        host=args.host,
        port=args.port,
        slots=args.slots,
        workers=args.workers,
        verbose=args.verbose,
    )


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from .params import (
        describe_parameters,
        load_scenario_file,
        sample_scenario_specs,
        spec_from_scenario,
    )

    if args.action == "describe":
        if args.scenario is not None:
            scenario = get_scenario(args.scenario)
            report = spec_from_scenario(scenario).validate()
            log.info(spec_from_scenario(scenario).canonical_json())
            log.info(report.summary())
            for line in report.warnings:
                log.warning(f"warning: {line}")
            return 0
        log.info(describe_parameters())
        return 0
    if args.action == "load":
        if args.file is None:
            raise ReproError(
                "scenarios load needs a file argument, e.g. "
                "`repro scenarios load my-scenarios.toml`"
            )
        loaded = load_scenario_file(
            args.file, register=True, replace=args.replace
        )
        for scenario in loaded:
            log.info(f"registered scenario {scenario.name!r}")
        log.info(f"{len(loaded)} scenario(s) loaded from {args.file}")
        return 0
    if args.action == "sample":
        specs = sample_scenario_specs(
            args.seed, args.count, scale=args.scale
        )
        for spec in specs:
            log.info(spec.canonical_json())
        if args.register:
            from .scenario import register_scenario

            for spec in specs:
                register_scenario(spec.to_scenario(), replace=True)
            log.info(f"{len(specs)} sampled scenario(s) registered")
        return 0
    raise ReproError(f"unknown scenarios action {args.action!r}")


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = DatasetCache(args.cache_dir)
    if args.action == "stats":
        entries = cache.entries()
        total = sum(entry.size_bytes for entry in entries)
        complete = sum(1 for entry in entries if entry.complete)
        log.info(f"cache root: {cache.root}")
        log.info(
            f"{len(entries)} entr(ies), {complete} complete, "
            f"{total / 1e6:.1f} MB"
        )
        return 0
    if args.action == "list":
        entries = cache.entries()
        if not entries:
            log.info(f"cache root {cache.root} is empty")
            return 0
        for entry in entries:
            state = "complete" if entry.complete else "partial"
            log.info(
                f"{entry.key}  {entry.num_sets_present} set(s)  "
                f"{entry.size_bytes / 1e6:8.1f} MB  {state}  "
                f"{entry.description}"
            )
        return 0
    if args.action == "clear":
        if args.key:
            removed = cache.invalidate(key=args.key)
        else:
            removed = cache.clear()
        log.info(f"removed {removed} cache entr(ies) from {cache.root}")
        return 0
    raise ReproError(f"unknown cache action {args.action!r}")


def _cmd_trace(args: argparse.Namespace) -> int:
    """Inspect the span journal of a traced campaign run.

    Journal resolution: ``--journal`` wins; otherwise the newest
    ``campaigns/*/trace/trace.jsonl`` under the cache root.  A missing
    or empty journal is reported and exits 0 — `repro trace summary`
    must be safe to run on a box that never traced anything.
    """
    if args.journal is not None:
        journal = Path(args.journal)
    else:
        cache = DatasetCache(args.cache_dir)
        journal = obs_analysis.discover_journal(cache.root)
        if journal is None:
            log.info(
                f"no trace journal under {cache.root / 'campaigns'} — "
                "run a campaign with --trace first"
            )
            return 0
    records = obs_analysis.load_journal(journal)
    if args.action == "summary":
        log.info(obs_analysis.render_summary(records))
        return 0
    if args.action == "timeline":
        log.info(obs_analysis.render_timeline(records))
        return 0
    if args.action == "critical-path":
        log.info(obs_analysis.render_critical_path(records))
        return 0
    if args.action == "export":
        if not args.chrome:
            raise ReproError(
                "trace export currently supports only --chrome"
            )
        output = (
            Path(args.output)
            if args.output is not None
            else Path(journal).with_name("trace.chrome.json")
        )
        obs_analysis.write_chrome(records, output)
        log.info(
            f"wrote {len(records)} record(s) as Chrome trace JSON to "
            f"{output} (open via chrome://tracing or ui.perfetto.dev)"
        )
        return 0
    raise ReproError(f"unknown trace action {args.action!r}")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for tests and docs).

    Shared options render from the one table in
    :mod:`repro.campaign.options` — the same table ``repro serve``
    validates REST job options against — so flags cannot drift between
    the CLI and the service.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Campaign orchestration for the VVD reproduction: "
        "named scenarios, a content-addressed dataset cache and "
        "resumable sweep/figure campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser(
        "list-scenarios", help="print every registered scenario preset"
    )
    p_list.set_defaults(func=_cmd_list_scenarios)

    p_generate = sub.add_parser(
        "generate",
        help="materialize a scenario's measurement sets in the cache",
    )
    p_generate.add_argument(
        "--scenario", default="reduced", help="scenario preset name"
    )
    p_generate.add_argument(
        "--engine",
        choices=("batch", "scalar"),
        default="batch",
        help="packet-processing engine",
    )
    p_generate.add_argument(
        "--force",
        action="store_true",
        help="discard any cached entry and regenerate",
    )
    add_option_group(p_generate, "common")
    p_generate.set_defaults(func=_cmd_generate)

    p_sweep = sub.add_parser(
        "sweep",
        help="run the resumable SNR-sweep campaign of a scenario",
    )
    p_sweep.add_argument(
        "--scenario", default="reduced", help="scenario preset name"
    )
    p_sweep.add_argument(
        "--snrs",
        type=float,
        nargs="+",
        default=None,
        help="SNR grid in dB (default: the scenario's grid)",
    )
    p_sweep.add_argument(
        "--num-sets",
        type=int,
        default=None,
        help="limit the measurement sets per point",
    )
    p_sweep.add_argument(
        "--suite",
        default="baseline",
        choices=sorted(SUITE_BUILDERS),
        help="estimator line-up evaluated per point",
    )
    add_option_group(p_sweep, "execution", only=("fresh",))
    add_option_group(p_sweep, "robustness")
    add_option_group(p_sweep, "trace")
    add_option_group(p_sweep, "common")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_train = sub.add_parser(
        "train",
        help="train every Table 2 VVD variant through the model "
        "checkpoint registry",
    )
    p_train.add_argument(
        "--scenario", default="reduced", help="scenario preset name"
    )
    p_train.add_argument(
        "--combinations",
        type=int,
        default=None,
        help="limit the Table 2 combinations trained (default: all)",
    )
    p_train.add_argument(
        "--horizons",
        type=int,
        nargs="+",
        default=[0],
        help="prediction horizons in camera frames (0 = VVD-Current; "
        "'0 1 3' pre-trains every Fig. 11 variant)",
    )
    p_train.add_argument(
        "--seed",
        type=int,
        default=7,
        help="weight-init / shuffle seed of every variant",
    )
    add_option_group(p_train, "execution", only=("fresh",))
    add_option_group(p_train, "robustness")
    add_option_group(p_train, "trace")
    add_option_group(p_train, "model")
    add_option_group(p_train, "common")
    p_train.set_defaults(func=_cmd_train)

    p_figure = sub.add_parser(
        "figure",
        help="render paper tables/figures from the cached bundle",
    )
    p_figure.add_argument(
        "names",
        nargs="+",
        choices=FIGURE_NAMES + ("all",),
        help="figures/tables to render ('all' = the full report)",
    )
    p_figure.add_argument(
        "--scenario", default="reduced", help="scenario preset name"
    )
    p_figure.add_argument(
        "--combinations",
        type=int,
        default=3,
        help="Table 2 combinations evaluated (15 = full)",
    )
    p_figure.add_argument(
        "--seed",
        type=int,
        default=7,
        help="VVD training seed; match the `repro train --seed` that "
        "warmed the model registry so figures retrain nothing",
    )
    add_option_group(p_figure, "execution", only=("fresh",))
    add_option_group(p_figure, "trace")
    add_option_group(p_figure, "model")
    add_option_group(p_figure, "common")
    p_figure.set_defaults(func=_cmd_figure)

    p_stream = sub.add_parser(
        "stream",
        help="run closed-loop link adaptation over N concurrent links",
    )
    p_stream.add_argument(
        "--scenario",
        default="stream-smoke",
        help="scenario preset name",
    )
    p_stream.add_argument(
        "--links",
        type=int,
        default=None,
        help="concurrent links replayed (default: the scenario's "
        "stream_links)",
    )
    p_stream.add_argument(
        "--slots",
        type=int,
        default=None,
        help="packet slots per link (default: the scenario's "
        "packets-per-set)",
    )
    p_stream.add_argument(
        "--policies",
        nargs="+",
        default=["proactive", "reactive"],
        choices=sorted(POLICY_BUILDERS),
        help="link-adaptation policies simulated (each gets its own "
        "pass over the same event stream)",
    )
    p_stream.add_argument(
        "--deadline-slots",
        type=int,
        default=3,
        help="slots a packet may wait before it counts as a "
        "deadline miss",
    )
    p_stream.add_argument(
        "--horizon",
        type=int,
        default=0,
        help="prediction horizon in camera frames of the serving model "
        "(compensates camera->decision latency)",
    )
    p_stream.add_argument(
        "--seed",
        type=int,
        default=7,
        help="serving-model training seed; match `repro train --seed` "
        "to reuse its checkpoints",
    )
    p_stream.add_argument(
        "--defer-threshold",
        type=float,
        default=None,
        help="proactive blockage-probability defer threshold "
        "(default: the policy's 0.9; 1.0 disables deferral)",
    )
    p_stream.add_argument(
        "--round-deadline",
        type=float,
        default=None,
        help="wall-time budget in seconds of one micro-batched "
        "prediction round; an overrunning or failing round degrades "
        "to the reactive fallback for that slot instead of aborting",
    )
    p_stream.add_argument(
        "--traffic",
        default=None,
        help="arrival-process spec for the modeled SLA appendix "
        "(periodic[:pps], poisson:pps, onoff:pps:on_s:off_s, "
        "diurnal:pps:period_s:depth, or 'mixed'; default: the "
        "scenario's traffic, usually 'periodic' = replay only)",
    )
    p_stream.add_argument(
        "--qos",
        default=None,
        help="QoS class mix of the modeled SLA appendix ('uniform' or "
        "'triple'; default: the scenario's qos)",
    )
    add_option_group(
        p_stream,
        "execution",
        help_overrides={
            "jobs": "worker processes running independent per-policy "
            "simulations concurrently (1 = serial)",
        },
    )
    add_option_group(p_stream, "robustness")
    add_option_group(p_stream, "trace")
    add_option_group(p_stream, "model")
    add_option_group(p_stream, "common")
    p_stream.set_defaults(func=_cmd_stream)

    p_capacity = sub.add_parser(
        "capacity",
        help="sweep the modeled serving fleet over link counts: "
        "heterogeneous traffic, QoS deadlines, admission control and "
        "the links-sustained-vs-SLO capacity curve",
    )
    p_capacity.add_argument(
        "--links",
        type=int,
        nargs="+",
        default=[16, 32, 64, 96, 128],
        help="link counts swept (one modeled capacity point each)",
    )
    p_capacity.add_argument(
        "--duration",
        type=float,
        default=30.0,
        help="simulated horizon in seconds per point",
    )
    p_capacity.add_argument(
        "--traffic",
        default="mixed",
        help="per-link arrival-process spec (periodic[:pps], "
        "poisson:pps, onoff:pps:on_s:off_s, diurnal:pps:period_s:depth "
        "or 'mixed' = rotate all four across links)",
    )
    p_capacity.add_argument(
        "--qos",
        default="triple",
        help="QoS class mix ('uniform' or 'triple' = "
        "gold/silver/bronze deadlines)",
    )
    p_capacity.add_argument(
        "--seed",
        type=int,
        default=7,
        help="arrival-process / class-assignment seed (same seed, "
        "byte-identical payloads — across --jobs and machines)",
    )
    p_capacity.add_argument(
        "--service-pps",
        type=float,
        default=900.0,
        help="modeled prediction-backend throughput in predictions/s",
    )
    p_capacity.add_argument(
        "--admission-limit",
        type=int,
        default=512,
        help="admission-controlled queue depth; arrivals beyond it "
        "shed the youngest lower-priority request (or themselves)",
    )
    add_option_group(
        p_capacity,
        "execution",
        help_overrides={
            "jobs": "worker processes simulating independent capacity "
            "points concurrently (1 = serial; results are "
            "byte-identical either way)",
        },
    )
    add_option_group(p_capacity, "robustness")
    add_option_group(p_capacity, "trace")
    add_option_group(p_capacity, "common")
    p_capacity.set_defaults(func=_cmd_capacity)

    p_grid = sub.add_parser(
        "grid",
        help="expand a parametric scenario grid and evaluate every "
        "derived scenario on a parallel wavefront",
    )
    p_grid.add_argument(
        "--grid",
        default="smoke-grid",
        help="grid spec name (see list-scenarios)",
    )
    p_grid.add_argument(
        "--suite",
        default="quick",
        choices=sorted(SUITE_BUILDERS),
        help="estimator line-up evaluated per derived scenario",
    )
    p_grid.add_argument(
        "--vvd",
        action="store_true",
        help="resolve a VVD model per grid point through the model "
        "checkpoint registry (implied by a 'horizon' grid axis)",
    )
    p_grid.add_argument(
        "--horizon",
        type=int,
        default=0,
        help="VVD prediction horizon used with --vvd (a 'horizon' "
        "grid axis overrides it per member)",
    )
    p_grid.add_argument(
        "--seed",
        type=int,
        default=7,
        help="VVD training seed of --vvd / horizon-axis members",
    )
    add_option_group(
        p_grid,
        "execution",
        help_overrides={
            "jobs": "worker processes scheduling independent grid "
            "points concurrently (1 = serial; results are "
            "byte-identical either way)",
        },
    )
    add_option_group(p_grid, "robustness")
    add_option_group(p_grid, "trace")
    add_option_group(p_grid, "model")
    add_option_group(p_grid, "common")
    p_grid.set_defaults(func=_cmd_grid)

    p_serve = sub.add_parser(
        "serve",
        help="run the campaign-as-a-service daemon: persistent job "
        "queue + REST API over the shared cache",
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=8315,
        help="TCP port of the REST API (0 = pick a free port)",
    )
    p_serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address of the REST API",
    )
    p_serve.add_argument(
        "--slots",
        type=int,
        default=1,
        help="campaign worker slots: jobs executed concurrently "
        "(further submissions queue)",
    )
    add_option_group(p_serve, "model")
    add_option_group(p_serve, "common")
    p_serve.set_defaults(func=_cmd_serve)

    p_scenarios = sub.add_parser(
        "scenarios",
        help="scenario language: load TOML/JSON files, sample seeded "
        "specs, describe the declared schema",
    )
    p_scenarios.add_argument(
        "action",
        choices=("load", "sample", "describe"),
        help="load = validate+register a scenario file, sample = draw "
        "seeded valid specs, describe = print the parameter catalog",
    )
    p_scenarios.add_argument(
        "file",
        nargs="?",
        default=None,
        help="with 'load': the .toml/.json scenario file",
    )
    p_scenarios.add_argument(
        "--replace",
        action="store_true",
        help="with 'load': overwrite already-registered names",
    )
    p_scenarios.add_argument(
        "--seed",
        type=int,
        default=7,
        help="with 'sample': the draw seed (same seed, same specs — "
        "across processes and machines)",
    )
    p_scenarios.add_argument(
        "--count",
        type=int,
        default=10,
        help="with 'sample': number of valid specs to draw",
    )
    p_scenarios.add_argument(
        "--scale",
        choices=("full", "tiny"),
        default="full",
        help="with 'sample': 'tiny' clamps dimensions to seconds-scale "
        "specs (used by the fuzz round-trip tests)",
    )
    p_scenarios.add_argument(
        "--register",
        action="store_true",
        help="with 'sample': also register the sampled scenarios",
    )
    p_scenarios.add_argument(
        "--scenario",
        default=None,
        help="with 'describe': print one registered scenario's "
        "effective spec + validation summary instead of the catalog",
    )
    p_scenarios.set_defaults(func=_cmd_scenarios)

    p_cache = sub.add_parser(
        "cache", help="inspect or invalidate the dataset cache"
    )
    p_cache.add_argument(
        "action",
        choices=("stats", "list", "clear"),
        help="stats = totals, list = per-entry, clear = invalidate",
    )
    p_cache.add_argument(
        "--key",
        default=None,
        help="with 'clear': remove only this cache key",
    )
    add_option_group(p_cache, "common")
    p_cache.set_defaults(func=_cmd_cache)

    p_trace = sub.add_parser(
        "trace",
        help="inspect the span journal of a traced campaign run "
        "(arm one with `repro <cmd> ... --trace`)",
    )
    p_trace.add_argument(
        "action",
        choices=("summary", "timeline", "critical-path", "export"),
        help="summary = wall-time accounting + per-site totals, "
        "timeline = chronological nested listing, critical-path = "
        "dominant-child drill-down, export = write a viewer file",
    )
    p_trace.add_argument(
        "--journal",
        default=None,
        help="trace.jsonl path (default: the newest "
        "campaigns/*/trace/trace.jsonl under the cache root)",
    )
    p_trace.add_argument(
        "--chrome",
        action="store_true",
        help="with 'export': write Chrome trace-viewer JSON "
        "(chrome://tracing / ui.perfetto.dev)",
    )
    p_trace.add_argument(
        "--output",
        default=None,
        help="with 'export': output path (default: trace.chrome.json "
        "beside the journal)",
    )
    p_trace.add_argument(
        "--cache-dir",
        default=None,
        help="dataset cache root searched for journals (default: "
        "$REPRO_CACHE_DIR or ~/.cache/repro-vvd/datasets)",
    )
    p_trace.set_defaults(func=_cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    :class:`~repro.errors.ReproError` failures map to their exit code
    through the one outcome table in :mod:`repro.api.errors` — the
    same table the service maps HTTP statuses from.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    quiet = getattr(args, "quiet", False)
    if quiet:
        log.set_level("WARNING")
    try:
        return args.func(args)
    except ReproError as exc:
        log.error(f"error: {exc}")
        return api_errors.exit_code_for(
            api_errors.classify_exception(exc)
        )
    finally:
        if quiet:
            log.reset()


if __name__ == "__main__":  # pragma: no cover - python -m repro.campaign.cli
    sys.exit(main())
