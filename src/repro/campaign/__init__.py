"""Campaign orchestration: scenarios, dataset cache, resumable runs.

The subsystem that turns the reproduction into an orchestrated,
restartable system (see docs/ARCHITECTURE.md):

- :mod:`repro.campaign.scenario` — declarative :class:`Scenario`
  dataclasses and a registry of named presets (the paper's
  configurations plus multi-human crossings, varied walking speeds and
  a dense-office geometry).
- :mod:`repro.campaign.cache` — a content-addressed on-disk cache of
  generated measurement sets, keyed by a stable hash of the resolved
  configuration plus a code-version salt.
- :mod:`repro.campaign.models` — the matching content-addressed registry
  of trained VVD model checkpoints, keyed by the dataset cache key, the
  Table 2 split, the prediction horizon and the seed.
- :mod:`repro.campaign.manifest` — the per-step JSON journal that makes
  killed campaigns resumable.
- :mod:`repro.campaign.runner` — campaign DAG execution and the sweep /
  figure step builders.
- :mod:`repro.campaign.cli` — the ``repro`` / ``python -m repro``
  command line.
"""

from .cache import (
    CacheEntry,
    CacheStats,
    DatasetCache,
    config_fingerprint,
    default_cache_dir,
)
from .manifest import CampaignManifest
from .models import (
    ModelCheckpointRegistry,
    ModelEntry,
    ModelRegistryStats,
    default_model_dir,
    model_fingerprint,
)
from .runner import (
    FIGURE_NAMES,
    Campaign,
    CampaignContext,
    CampaignResult,
    CampaignStep,
    figure_steps,
    render_figure,
    stream_steps,
    sweep_steps,
    train_steps,
)
from .scenario import (
    ROOM_PRESETS,
    Scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
)

__all__ = [
    "CacheEntry",
    "CacheStats",
    "DatasetCache",
    "config_fingerprint",
    "default_cache_dir",
    "CampaignManifest",
    "ModelCheckpointRegistry",
    "ModelEntry",
    "ModelRegistryStats",
    "default_model_dir",
    "model_fingerprint",
    "FIGURE_NAMES",
    "Campaign",
    "CampaignContext",
    "CampaignResult",
    "CampaignStep",
    "figure_steps",
    "render_figure",
    "stream_steps",
    "sweep_steps",
    "train_steps",
    "ROOM_PRESETS",
    "Scenario",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
]
