"""Campaign orchestration: scenarios, dataset cache, resumable runs.

The subsystem that turns the reproduction into an orchestrated,
restartable system (see docs/ARCHITECTURE.md):

- :mod:`repro.campaign.scenario` — declarative :class:`Scenario`
  dataclasses and a registry of named presets (the paper's
  configurations plus multi-human crossings, varied walking speeds,
  dense-office and corridor geometries, grouped walkers).
- :mod:`repro.campaign.params` — the validated scenario language:
  declared :class:`Parameter`/:class:`Condition` schemas, aggregated
  :class:`ValidationReport` errors, delta-copy :class:`ScenarioSpec`
  variants, TOML/JSON scenario files and seeded sampling of the
  scenario space.
- :mod:`repro.campaign.cache` — a content-addressed on-disk cache of
  generated measurement sets, keyed by a stable hash of the resolved
  configuration plus a code-version salt.
- :mod:`repro.campaign.models` — the matching content-addressed registry
  of trained VVD model checkpoints, keyed by the dataset cache key, the
  Table 2 split, the prediction horizon and the seed.
- :mod:`repro.campaign.manifest` — the per-step JSON journal that makes
  killed campaigns resumable (lock-guarded against concurrent writers).
- :mod:`repro.campaign.grid` — parametric scenario grids
  (:class:`GridSpec`): declarative axes expanded into derived,
  registry-integrated scenarios.
- :mod:`repro.campaign.results` — the aggregated per-grid-point
  :class:`ResultsStore` (records keyed by grid coordinates).
- :mod:`repro.campaign.locking` — the cross-process :class:`FileLock`
  guarding index mutation under the parallel executor.
- :mod:`repro.campaign.runner` — campaign DAG execution (serial or
  topological-wavefront parallel) and the sweep / figure / train /
  stream step builders.
- :mod:`repro.campaign.cli` — the ``repro`` / ``python -m repro``
  command line.
"""

from .cache import (
    CacheEntry,
    CacheStats,
    DatasetCache,
    config_fingerprint,
    default_cache_dir,
)
from .grid import (
    GridPoint,
    GridPointTask,
    GridSpec,
    get_grid,
    grid_steps,
    list_grids,
    register_grid,
    run_grid_point_task,
)
from .locking import FileLock, sweep_stale_tmp
from .params import (
    Condition,
    Parameter,
    ScenarioSpec,
    ValidationReport,
    describe_parameters,
    load_scenario_file,
    sample_scenario_specs,
    sample_scenarios,
    spec_from_scenario,
    validate_scenario_values,
)
from .manifest import STATUS_QUARANTINED, CampaignManifest
from .results import ResultsStore, coords_key
from .models import (
    ModelCheckpointRegistry,
    ModelEntry,
    ModelRegistryStats,
    default_model_dir,
    model_fingerprint,
)
from .runner import (
    FIGURE_NAMES,
    Campaign,
    CampaignContext,
    CampaignResult,
    CampaignStep,
    RetryPolicy,
    figure_steps,
    render_figure,
    stream_steps,
    sweep_steps,
    train_steps,
)
from .scenario import (
    ROOM_PRESETS,
    Scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
)

__all__ = [
    "CacheEntry",
    "CacheStats",
    "DatasetCache",
    "config_fingerprint",
    "default_cache_dir",
    "CampaignManifest",
    "STATUS_QUARANTINED",
    "FileLock",
    "sweep_stale_tmp",
    "GridPoint",
    "GridPointTask",
    "GridSpec",
    "ResultsStore",
    "coords_key",
    "get_grid",
    "grid_steps",
    "list_grids",
    "register_grid",
    "run_grid_point_task",
    "ModelCheckpointRegistry",
    "ModelEntry",
    "ModelRegistryStats",
    "default_model_dir",
    "model_fingerprint",
    "FIGURE_NAMES",
    "Campaign",
    "CampaignContext",
    "CampaignResult",
    "CampaignStep",
    "RetryPolicy",
    "figure_steps",
    "render_figure",
    "stream_steps",
    "sweep_steps",
    "train_steps",
    "ROOM_PRESETS",
    "Scenario",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "Condition",
    "Parameter",
    "ScenarioSpec",
    "ValidationReport",
    "describe_parameters",
    "load_scenario_file",
    "sample_scenario_specs",
    "sample_scenarios",
    "spec_from_scenario",
    "validate_scenario_values",
]
