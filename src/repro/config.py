"""Central configuration for the VVD reproduction.

Every subsystem is parameterized through small frozen dataclasses gathered
in :class:`SimulationConfig`.  Three presets are provided:

``SimulationConfig.paper_scale()``
    The dimensions reported in the paper (15 sets, ~22,700 packets total,
    127-byte PSDUs, 200 training epochs).  Faithful but slow in pure numpy.

``SimulationConfig.reduced()``
    The default used by the benchmark harness: identical structure, fewer
    packets/epochs and shorter payloads, preserving all qualitative
    orderings of the evaluation.

``SimulationConfig.tiny()``
    A seconds-scale preset for unit and integration tests.

All stochastic components receive explicit seeds derived from
``SimulationConfig.seed`` so runs are replayable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .errors import ConfigurationError

SPEED_OF_LIGHT_M_S = 299_792_458.0


@dataclass(frozen=True)
class PhyConfig:
    """IEEE 802.15.4 O-QPSK PHY parameters (2.4 GHz band).

    The standard fixes the chip rate at 2 Mchip/s; the paper samples the
    baseband at 8 MHz which corresponds to 4 samples per chip.
    """

    chip_rate_hz: float = 2.0e6
    samples_per_chip: int = 4
    preamble_bytes: int = 4
    psdu_bytes: int = 127
    channel_number: int = 26

    def __post_init__(self) -> None:
        if self.samples_per_chip < 2:
            raise ConfigurationError(
                "samples_per_chip must be >= 2 for O-QPSK half-sine shaping, "
                f"got {self.samples_per_chip}"
            )
        if not 0 < self.psdu_bytes <= 127:
            raise ConfigurationError(
                f"psdu_bytes must be in (0, 127], got {self.psdu_bytes}"
            )
        if self.preamble_bytes < 1:
            raise ConfigurationError("preamble_bytes must be >= 1")

    @property
    def sample_rate_hz(self) -> float:
        """Baseband sample rate (8 MHz for the paper's configuration)."""
        return self.chip_rate_hz * self.samples_per_chip

    @property
    def chip_period_s(self) -> float:
        return 1.0 / self.chip_rate_hz

    @property
    def carrier_frequency_hz(self) -> float:
        """Centre frequency of the configured 802.15.4 channel.

        Channels 11..26 sit at 2405 + 5 * (k - 11) MHz; channel 26 is
        2480 MHz, 8 MHz away from the nearest 802.11 channel edge, which is
        why the paper uses it.
        """
        if not 11 <= self.channel_number <= 26:
            raise ConfigurationError(
                f"2.4 GHz band channels are 11..26, got {self.channel_number}"
            )
        return (2405 + 5 * (self.channel_number - 11)) * 1e6

    @property
    def psdu_chip_count(self) -> int:
        """Chips carrying the PSDU (127 B -> 8128 chips as in Sec. 5.5.2)."""
        return self.psdu_bytes * 2 * 32

    @property
    def psdu_bit_count(self) -> int:
        """Bits in the PSDU (127 B -> 1016 bits as in Sec. 6.2)."""
        return self.psdu_bytes * 8


@dataclass(frozen=True)
class ChannelConfig:
    """Parameters of the simulated indoor multipath channel."""

    num_taps: int = 11
    pre_cursor: int = 5
    snr_db: float = 9.5
    delay_stretch: float = 30.0
    blockage_db: float = 16.0
    blockage_sharpness_m: float = 0.25
    human_radius_m: float = 0.22
    human_height_m: float = 1.80
    human_scatter_gain: float = 0.12
    human_phase_wavelength_m: float = 0.121
    device_response: tuple[complex, ...] = (
        1.0 + 0.0j,
        0.0j,
        0.0j,
        0.60 + 0.25j,
        0.0j,
        0.40 - 0.22j,
        0.25 + 0.12j,
        0.15 - 0.10j,
    )
    phase_noise_std_rad: float = 0.02
    cfo_std_hz: float = 0.0

    def __post_init__(self) -> None:
        if self.num_taps < 1:
            raise ConfigurationError("num_taps must be >= 1")
        if not 0 <= self.pre_cursor < self.num_taps:
            raise ConfigurationError(
                f"pre_cursor must be in [0, num_taps), got {self.pre_cursor} "
                f"with num_taps={self.num_taps}"
            )
        if self.delay_stretch <= 0:
            raise ConfigurationError("delay_stretch must be positive")
        if self.human_radius_m <= 0:
            raise ConfigurationError("human_radius_m must be positive")


@dataclass(frozen=True)
class RoomConfig:
    """Geometry of the laboratory room (Fig. 2).

    Coordinates are metres; the room spans ``[0, width] x [0, depth] x
    [0, height]``.  The transmitter and receiver face each other across the
    human movement area so the walking human periodically blocks the LoS.
    """

    width_m: float = 8.0
    depth_m: float = 6.0
    height_m: float = 3.0
    tx_position: tuple[float, float, float] = (1.0, 3.0, 1.2)
    rx_position: tuple[float, float, float] = (7.0, 3.0, 1.2)
    movement_area: tuple[float, float, float, float] = (2.2, 1.2, 6.5, 4.8)
    scatterers: tuple[tuple[float, float, float, float], ...] = (
        (2.0, 5.5, 1.0, 0.30),
        (6.0, 0.8, 0.9, 0.24),
        (4.5, 5.2, 1.5, 0.27),
    )
    wall_reflectivity: float = 0.45
    ceiling_reflectivity: float = 0.30

    def __post_init__(self) -> None:
        x0, y0, x1, y1 = self.movement_area
        if not (0 <= x0 < x1 <= self.width_m and 0 <= y0 < y1 <= self.depth_m):
            raise ConfigurationError(
                f"movement_area {self.movement_area} must lie inside the room"
            )
        for pos in (self.tx_position, self.rx_position):
            x, y, z = pos
            inside = 0 <= x <= self.width_m and 0 <= y <= self.depth_m
            if not (inside and 0 <= z <= self.height_m):
                raise ConfigurationError(f"device position {pos} outside room")


@dataclass(frozen=True)
class CameraConfig:
    """Wall-mounted RGB-D camera model (ZED-like, Sec. 3)."""

    position: tuple[float, float, float] = (4.0, 0.15, 2.60)
    look_at: tuple[float, float, float] = (4.0, 4.0, 0.8)
    fps: float = 30.0
    horizontal_fov_deg: float = 90.0
    render_shape: tuple[int, int] = (72, 108)
    crop_top: int = 14
    crop_left: int = 9
    output_shape: tuple[int, int] = (50, 90)
    max_depth_m: float = 12.0

    def __post_init__(self) -> None:
        rows, cols = self.render_shape
        out_rows, out_cols = self.output_shape
        if self.crop_top + out_rows > rows or self.crop_left + out_cols > cols:
            raise ConfigurationError(
                f"crop window {self.output_shape} at "
                f"({self.crop_top},{self.crop_left}) exceeds render shape "
                f"{self.render_shape}"
            )
        if self.fps <= 0:
            raise ConfigurationError("fps must be positive")

    @property
    def frame_interval_s(self) -> float:
        return 1.0 / self.fps


#: Trajectory presets understood by the dataset generator.
TRAJECTORY_PRESETS = ("random-waypoint", "crossing", "grouped")

#: Per-walker speed assignment modes (``speed_profile``).
SPEED_PROFILES = ("uniform", "heterogeneous")


@dataclass(frozen=True)
class MobilityConfig:
    """Human mobility inside the movement area (Sec. 3).

    The paper walks a single human on random waypoints; campaign
    scenarios additionally support deterministic LoS-crossing walks
    (``trajectory="crossing"``), grouped walkers that move as a cluster
    around a shared leader (``trajectory="grouped"``, spread bounded by
    ``group_spread_m``) and multiple simultaneous humans
    (``num_humans > 1``, each with an independently seeded trajectory).
    ``speed_profile="heterogeneous"`` splits the speed range into one
    disjoint band per walker instead of every walker drawing from the
    full range.
    """

    speed_min_mps: float = 0.3
    speed_max_mps: float = 0.8
    pause_max_s: float = 2.5
    num_humans: int = 1
    trajectory: str = "random-waypoint"
    # NOTE: fields below were added after DATASET_CACHE_SALT v2 and are
    # elided from cache-key canonicalization at their defaults (see
    # repro.campaign.cache._canonical) so pre-existing dataset and model
    # keys stay byte-identical.
    speed_profile: str = "uniform"
    group_spread_m: float = 0.6

    def __post_init__(self) -> None:
        if not 0 < self.speed_min_mps <= self.speed_max_mps:
            raise ConfigurationError(
                "need 0 < speed_min_mps <= speed_max_mps, got "
                f"{self.speed_min_mps}..{self.speed_max_mps}"
            )
        if self.num_humans < 1:
            raise ConfigurationError(
                f"num_humans must be >= 1, got {self.num_humans}"
            )
        if self.trajectory not in TRAJECTORY_PRESETS:
            raise ConfigurationError(
                f"trajectory must be one of {TRAJECTORY_PRESETS}, got "
                f"{self.trajectory!r}"
            )
        if self.speed_profile not in SPEED_PROFILES:
            raise ConfigurationError(
                f"speed_profile must be one of {SPEED_PROFILES}, got "
                f"{self.speed_profile!r}"
            )
        if self.group_spread_m <= 0:
            raise ConfigurationError(
                f"group_spread_m must be positive, got {self.group_spread_m}"
            )


@dataclass(frozen=True)
class ReceiverConfig:
    """Receiver-side DSP parameters."""

    equalizer_taps: int = 31
    sync_search_window: int = 24
    preamble_detection_threshold: float = 0.22
    genie_timing: bool = True

    def __post_init__(self) -> None:
        if self.equalizer_taps < 3:
            raise ConfigurationError("equalizer_taps must be >= 3")
        if not 0 < self.preamble_detection_threshold < 1:
            raise ConfigurationError(
                "preamble_detection_threshold must be in (0, 1)"
            )


@dataclass(frozen=True)
class DatasetConfig:
    """Measurement-campaign dimensions (Sec. 3 / Table 2)."""

    num_sets: int = 15
    packets_per_set: int = 100
    packet_interval_s: float = 0.1
    skip_initial: int = 20

    def __post_init__(self) -> None:
        if self.num_sets < 3:
            raise ConfigurationError(
                "need >= 3 sets to form train/validation/test combinations"
            )
        if self.packets_per_set <= self.skip_initial:
            raise ConfigurationError(
                f"packets_per_set ({self.packets_per_set}) must exceed "
                f"skip_initial ({self.skip_initial})"
            )


@dataclass(frozen=True)
class VVDConfig:
    """Training hyper-parameters of the Fig. 8 CNN (Sec. 4)."""

    epochs: int = 25
    batch_size: int = 32
    learning_rate: float = 1e-4
    lr_decay_per_epoch: float = 0.004
    dense_units: int = 256
    conv_filters: tuple[int, ...] = (32, 32, 64)
    kernel_size: int = 3
    train_subsample: int = 1
    use_batch_norm: bool = False
    pooling: str = "average"
    standardize_inputs: bool = True

    def __post_init__(self) -> None:
        if self.pooling not in ("average", "max"):
            raise ConfigurationError(
                f"pooling must be 'average' or 'max', got {self.pooling!r}"
            )
        if self.epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        if self.train_subsample < 1:
            raise ConfigurationError("train_subsample must be >= 1")


@dataclass(frozen=True)
class KalmanConfig:
    """Kalman/AR channel-tracker parameters (paper appendix)."""

    default_order: int = 20
    orders: tuple[int, ...] = (1, 5, 20)
    observation_noise: float = 1e-8
    process_noise_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.default_order not in self.orders:
            raise ConfigurationError(
                f"default_order {self.default_order} not in orders {self.orders}"
            )
        if any(p < 1 for p in self.orders):
            raise ConfigurationError("AR orders must be >= 1")


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level configuration bundling every subsystem."""

    phy: PhyConfig = field(default_factory=PhyConfig)
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    room: RoomConfig = field(default_factory=RoomConfig)
    camera: CameraConfig = field(default_factory=CameraConfig)
    mobility: MobilityConfig = field(default_factory=MobilityConfig)
    receiver: ReceiverConfig = field(default_factory=ReceiverConfig)
    dataset: DatasetConfig = field(default_factory=DatasetConfig)
    vvd: VVDConfig = field(default_factory=VVDConfig)
    kalman: KalmanConfig = field(default_factory=KalmanConfig)
    seed: int = 2019

    def replace(self, **changes: object) -> "SimulationConfig":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def paper_scale(cls) -> "SimulationConfig":
        """The dimensions reported in the paper.  Slow in pure numpy."""
        return cls(
            phy=PhyConfig(psdu_bytes=127),
            dataset=DatasetConfig(
                num_sets=15, packets_per_set=1514, skip_initial=200
            ),
            vvd=VVDConfig(epochs=200, train_subsample=1),
        )

    @classmethod
    def reduced(cls) -> "SimulationConfig":
        """Benchmark preset: paper structure at tractable numpy scale."""
        return cls(
            phy=PhyConfig(psdu_bytes=127),
            dataset=DatasetConfig(
                num_sets=15, packets_per_set=100, skip_initial=20
            ),
            # The paper-size CNN (32/32/64 + 256) overfits the reduced
            # campaign (~1300 training images vs the paper's ~20k); the
            # reduced preset shrinks the network accordingly.  paper_scale()
            # keeps the Fig. 8 dimensions.
            vvd=VVDConfig(
                epochs=60,
                train_subsample=1,
                learning_rate=5e-4,
                batch_size=64,
                conv_filters=(16, 16, 32),
                dense_units=128,
            ),
        )

    @classmethod
    def tiny(cls) -> "SimulationConfig":
        """Unit-test preset: full pipeline in seconds."""
        return cls(
            phy=PhyConfig(psdu_bytes=16),
            dataset=DatasetConfig(
                num_sets=4, packets_per_set=24, skip_initial=4
            ),
            vvd=VVDConfig(
                epochs=3,
                train_subsample=2,
                batch_size=16,
                conv_filters=(8, 8, 16),
                dense_units=32,
            ),
            kalman=KalmanConfig(default_order=5, orders=(1, 5, 20)),
        )
