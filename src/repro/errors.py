"""Exception hierarchy for the VVD reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` et al.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid or inconsistent configuration value was supplied."""


class NotFoundError(ConfigurationError):
    """A named resource (scenario, grid, job, figure) does not exist.

    Subclasses :class:`ConfigurationError` so callers that caught the
    previous generic lookup failure keep working; the service layer
    maps it to HTTP 404 where a plain configuration error maps to 400.
    """


class ConflictError(ReproError):
    """An operation conflicts with the current state of a resource.

    Raised e.g. when cancelling a job that is already running, or when
    reading the results of a quarantined campaign.  Maps to HTTP 409.
    """


class ShapeError(ReproError, ValueError):
    """An array argument has the wrong shape or dimensionality."""


class SynchronizationError(ReproError):
    """Frame or packet synchronization failed.

    Raised by the receiver when the preamble correlation peak cannot be
    located inside the configured search window, and by the camera/packet
    matcher when no candidate frame exists for a packet timestamp.
    """


class NotFittedError(ReproError, RuntimeError):
    """An estimator was used before :meth:`prepare` / ``fit`` was called."""


class DecodingError(ReproError):
    """A packet could not be decoded at all (no despreadable payload)."""


class DatasetError(ReproError):
    """A measurement set or set combination is malformed or incomplete."""


class TransientError(ReproError):
    """A failure that is expected to succeed on retry.

    The campaign retry policy re-attempts steps that raise (a subclass
    of) this marker with exponential backoff; every other
    :class:`ReproError` is treated as permanent and quarantines the
    step immediately.
    """


class UnavailableError(TransientError):
    """The service cannot take the request right now; retry later.

    Transient by definition — the daemon is shutting down or its
    worker slots are saturated beyond the queue bound.  Maps to
    HTTP 503.
    """


class InjectedIOError(TransientError, IOError):
    """A transient I/O failure injected by an active fault plan.

    Subclasses :class:`IOError` so code that already guards real I/O
    (``except OSError``) handles the injected fault through the exact
    same path it would a genuine one.
    """


class LockTimeoutError(TransientError, ConfigurationError):
    """A :class:`~repro.campaign.locking.FileLock` acquisition timed out.

    Lock contention is transient by nature — the holder finishes or
    dies — so the retry policy re-attempts the step.  Subclasses
    :class:`ConfigurationError` for backward compatibility with callers
    that caught the previous generic timeout.
    """


class StepTimeoutError(TransientError):
    """A campaign step exceeded its per-attempt timeout and was killed.

    The supervising scheduler terminates the hung worker process and
    raises this; the retry policy requeues the step until the attempt
    budget is exhausted.
    """


class WorkerCrashError(TransientError):
    """A worker process died without reporting a result.

    Covers hard crashes (``os._exit``, segfault, OOM-kill) where no
    exception could be transported back to the scheduler.
    """


class ServiceDeadlineError(TransientError):
    """A streaming prediction round missed its service deadline."""


class CacheCorruptionError(ReproError):
    """A cached artifact failed content verification (digest mismatch).

    Cache layers never let this escape to callers: corruption is
    handled as miss-plus-regenerate.  The type exists so fault-plan
    hooks and tests can assert on the detection path.
    """


def is_transient(exc: BaseException) -> bool:
    """Whether an exception should be retried by the campaign runner.

    Typed :class:`TransientError` subclasses are transient by
    definition.  Environmental failures that the library does not wrap
    (``OSError``, ``TimeoutError``, ``ConnectionError``) are treated as
    transient too — disk hiccups and racing filesystems recover.  Every
    other exception (including non-transient :class:`ReproError`
    subclasses and programming errors) is permanent.
    """
    if isinstance(exc, TransientError):
        return True
    if isinstance(exc, ReproError):
        return False
    return isinstance(exc, (OSError, TimeoutError, ConnectionError))
