"""Exception hierarchy for the VVD reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` et al.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid or inconsistent configuration value was supplied."""


class ShapeError(ReproError, ValueError):
    """An array argument has the wrong shape or dimensionality."""


class SynchronizationError(ReproError):
    """Frame or packet synchronization failed.

    Raised by the receiver when the preamble correlation peak cannot be
    located inside the configured search window, and by the camera/packet
    matcher when no candidate frame exists for a packet timestamp.
    """


class NotFittedError(ReproError, RuntimeError):
    """An estimator was used before :meth:`prepare` / ``fit`` was called."""


class DecodingError(ReproError):
    """A packet could not be decoded at all (no despreadable payload)."""


class DatasetError(ReproError):
    """A measurement set or set combination is malformed or incomplete."""
