"""``python -m repro`` — the campaign orchestration CLI.

Thin launcher for :func:`repro.campaign.cli.main`; see that module (or
``python -m repro --help``) for the subcommand reference.
"""

import sys

from .campaign.cli import main

if __name__ == "__main__":
    sys.exit(main())
