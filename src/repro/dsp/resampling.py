"""Rate conversion helpers.

The paper's sniffer samples at 10 MHz and downsamples to 8 MHz in GNU
Radio (avoiding the X310's CIC roll-off, Sec. 3 footnote 2).  These
helpers reproduce that stage: rational resampling via polyphase
filtering, plus simple integer decimation with an anti-alias FIR.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as _signal

from ..errors import ShapeError


def rational_resample(
    waveform: np.ndarray, up: int, down: int
) -> np.ndarray:
    """Polyphase rational resampling by ``up/down`` (10 MHz -> 8 MHz is
    ``up=4, down=5``)."""
    waveform = np.asarray(waveform)
    if waveform.ndim != 1:
        raise ShapeError("waveform must be 1-D")
    if up < 1 or down < 1:
        raise ShapeError(f"up/down must be >= 1, got {up}/{down}")
    if up == down:
        return waveform.copy()
    if np.iscomplexobj(waveform):
        real = _signal.resample_poly(waveform.real, up, down)
        imag = _signal.resample_poly(waveform.imag, up, down)
        return real + 1j * imag
    return _signal.resample_poly(waveform, up, down)


def decimate(waveform: np.ndarray, factor: int, num_taps: int = 63) -> np.ndarray:
    """Integer decimation with a windowed-sinc anti-alias low-pass."""
    waveform = np.asarray(waveform)
    if waveform.ndim != 1:
        raise ShapeError("waveform must be 1-D")
    if factor < 1:
        raise ShapeError(f"factor must be >= 1, got {factor}")
    if factor == 1:
        return waveform.copy()
    if num_taps < 3 or num_taps % 2 == 0:
        raise ShapeError("num_taps must be an odd integer >= 3")
    cutoff = 1.0 / factor
    taps = _signal.firwin(num_taps, cutoff)
    filtered = _signal.lfilter(taps, 1.0, waveform)
    # Compensate the FIR group delay so decimation grid stays aligned.
    delay = (num_taps - 1) // 2
    aligned = filtered[delay:]
    return aligned[::factor]
