"""Convolution-matrix construction (paper Eq. 5) and FFT correlation helpers.

The linear system behind both channel estimation (Eq. 4) and zero-forcing
equalizer design (Eq. 7) is expressed through the tall banded Toeplitz
matrix of Eq. 5: column :math:`j` holds the signal delayed by :math:`j`
samples, so ``X @ h`` equals ``numpy.convolve(x, h)``.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as _signal

from ..errors import ShapeError


def convolution_matrix(x: np.ndarray, num_taps: int) -> np.ndarray:
    """Build the ``(len(x) + num_taps - 1) x num_taps`` matrix of Eq. 5.

    ``convolution_matrix(x, n) @ h == np.convolve(x, h)`` for any ``h`` of
    length ``n``.

    Parameters
    ----------
    x:
        Reference signal (the pilot samples in Eq. 5), one-dimensional.
    num_taps:
        Number of FIR taps ``N`` of the channel model.
    """
    x = np.asarray(x)
    if x.ndim != 1:
        raise ShapeError(f"x must be 1-D, got shape {x.shape}")
    if num_taps < 1:
        raise ShapeError(f"num_taps must be >= 1, got {num_taps}")
    rows = len(x) + num_taps - 1
    matrix = np.zeros((rows, num_taps), dtype=np.result_type(x.dtype, np.complex128))
    for j in range(num_taps):
        matrix[j : j + len(x), j] = x
    return matrix


def convolve_batch(
    signals: np.ndarray, taps: np.ndarray, method: str = "auto"
) -> np.ndarray:
    """Row-wise full linear convolution of a signal batch with a tap batch.

    ``convolve_batch(S, T)[p] == np.convolve(S[p], T[p])`` for every row
    (exactly on the direct path, within ``1e-10`` on the FFT path — the
    bound asserted by the batch equivalence suite).

    Parameters
    ----------
    signals:
        ``(P, L)`` batch of signals (real or complex).
    taps:
        ``(P, M)`` batch of FIR taps, or a single ``(M,)`` tap vector
        shared by every row.
    method:
        ``"auto"`` (default), ``"direct"`` or ``"fft"``.  Short filters
        are fastest as direct convolutions; long filters switch to one
        batched FFT convolution over the whole matrix.

    Returns
    -------
    numpy.ndarray
        ``(P, L + M - 1)`` matrix in the promoted dtype of the inputs
        (``complex128`` throughout the receive chain).
    """
    signals = np.asarray(signals)
    taps = np.asarray(taps)
    if signals.ndim != 2:
        raise ShapeError(f"signals must be 2-D, got shape {signals.shape}")
    if taps.ndim == 1:
        taps = np.broadcast_to(taps, (signals.shape[0], len(taps)))
    if taps.ndim != 2 or taps.shape[0] != signals.shape[0]:
        raise ShapeError(
            f"taps batch {taps.shape} does not match signals {signals.shape}"
        )
    if method not in ("auto", "direct", "fft"):
        raise ShapeError(f"unknown method {method!r}")
    num_rows, length = signals.shape
    num_taps = taps.shape[1]
    if method == "fft" or (method == "auto" and num_taps > 64):
        return _signal.fftconvolve(signals, taps, mode="full", axes=1)
    dtype = np.result_type(signals.dtype, taps.dtype)
    out = np.empty((num_rows, length + num_taps - 1), dtype=dtype)
    for row in range(num_rows):
        out[row] = np.convolve(signals[row], taps[row])
    return out


def correlate_lags_batch(
    a: np.ndarray, b: np.ndarray, num_lags: int
) -> np.ndarray:
    """Row-wise cross-correlation at non-negative lags ``0 .. num_lags-1``.

    ``out[p, k] = sum_m a[p, m + k] * conj(b[p, m])`` — the leading slice
    of the full cross-correlation that the LS normal equations need.
    Computed as per-row direct correlations: at the paper's tap counts
    (``num_lags`` ~ 11) a handful of long dot products per row beats any
    FFT formulation.

    Parameters
    ----------
    a, b:
        ``(P, La)`` / ``(P, Lb)`` batches with matching row counts;
        ``a`` is zero-padded/trimmed to ``Lb + num_lags - 1`` columns.
    num_lags:
        Number of non-negative lags to keep (the FIR order ``N``).

    Returns
    -------
    numpy.ndarray
        ``(P, num_lags)`` complex128 correlation matrix.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[0] != b.shape[0]:
        raise ShapeError(
            f"correlate_lags_batch expects matching batches, got "
            f"{a.shape} and {b.shape}"
        )
    if num_lags < 1:
        raise ShapeError(f"num_lags must be >= 1, got {num_lags}")
    num_rows = a.shape[0]
    needed = b.shape[1] + num_lags - 1
    if a.shape[1] != needed:
        padded = np.zeros((num_rows, needed), dtype=a.dtype)
        padded[:, : min(a.shape[1], needed)] = a[:, :needed]
        a = padded
    dtype = np.result_type(a.dtype, b.dtype, np.complex128)
    out = np.empty((num_rows, num_lags), dtype=dtype)
    for row in range(num_rows):
        out[row] = np.correlate(a[row], b[row], mode="valid")
    return out


def cross_correlate_full(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """FFT-based full cross-correlation ``sum_m a[m + lag] * conj(b[m])``.

    Equivalent to ``np.correlate(a, b, mode="full")`` but
    :math:`O(n \\log n)`; lags run from ``-(len(b) - 1)`` to
    ``len(a) - 1``.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 1 or b.ndim != 1:
        raise ShapeError("cross_correlate_full expects 1-D inputs")
    return _signal.fftconvolve(a, np.conj(b[::-1]), mode="full")


def autocorrelation(x: np.ndarray, max_lag: int) -> np.ndarray:
    """Autocorrelation ``r[k] = sum_m x[m] conj(x[m - k])`` for k=0..max_lag.

    Used to assemble the normal-equation Toeplitz matrix of the LS channel
    estimate and the Yule-Walker system of the Kalman tracker.
    """
    x = np.asarray(x)
    if x.ndim != 1:
        raise ShapeError("autocorrelation expects a 1-D input")
    if max_lag < 0:
        raise ShapeError(f"max_lag must be >= 0, got {max_lag}")
    full = cross_correlate_full(x, x)
    zero = len(x) - 1
    return full[zero : zero + max_lag + 1]
