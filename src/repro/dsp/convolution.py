"""Convolution-matrix construction (paper Eq. 5) and FFT correlation helpers.

The linear system behind both channel estimation (Eq. 4) and zero-forcing
equalizer design (Eq. 7) is expressed through the tall banded Toeplitz
matrix of Eq. 5: column :math:`j` holds the signal delayed by :math:`j`
samples, so ``X @ h`` equals ``numpy.convolve(x, h)``.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as _signal

from ..errors import ShapeError


def convolution_matrix(x: np.ndarray, num_taps: int) -> np.ndarray:
    """Build the ``(len(x) + num_taps - 1) x num_taps`` matrix of Eq. 5.

    ``convolution_matrix(x, n) @ h == np.convolve(x, h)`` for any ``h`` of
    length ``n``.

    Parameters
    ----------
    x:
        Reference signal (the pilot samples in Eq. 5), one-dimensional.
    num_taps:
        Number of FIR taps ``N`` of the channel model.
    """
    x = np.asarray(x)
    if x.ndim != 1:
        raise ShapeError(f"x must be 1-D, got shape {x.shape}")
    if num_taps < 1:
        raise ShapeError(f"num_taps must be >= 1, got {num_taps}")
    rows = len(x) + num_taps - 1
    matrix = np.zeros((rows, num_taps), dtype=np.result_type(x.dtype, np.complex128))
    for j in range(num_taps):
        matrix[j : j + len(x), j] = x
    return matrix


def cross_correlate_full(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """FFT-based full cross-correlation ``sum_m a[m + lag] * conj(b[m])``.

    Equivalent to ``np.correlate(a, b, mode="full")`` but
    :math:`O(n \\log n)`; lags run from ``-(len(b) - 1)`` to
    ``len(a) - 1``.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 1 or b.ndim != 1:
        raise ShapeError("cross_correlate_full expects 1-D inputs")
    return _signal.fftconvolve(a, np.conj(b[::-1]), mode="full")


def autocorrelation(x: np.ndarray, max_lag: int) -> np.ndarray:
    """Autocorrelation ``r[k] = sum_m x[m] conj(x[m - k])`` for k=0..max_lag.

    Used to assemble the normal-equation Toeplitz matrix of the LS channel
    estimate and the Yule-Walker system of the Kalman tracker.
    """
    x = np.asarray(x)
    if x.ndim != 1:
        raise ShapeError("autocorrelation expects a 1-D input")
    if max_lag < 0:
        raise ShapeError(f"max_lag must be >= 0, got {max_lag}")
    full = cross_correlate_full(x, x)
    zero = len(x) - 1
    return full[zero : zero + max_lag + 1]
