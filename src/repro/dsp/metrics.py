"""Low-level signal metrics used across the evaluation.

The packet-level metrics of Sec. 5.5 (PER / CER / channel MSE) live in
:mod:`repro.experiments.metrics`; this module provides the underlying
complex-vector arithmetic.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def complex_mse(estimate: np.ndarray, reference: np.ndarray) -> float:
    """Mean squared error between complex vectors (inner sum of Eq. 9).

    Uses ``|h - h_hat|^2`` averaged over taps, i.e. the squared error of
    the real and imaginary parts combined.
    """
    estimate = np.asarray(estimate, dtype=np.complex128)
    reference = np.asarray(reference, dtype=np.complex128)
    if estimate.shape != reference.shape:
        raise ShapeError(
            f"shape mismatch: {estimate.shape} vs {reference.shape}"
        )
    if estimate.size == 0:
        raise ShapeError("complex_mse of empty vectors is undefined")
    diff = estimate - reference
    return float(np.mean(np.abs(diff) ** 2))


def normalized_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """``|<a, b>| / (||a|| ||b||)`` in [0, 1]; 1 iff collinear.

    Used by the preamble detector: the received preamble window is
    correlated against the clean reference waveform and detection succeeds
    when the normalized peak exceeds a threshold.
    """
    a = np.asarray(a, dtype=np.complex128).ravel()
    b = np.asarray(b, dtype=np.complex128).ravel()
    if a.shape != b.shape:
        raise ShapeError(f"shape mismatch: {a.shape} vs {b.shape}")
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0:
        return 0.0
    return float(np.abs(np.vdot(b, a)) / denom)


def error_vector_magnitude(received: np.ndarray, reference: np.ndarray) -> float:
    """RMS EVM of an equalized constellation against its reference."""
    received = np.asarray(received, dtype=np.complex128).ravel()
    reference = np.asarray(reference, dtype=np.complex128).ravel()
    if received.shape != reference.shape:
        raise ShapeError(
            f"shape mismatch: {received.shape} vs {reference.shape}"
        )
    if received.size == 0:
        raise ShapeError("EVM of empty vectors is undefined")
    ref_power = np.mean(np.abs(reference) ** 2)
    if ref_power == 0:
        raise ShapeError("reference power is zero")
    err_power = np.mean(np.abs(received - reference) ** 2)
    return float(np.sqrt(err_power / ref_power))
