"""Fractional-delay FIR tap synthesis for the channel simulator.

Physical multipath components arrive at delays that are not integer
multiples of the 125 ns sample period.  Band-limited (windowed-sinc)
interpolation spreads each arrival over neighbouring taps, which is what
gives measured LS estimates their characteristic multi-tap footprint with
pre-cursor energy (paper Fig. 5a, dominant taps 6-8 out of 11).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def fractional_delay_taps(
    delay_samples: float,
    num_taps: int,
    window_half_width: int = 4,
) -> np.ndarray:
    """Windowed-sinc interpolation kernel for one arrival.

    Parameters
    ----------
    delay_samples:
        Arrival time in (possibly fractional) sample periods, measured from
        tap index 0.
    num_taps:
        Length of the output tap vector.
    window_half_width:
        Half-width of the Hann window applied to the sinc, in samples.

    Returns
    -------
    numpy.ndarray
        Real tap vector of length ``num_taps`` summing the band-limited
        contribution of the arrival to every tap.
    """
    if num_taps < 1:
        raise ShapeError(f"num_taps must be >= 1, got {num_taps}")
    if window_half_width < 1:
        raise ShapeError(
            f"window_half_width must be >= 1, got {window_half_width}"
        )
    indices = np.arange(num_taps, dtype=np.float64)
    offsets = indices - float(delay_samples)
    kernel = np.sinc(offsets)
    # Hann window centred on the arrival keeps the kernel compact.
    clipped = np.clip(offsets / (window_half_width + 1.0), -1.0, 1.0)
    window = 0.5 * (1.0 + np.cos(np.pi * clipped))
    return kernel * window


def synthesize_taps(
    gains: np.ndarray,
    delays_samples: np.ndarray,
    num_taps: int,
    window_half_width: int = 4,
) -> np.ndarray:
    """Superpose multipath arrivals into a complex FIR tap vector.

    ``taps[l] = sum_i gains[i] * kernel(l - delays_samples[i])`` — the
    tapped-delay-line of Eq. 2 sampled at the receiver rate (Eq. 3).
    """
    gains = np.asarray(gains, dtype=np.complex128)
    delays_samples = np.asarray(delays_samples, dtype=np.float64)
    if gains.shape != delays_samples.shape or gains.ndim != 1:
        raise ShapeError(
            "gains and delays_samples must be 1-D arrays of equal length, "
            f"got {gains.shape} and {delays_samples.shape}"
        )
    taps = np.zeros(num_taps, dtype=np.complex128)
    for gain, delay in zip(gains, delays_samples):
        taps += gain * fractional_delay_taps(
            delay, num_taps, window_half_width
        )
    return taps
