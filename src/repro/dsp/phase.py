"""Mean phase-shift estimation and correction (paper Eq. 8 / footnote 4).

Imperfect sensor crystals rotate every packet by a common phase (Sec. 3.1).
Two estimates of the same channel therefore differ by one mean rotation,
which Eq. 8 recovers by correlating the two tap vectors.  Footnote 4
applies the same idea between a *blind* estimate (VVD / Kalman / previous)
and the received waveform using the known preamble region, which works even
when the preamble cannot be decoded.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def estimate_phase_shift(h_current: np.ndarray, h_reference: np.ndarray) -> float:
    """Mean phase difference between two channel estimates (Eq. 8).

    Returns ``theta`` such that ``h_current ~ exp(j theta) * h_reference``.
    """
    h_current = np.asarray(h_current, dtype=np.complex128)
    h_reference = np.asarray(h_reference, dtype=np.complex128)
    if h_current.shape != h_reference.shape:
        raise ShapeError(
            f"estimate shapes differ: {h_current.shape} vs {h_reference.shape}"
        )
    inner = np.sum(h_current * np.conj(h_reference))
    if inner == 0:
        return 0.0
    return float(np.angle(inner))


def estimate_waveform_phase_shift(
    y_window: np.ndarray,
    x_window: np.ndarray,
    h_estimate: np.ndarray,
) -> float:
    """Phase offset between a blind estimate and the received block.

    Correlates the received samples of a known region (the preamble) with
    the same region re-synthesized through the blind estimate
    (footnote 4).  Returns ``theta`` such that rotating the estimate by
    ``exp(j theta)`` aligns it with the received block.
    """
    y_window = np.asarray(y_window, dtype=np.complex128)
    x_window = np.asarray(x_window, dtype=np.complex128)
    h_estimate = np.asarray(h_estimate, dtype=np.complex128)
    if y_window.ndim != 1 or x_window.ndim != 1 or h_estimate.ndim != 1:
        raise ShapeError("estimate_waveform_phase_shift expects 1-D inputs")
    if len(y_window) == 0 or len(x_window) == 0:
        return 0.0
    predicted = np.convolve(x_window, h_estimate)
    length = min(len(predicted), len(y_window))
    if length == 0:
        return 0.0
    inner = np.sum(y_window[:length] * np.conj(predicted[:length]))
    if inner == 0:
        return 0.0
    return float(np.angle(inner))


def correct_phase(h: np.ndarray, theta: float) -> np.ndarray:
    """Rotate an estimate by ``exp(j theta)``."""
    h = np.asarray(h, dtype=np.complex128)
    return h * np.exp(1j * theta)


def estimate_phase_shift_batch(
    h_batch: np.ndarray, h_reference: np.ndarray
) -> np.ndarray:
    """Row-wise Eq. 8 phase against one shared reference estimate."""
    h_batch = np.asarray(h_batch, dtype=np.complex128)
    h_reference = np.asarray(h_reference, dtype=np.complex128)
    if h_batch.ndim != 2 or h_batch.shape[1] != h_reference.shape[0]:
        raise ShapeError(
            f"batch {h_batch.shape} does not match reference "
            f"{h_reference.shape}"
        )
    inner = h_batch @ np.conj(h_reference)
    theta = np.angle(inner)
    theta[inner == 0] = 0.0
    return theta


def canonicalize_phase_batch(
    h_batch: np.ndarray, reference: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise :func:`canonicalize_phase` against one shared reference.

    Returns ``(h_canonical, thetas)`` with shapes ``(P, taps)`` and
    ``(P,)``.
    """
    thetas = estimate_phase_shift_batch(h_batch, reference)
    rotated = h_batch * np.exp(-1j * thetas)[:, None]
    return rotated, thetas


def canonicalize_phase(
    h: np.ndarray, reference: np.ndarray
) -> tuple[np.ndarray, float]:
    """Rotate ``h`` onto the phase plane of ``reference``.

    The dataset stores every LS estimate rotated onto a fixed reference so
    that per-packet crystal phases do not poison learning targets or AR
    correlation fits (Sec. 3.1).  Returns the rotated estimate and the
    applied angle ``theta`` (i.e. ``h_canonical = exp(-j theta) * h`` where
    ``theta`` is Eq. 8 of ``h`` against the reference).
    """
    theta = estimate_phase_shift(h, reference)
    return correct_phase(h, -theta), theta
