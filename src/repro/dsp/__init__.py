"""Signal-processing primitives shared by the PHY, channel and estimators.

The module names follow the paper's Sec. 2.1:

- :mod:`repro.dsp.convolution` — the convolution matrix of Eq. 5 and fast
  FFT-based correlation helpers.
- :mod:`repro.dsp.estimation` — linear least-squares channel estimation
  (Eq. 4) with an :math:`O(n \\log n)` normal-equation fast path.
- :mod:`repro.dsp.equalization` — LS zero-forcing equalization (Eqs. 6-7)
  plus the MMSE extension the paper leaves as future work.
- :mod:`repro.dsp.phase` — mean phase-shift estimation between channel
  estimates (Eq. 8) and its waveform-domain variant (footnote 4).
- :mod:`repro.dsp.taps` — fractional-delay FIR tap synthesis used by the
  channel simulator.
- :mod:`repro.dsp.metrics` — complex MSE and correlation metrics.
"""

from .convolution import (
    convolution_matrix,
    convolve_batch,
    correlate_lags_batch,
    cross_correlate_full,
    autocorrelation,
)
from .estimation import (
    ls_channel_estimate,
    ls_channel_estimate_batch,
    valid_ls_operator,
    apply_fir_channel,
)
from .equalization import (
    zero_forcing_equalizer,
    mmse_equalizer,
    equalize,
    equalize_batch,
    equalizer_delay,
)
from .phase import (
    estimate_phase_shift,
    estimate_phase_shift_batch,
    estimate_waveform_phase_shift,
    correct_phase,
    canonicalize_phase,
    canonicalize_phase_batch,
)
from .taps import fractional_delay_taps, synthesize_taps
from .metrics import complex_mse, normalized_correlation, error_vector_magnitude

__all__ = [
    "convolution_matrix",
    "convolve_batch",
    "correlate_lags_batch",
    "cross_correlate_full",
    "autocorrelation",
    "ls_channel_estimate",
    "ls_channel_estimate_batch",
    "valid_ls_operator",
    "apply_fir_channel",
    "zero_forcing_equalizer",
    "mmse_equalizer",
    "equalize",
    "equalize_batch",
    "equalizer_delay",
    "estimate_phase_shift",
    "estimate_phase_shift_batch",
    "estimate_waveform_phase_shift",
    "correct_phase",
    "canonicalize_phase",
    "canonicalize_phase_batch",
    "fractional_delay_taps",
    "synthesize_taps",
    "complex_mse",
    "normalized_correlation",
    "error_vector_magnitude",
]
