"""Linear least-squares channel estimation (paper Eq. 4).

Two operating modes are provided:

``mode="full"``
    Models the complete linear convolution ``y = X h`` with ``X`` the tall
    matrix of Eq. 5 (zero initial/final state).  Used for the *perfect*
    (ground-truth) estimate where the whole transmitted packet is known.
    A normal-equation fast path exploits that ``X^H X`` is Hermitian
    Toeplitz, making the whole-packet estimate :math:`O(n \\log n)`.

``mode="valid"``
    Uses only steady-state rows, i.e. received samples that depend
    exclusively on the supplied reference window.  Used for preamble-based
    estimation where the samples following the preamble are contaminated by
    the (unknown at that point) remainder of the frame.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view
from scipy import linalg as _linalg

from ..errors import ShapeError
from .convolution import autocorrelation, convolution_matrix, cross_correlate_full

_DIRECT_SIZE_LIMIT = 4096


def apply_fir_channel(x: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Push ``x`` through an FIR channel (Eq. 3); returns the full convolution."""
    x = np.asarray(x)
    taps = np.asarray(taps)
    if x.ndim != 1 or taps.ndim != 1:
        raise ShapeError("apply_fir_channel expects 1-D signal and taps")
    return np.convolve(x, taps)


def _pad_or_trim(y: np.ndarray, length: int) -> np.ndarray:
    if len(y) == length:
        return y
    if len(y) > length:
        return y[:length]
    out = np.zeros(length, dtype=y.dtype)
    out[: len(y)] = y
    return out


def _ls_full_direct(x: np.ndarray, y: np.ndarray, num_taps: int) -> np.ndarray:
    matrix = convolution_matrix(x, num_taps)
    solution, *_ = np.linalg.lstsq(matrix, y, rcond=None)
    return solution


def _ls_full_fft(x: np.ndarray, y: np.ndarray, num_taps: int) -> np.ndarray:
    # X^H X is Hermitian Toeplitz with first column r[0..N-1] where
    # r[k] = sum_m x[m] conj(x[m-k]); X^H y is the cross-correlation of y
    # against x at lags 0..N-1.
    r = autocorrelation(x, num_taps - 1)
    cc = cross_correlate_full(y, x)
    zero_lag = len(x) - 1
    rhs = cc[zero_lag : zero_lag + num_taps]
    first_column = r
    first_row = np.conj(r)
    try:
        return _linalg.solve_toeplitz((first_column, first_row), rhs)
    except np.linalg.LinAlgError:
        matrix = _linalg.toeplitz(first_column, first_row)
        solution, *_ = np.linalg.lstsq(matrix, rhs, rcond=None)
        return solution


def ls_channel_estimate(
    x: np.ndarray,
    y: np.ndarray,
    num_taps: int,
    mode: str = "full",
    method: str = "auto",
) -> np.ndarray:
    """Least-squares FIR channel estimate ``h`` of Eq. 4.

    Parameters
    ----------
    x:
        Known reference samples (pilot / preamble / whole packet).
    y:
        Received samples aligned with ``x``: ``y[m]`` corresponds to the
        full-convolution output index ``m``.
    num_taps:
        ``N``, the FIR model order (11 throughout the paper).
    mode:
        ``"full"`` or ``"valid"`` (see module docstring).
    method:
        ``"auto"`` (default; FFT normal equations for long signals),
        ``"direct"`` (explicit least squares) or ``"fft"``.

    Returns
    -------
    numpy.ndarray
        Complex tap vector of length ``num_taps``.
    """
    x = np.asarray(x, dtype=np.complex128)
    y = np.asarray(y, dtype=np.complex128)
    if x.ndim != 1 or y.ndim != 1:
        raise ShapeError("ls_channel_estimate expects 1-D x and y")
    if num_taps < 1:
        raise ShapeError(f"num_taps must be >= 1, got {num_taps}")
    if len(x) < num_taps:
        raise ShapeError(
            f"reference too short: len(x)={len(x)} < num_taps={num_taps}"
        )

    if mode == "full":
        target = _pad_or_trim(y, len(x) + num_taps - 1)
        if method == "direct" or (
            method == "auto" and len(x) <= _DIRECT_SIZE_LIMIT
        ):
            return _ls_full_direct(x, target, num_taps)
        return _ls_full_fft(x, target, num_taps)

    if mode == "valid":
        # Rows m = N-1 .. len(x)-1 depend only on samples inside x.
        if len(y) < len(x):
            raise ShapeError(
                f"mode='valid' needs len(y) >= len(x) ({len(y)} < {len(x)})"
            )
        windows = sliding_window_view(x, num_taps)[:, ::-1]
        target = y[num_taps - 1 : len(x)]
        solution, *_ = np.linalg.lstsq(windows, target, rcond=None)
        return solution

    raise ShapeError(f"unknown mode {mode!r}; expected 'full' or 'valid'")
