"""Linear least-squares channel estimation (paper Eq. 4).

Two operating modes are provided:

``mode="full"``
    Models the complete linear convolution ``y = X h`` with ``X`` the tall
    matrix of Eq. 5 (zero initial/final state).  Used for the *perfect*
    (ground-truth) estimate where the whole transmitted packet is known.
    A normal-equation fast path exploits that ``X^H X`` is Hermitian
    Toeplitz, making the whole-packet estimate :math:`O(n \\log n)`.

``mode="valid"``
    Uses only steady-state rows, i.e. received samples that depend
    exclusively on the supplied reference window.  Used for preamble-based
    estimation where the samples following the preamble are contaminated by
    the (unknown at that point) remainder of the frame.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view
from scipy import linalg as _linalg

from ..errors import ShapeError
from .convolution import (
    autocorrelation,
    convolution_matrix,
    correlate_lags_batch,
    cross_correlate_full,
)

_DIRECT_SIZE_LIMIT = 4096


def apply_fir_channel(x: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Push ``x`` through an FIR channel (Eq. 3); returns the full convolution."""
    x = np.asarray(x)
    taps = np.asarray(taps)
    if x.ndim != 1 or taps.ndim != 1:
        raise ShapeError("apply_fir_channel expects 1-D signal and taps")
    return np.convolve(x, taps)


def _pad_or_trim(y: np.ndarray, length: int) -> np.ndarray:
    if len(y) == length:
        return y
    if len(y) > length:
        return y[:length]
    out = np.zeros(length, dtype=y.dtype)
    out[: len(y)] = y
    return out


def _ls_full_direct(x: np.ndarray, y: np.ndarray, num_taps: int) -> np.ndarray:
    matrix = convolution_matrix(x, num_taps)
    solution, *_ = np.linalg.lstsq(matrix, y, rcond=None)
    return solution


def _ls_full_fft(x: np.ndarray, y: np.ndarray, num_taps: int) -> np.ndarray:
    # X^H X is Hermitian Toeplitz with first column r[0..N-1] where
    # r[k] = sum_m x[m] conj(x[m-k]); X^H y is the cross-correlation of y
    # against x at lags 0..N-1.
    r = autocorrelation(x, num_taps - 1)
    cc = cross_correlate_full(y, x)
    zero_lag = len(x) - 1
    rhs = cc[zero_lag : zero_lag + num_taps]
    return solve_ls_normal_equations(r, rhs)


def ls_channel_estimate(
    x: np.ndarray,
    y: np.ndarray,
    num_taps: int,
    mode: str = "full",
    method: str = "auto",
) -> np.ndarray:
    """Least-squares FIR channel estimate ``h`` of Eq. 4.

    Parameters
    ----------
    x:
        Known reference samples (pilot / preamble / whole packet).
    y:
        Received samples aligned with ``x``: ``y[m]`` corresponds to the
        full-convolution output index ``m``.
    num_taps:
        ``N``, the FIR model order (11 throughout the paper).
    mode:
        ``"full"`` or ``"valid"`` (see module docstring).
    method:
        ``"auto"`` (default; FFT normal equations for long signals),
        ``"direct"`` (explicit least squares) or ``"fft"``.

    Returns
    -------
    numpy.ndarray
        Complex tap vector of length ``num_taps``.
    """
    x = np.asarray(x, dtype=np.complex128)
    y = np.asarray(y, dtype=np.complex128)
    if x.ndim != 1 or y.ndim != 1:
        raise ShapeError("ls_channel_estimate expects 1-D x and y")
    if num_taps < 1:
        raise ShapeError(f"num_taps must be >= 1, got {num_taps}")
    if len(x) < num_taps:
        raise ShapeError(
            f"reference too short: len(x)={len(x)} < num_taps={num_taps}"
        )

    if mode == "full":
        target = _pad_or_trim(y, len(x) + num_taps - 1)
        if method == "direct" or (
            method == "auto" and len(x) <= _DIRECT_SIZE_LIMIT
        ):
            return _ls_full_direct(x, target, num_taps)
        return _ls_full_fft(x, target, num_taps)

    if mode == "valid":
        # Rows m = N-1 .. len(x)-1 depend only on samples inside x.
        if len(y) < len(x):
            raise ShapeError(
                f"mode='valid' needs len(y) >= len(x) ({len(y)} < {len(x)})"
            )
        windows = sliding_window_view(x, num_taps)[:, ::-1]
        target = y[num_taps - 1 : len(x)]
        solution, *_ = np.linalg.lstsq(windows, target, rcond=None)
        return solution

    raise ShapeError(f"unknown mode {mode!r}; expected 'full' or 'valid'")


def solve_ls_normal_equations(
    autocorr: np.ndarray, cross_corr: np.ndarray
) -> np.ndarray:
    """Solve one Hermitian-Toeplitz LS normal-equation system.

    ``autocorr`` is the first column of ``X^H X`` (reference
    autocorrelation at lags ``0..N-1``), ``cross_corr`` is ``X^H y``.
    Falls back to a dense least-squares solve when the Levinson recursion
    hits a singular minor.
    """
    try:
        solution = _linalg.solve_toeplitz(
            (autocorr, np.conj(autocorr)), cross_corr
        )
        if np.all(np.isfinite(solution)):
            return solution
    except np.linalg.LinAlgError:
        pass
    matrix = _linalg.toeplitz(autocorr, np.conj(autocorr))
    solution, *_ = np.linalg.lstsq(matrix, cross_corr, rcond=None)
    return solution


def valid_ls_operator(x: np.ndarray, num_taps: int) -> np.ndarray:
    """Pseudo-inverse of the steady-state (``mode="valid"``) window matrix.

    The matrix depends only on the known reference ``x`` — for
    preamble-based estimation that reference is the constant SHR
    waveform, so one pseudo-inverse serves every packet:
    ``h = valid_ls_operator(x, N) @ y[N-1 : len(x)]``.
    """
    x = np.asarray(x, dtype=np.complex128)
    if x.ndim != 1:
        raise ShapeError("valid_ls_operator expects a 1-D reference")
    if len(x) < num_taps:
        raise ShapeError(
            f"reference too short: len(x)={len(x)} < num_taps={num_taps}"
        )
    windows = sliding_window_view(x, num_taps)[:, ::-1]
    return np.linalg.pinv(windows)


def ls_channel_estimate_batch(
    x: np.ndarray,
    y: np.ndarray,
    num_taps: int,
    mode: str = "full",
    method: str = "auto",
) -> np.ndarray:
    """Batched least-squares FIR channel estimates (Eq. 4 over a packet set).

    Parameters
    ----------
    x:
        Known reference samples: ``(P, Lx)`` per-row references, or a
        single ``(Lx,)`` reference shared by every row.
    y:
        ``(P, Ly)`` received rows aligned as in :func:`ls_channel_estimate`.
    num_taps:
        FIR model order ``N``.
    mode:
        ``"full"`` solves the per-row LS system; ``"valid"`` requires a
        shared 1-D ``x`` and applies one cached pseudo-inverse of the
        window matrix to every row.
    method:
        Mirrors :func:`ls_channel_estimate`: ``"auto"`` uses the dense
        solve for short references and the Hermitian-Toeplitz normal
        equations (shared-correlation batch path) for long ones, so
        every row matches the scalar function's solver choice;
        ``"direct"`` / ``"fft"`` force one of the two.

    Returns
    -------
    numpy.ndarray
        ``(P, num_taps)`` complex128 tap matrix, row ``p`` matching
        ``ls_channel_estimate(x[p], y[p], num_taps, mode, method)``
        within ``1e-10`` (the bound asserted by the batch equivalence
        suite) — the batch path picks the same solver as the scalar
        function for every row.
    """
    y = np.asarray(y, dtype=np.complex128)
    if y.ndim != 2:
        raise ShapeError(f"y must be (P, Ly), got shape {y.shape}")
    if num_taps < 1:
        raise ShapeError(f"num_taps must be >= 1, got {num_taps}")
    x = np.asarray(x, dtype=np.complex128)

    if mode == "valid":
        if x.ndim != 1:
            raise ShapeError("mode='valid' needs a shared 1-D reference")
        if y.shape[1] < len(x):
            raise ShapeError(
                f"mode='valid' needs len(y) >= len(x) "
                f"({y.shape[1]} < {len(x)})"
            )
        operator = valid_ls_operator(x, num_taps)
        return y[:, num_taps - 1 : len(x)] @ operator.T

    if mode != "full":
        raise ShapeError(f"unknown mode {mode!r}; expected 'full' or 'valid'")

    if x.ndim == 1:
        x = np.broadcast_to(x, (y.shape[0], len(x)))
    if x.ndim != 2 or x.shape[0] != y.shape[0]:
        raise ShapeError(
            f"x batch {x.shape} does not match y batch {y.shape}"
        )
    if x.shape[1] < num_taps:
        raise ShapeError(
            f"reference too short: len(x)={x.shape[1]} < num_taps={num_taps}"
        )
    out = np.empty((y.shape[0], num_taps), dtype=np.complex128)
    if method == "direct" or (
        method == "auto" and x.shape[1] <= _DIRECT_SIZE_LIMIT
    ):
        # Short references: keep the scalar path's dense solver (the
        # normal equations would square its conditioning).
        target_length = x.shape[1] + num_taps - 1
        for row in range(y.shape[0]):
            out[row] = _ls_full_direct(
                x[row], _pad_or_trim(y[row], target_length), num_taps
            )
        return out
    autocorr = correlate_lags_batch(x, x, num_taps)
    cross = correlate_lags_batch(y, x, num_taps)
    for row in range(y.shape[0]):
        out[row] = solve_ls_normal_equations(autocorr[row], cross[row])
    return out
