"""LS zero-forcing equalization (paper Eqs. 6-7) and the MMSE extension.

Given a channel estimate ``h`` the equalizer is the FIR filter ``c`` that
best inverts it: ``H c ~= u`` where ``H`` is the convolution matrix of
``h`` and ``u`` is a unit impulse whose position sets the equalizer's
decision delay (the pre/post-cursor split of Eq. 6).  The paper uses the
plain LS solution (ZF); the MMSE variant regularizes with the noise power
and is provided as the future-work extension discussed in Sec. 5.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .convolution import convolution_matrix


def equalizer_delay(num_taps_channel: int, num_taps_equalizer: int) -> int:
    """Default position of the '1' in ``u`` (centre of the combined filter).

    Placing the impulse in the middle of the combined response lets the
    equalizer realize both pre-cursor and post-cursor taps, mirroring the
    paper's choice of allowing pre-cursor energy (footnote 3).
    """
    return (num_taps_channel + num_taps_equalizer - 1) // 2


def zero_forcing_equalizer(
    h: np.ndarray,
    num_taps: int,
    delay: int | None = None,
) -> np.ndarray:
    """LS zero-forcing equalizer of Eq. 7.

    Parameters
    ----------
    h:
        Channel estimate (complex FIR taps).
    num_taps:
        ``L``, the equalizer length.
    delay:
        Index of the single '1' in the target vector ``u``; defaults to the
        centre of the combined response.

    Returns
    -------
    numpy.ndarray
        Equalizer taps ``c`` of length ``num_taps``.
    """
    h = np.asarray(h, dtype=np.complex128)
    if h.ndim != 1:
        raise ShapeError("channel estimate must be 1-D")
    if num_taps < 1:
        raise ShapeError(f"num_taps must be >= 1, got {num_taps}")
    rows = len(h) + num_taps - 1
    if delay is None:
        delay = equalizer_delay(len(h), num_taps)
    if not 0 <= delay < rows:
        raise ShapeError(f"delay {delay} outside combined response [0, {rows})")
    matrix = convolution_matrix(h, num_taps)
    target = np.zeros(rows, dtype=np.complex128)
    target[delay] = 1.0
    solution, *_ = np.linalg.lstsq(matrix, target, rcond=None)
    return solution


def mmse_equalizer(
    h: np.ndarray,
    num_taps: int,
    noise_variance: float,
    delay: int | None = None,
) -> np.ndarray:
    """MMSE linear equalizer (the paper's future-work alternative to ZF).

    Solves ``(H^H H + sigma^2 I) c = H^H u``; reduces to ZF as
    ``noise_variance -> 0``.
    """
    h = np.asarray(h, dtype=np.complex128)
    if h.ndim != 1:
        raise ShapeError("channel estimate must be 1-D")
    if noise_variance < 0:
        raise ShapeError(f"noise_variance must be >= 0, got {noise_variance}")
    rows = len(h) + num_taps - 1
    if delay is None:
        delay = equalizer_delay(len(h), num_taps)
    if not 0 <= delay < rows:
        raise ShapeError(f"delay {delay} outside combined response [0, {rows})")
    matrix = convolution_matrix(h, num_taps)
    target = np.zeros(rows, dtype=np.complex128)
    target[delay] = 1.0
    gram = matrix.conj().T @ matrix + noise_variance * np.eye(num_taps)
    rhs = matrix.conj().T @ target
    return np.linalg.solve(gram, rhs)


def equalize(
    y: np.ndarray,
    equalizer: np.ndarray,
    delay: int,
    output_length: int | None = None,
) -> np.ndarray:
    """Apply an equalizer and strip its decision delay.

    Returns the equalized signal re-aligned to the transmitted-sample
    timeline; ``output_length`` truncates/pads to a known signal length.
    """
    y = np.asarray(y)
    equalizer = np.asarray(equalizer)
    if y.ndim != 1 or equalizer.ndim != 1:
        raise ShapeError("equalize expects 1-D signal and equalizer")
    z = np.convolve(y, equalizer)
    z = z[delay:]
    if output_length is not None:
        if len(z) < output_length:
            z = np.concatenate(
                [z, np.zeros(output_length - len(z), dtype=z.dtype)]
            )
        else:
            z = z[:output_length]
    return z
