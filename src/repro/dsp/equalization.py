"""LS zero-forcing equalization (paper Eqs. 6-7) and the MMSE extension.

Given a channel estimate ``h`` the equalizer is the FIR filter ``c`` that
best inverts it: ``H c ~= u`` where ``H`` is the convolution matrix of
``h`` and ``u`` is a unit impulse whose position sets the equalizer's
decision delay (the pre/post-cursor split of Eq. 6).  The paper uses the
plain LS solution (ZF); the MMSE variant regularizes with the noise power
and is provided as the future-work extension discussed in Sec. 5.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_toeplitz

from ..errors import ShapeError
from .convolution import convolution_matrix, convolve_batch


def equalizer_delay(num_taps_channel: int, num_taps_equalizer: int) -> int:
    """Default position of the '1' in ``u`` (centre of the combined filter).

    Placing the impulse in the middle of the combined response lets the
    equalizer realize both pre-cursor and post-cursor taps, mirroring the
    paper's choice of allowing pre-cursor energy (footnote 3).
    """
    return (num_taps_channel + num_taps_equalizer - 1) // 2


def _zf_lstsq(h: np.ndarray, num_taps: int, delay: int) -> np.ndarray:
    matrix = convolution_matrix(h, num_taps)
    target = np.zeros(len(h) + num_taps - 1, dtype=np.complex128)
    target[delay] = 1.0
    solution, *_ = np.linalg.lstsq(matrix, target, rcond=None)
    return solution


def zero_forcing_equalizer(
    h: np.ndarray,
    num_taps: int,
    delay: int | None = None,
    method: str = "auto",
) -> np.ndarray:
    """LS zero-forcing equalizer of Eq. 7.

    Parameters
    ----------
    h:
        Channel estimate (complex FIR taps).
    num_taps:
        ``L``, the equalizer length.
    delay:
        Index of the single '1' in the target vector ``u``; defaults to the
        centre of the combined response.
    method:
        ``"auto"`` (default) solves the Hermitian-Toeplitz normal
        equations ``(H^H H) c = H^H u`` via the Levinson recursion —
        ``H^H H`` is the channel autocorrelation Toeplitz matrix, so no
        dense ``(len(h)+L-1, L)`` system is ever built — falling back to
        dense least squares when the channel is too ill-conditioned;
        ``"lstsq"`` forces the dense solve.

    Returns
    -------
    numpy.ndarray
        Equalizer taps ``c`` of length ``num_taps``.
    """
    h = np.asarray(h, dtype=np.complex128)
    if h.ndim != 1:
        raise ShapeError("channel estimate must be 1-D")
    if num_taps < 1:
        raise ShapeError(f"num_taps must be >= 1, got {num_taps}")
    rows = len(h) + num_taps - 1
    if delay is None:
        delay = equalizer_delay(len(h), num_taps)
    if not 0 <= delay < rows:
        raise ShapeError(f"delay {delay} outside combined response [0, {rows})")
    if method not in ("auto", "lstsq"):
        raise ShapeError(f"unknown method {method!r}")
    if method == "lstsq":
        return _zf_lstsq(h, num_taps, delay)

    # (H^H H)[i, j] = r[i - j] with r the autocorrelation of h;
    # (H^H u)[j] = conj(h[delay - j]).
    padded = np.concatenate(
        [h, np.zeros(num_taps - 1, dtype=np.complex128)]
    )
    autocorr = np.correlate(padded[: len(h) + num_taps - 1], h, mode="valid")
    if abs(autocorr[0]) < 1e-300:
        return _zf_lstsq(h, num_taps, delay)
    rhs = np.zeros(num_taps, dtype=np.complex128)
    j_lo = max(0, delay - len(h) + 1)
    j_hi = min(num_taps - 1, delay)
    if j_lo <= j_hi:
        indices = np.arange(j_lo, j_hi + 1)
        rhs[indices] = np.conj(h[delay - indices])
    try:
        solution = solve_toeplitz((autocorr, np.conj(autocorr)), rhs)
        if np.all(np.isfinite(solution)):
            return solution
    except np.linalg.LinAlgError:
        pass
    return _zf_lstsq(h, num_taps, delay)


def mmse_equalizer(
    h: np.ndarray,
    num_taps: int,
    noise_variance: float,
    delay: int | None = None,
) -> np.ndarray:
    """MMSE linear equalizer (the paper's future-work alternative to ZF).

    Solves ``(H^H H + sigma^2 I) c = H^H u``; reduces to ZF as
    ``noise_variance -> 0``.
    """
    h = np.asarray(h, dtype=np.complex128)
    if h.ndim != 1:
        raise ShapeError("channel estimate must be 1-D")
    if noise_variance < 0:
        raise ShapeError(f"noise_variance must be >= 0, got {noise_variance}")
    rows = len(h) + num_taps - 1
    if delay is None:
        delay = equalizer_delay(len(h), num_taps)
    if not 0 <= delay < rows:
        raise ShapeError(f"delay {delay} outside combined response [0, {rows})")
    matrix = convolution_matrix(h, num_taps)
    target = np.zeros(rows, dtype=np.complex128)
    target[delay] = 1.0
    gram = matrix.conj().T @ matrix + noise_variance * np.eye(num_taps)
    rhs = matrix.conj().T @ target
    return np.linalg.solve(gram, rhs)


def equalize(
    y: np.ndarray,
    equalizer: np.ndarray,
    delay: int,
    output_length: int | None = None,
) -> np.ndarray:
    """Apply an equalizer and strip its decision delay.

    Returns the equalized signal re-aligned to the transmitted-sample
    timeline; ``output_length`` truncates/pads to a known signal length.
    """
    y = np.asarray(y)
    equalizer = np.asarray(equalizer)
    if y.ndim != 1 or equalizer.ndim != 1:
        raise ShapeError("equalize expects 1-D signal and equalizer")
    z = np.convolve(y, equalizer)
    z = z[delay:]
    if output_length is not None:
        if len(z) < output_length:
            z = np.concatenate(
                [z, np.zeros(output_length - len(z), dtype=z.dtype)]
            )
        else:
            z = z[:output_length]
    return z


def equalize_batch(
    y: np.ndarray,
    equalizers: np.ndarray,
    delay: int,
    output_length: int | None = None,
) -> np.ndarray:
    """Row-wise :func:`equalize`: filter a ``(P, samples)`` batch.

    Every row shares the same decision ``delay`` (the batch decode path
    uses equal-length channel estimates, which fixes the delay).

    Parameters
    ----------
    y:
        ``(P, samples)`` received batch (complex).
    equalizers:
        ``(P, taps)`` per-row equalizers, or one shared ``(taps,)``
        vector.
    delay:
        Decision delay stripped from every row (samples).
    output_length:
        Truncate/zero-pad each row to this length when given.

    Returns
    -------
    numpy.ndarray
        ``(P, output_length)`` (or ``(P, samples + taps - 1 - delay)``)
        complex matrix; row ``p`` matches
        ``equalize(y[p], equalizers[p], delay, output_length)`` within
        ``1e-10`` (exact on the direct convolution path).
    """
    y = np.asarray(y)
    equalizers = np.asarray(equalizers)
    if y.ndim != 2:
        raise ShapeError(f"y must be (P, samples), got shape {y.shape}")
    z = convolve_batch(y, equalizers)[:, delay:]
    if output_length is not None:
        if z.shape[1] < output_length:
            pad = np.zeros(
                (z.shape[0], output_length - z.shape[1]), dtype=z.dtype
            )
            z = np.concatenate([z, pad], axis=1)
        else:
            z = z[:, :output_length]
    return z
