"""Deterministic, time-ordered event streams over N concurrent links.

The batch campaign machinery (PRs 1-3) generates *sets* and scores them
offline; the streaming subsystem replays a registered
:class:`~repro.campaign.scenario.Scenario` as what a serving system
would actually see: per link, a camera produces a depth frame every
33.3 ms and the mote transmits a packet every 100 ms, and the merged
system-wide event stream interleaves every link in time order.

Each link walks its own human (or humans, for multi-walker scenarios)
through the room: link ``l`` is one measurement take of a *derived*
configuration whose seed is disjoint from the scenario's own campaign
(:func:`stream_link_config`), so streamed trajectories are never part of
any training split.  Generation rides the existing vectorized engines —
:meth:`~repro.channel.environment.IndoorEnvironment.cir_batch` /
``cir_multi_batch`` for the channels and
:meth:`~repro.vision.camera.DepthCamera.render_batch` /
``render_multi_batch`` for the frames — and resolves through the
content-addressed :class:`~repro.campaign.cache.DatasetCache`, so link
traces are seed-reproducible, cache-hit on repeat runs and fan out over
``workers`` processes like any other campaign dataset.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..config import SimulationConfig
from ..dataset.generator import build_components, generate_measurement_set
from ..dataset.trace import MeasurementSet
from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..campaign.cache import DatasetCache

#: Added to ``config.seed`` when deriving link-trace configurations so
#: streamed walks never replay a trajectory any training/validation/test
#: set of the same scenario was generated from.
STREAM_SEED_OFFSET = 100_003

#: ``DatasetConfig`` requires >= 3 sets; small link counts still
#: materialize this many (extra sets are cached but not replayed).
_MIN_SETS = 3

#: Event kinds, ordered: at equal timestamps a frame (rank 0) is
#: delivered before a packet (rank 1) — the camera output is available
#: to the transmit-time decision of the same instant.
EVENT_FRAME = "frame"
EVENT_PACKET = "packet"
_KIND_RANK = {EVENT_FRAME: 0, EVENT_PACKET: 1}


@dataclass(frozen=True)
class StreamEvent:
    """One timestamped occurrence on one link.

    ``index`` is the frame index (``kind == "frame"``) or the packet
    slot (``kind == "packet"``) within the link's trace.
    """

    time_s: float
    kind: str
    link: int
    index: int

    @property
    def kind_rank(self) -> int:
        """Sort rank of the event kind (frames before packets)."""
        return _KIND_RANK[self.kind]


@dataclass
class LinkTrace:
    """One link's replayable walk: a measurement set plus its link id."""

    link: int
    measurement_set: MeasurementSet

    @property
    def num_slots(self) -> int:
        """Packet transmission slots available on this link."""
        return self.measurement_set.num_packets


def stream_link_config(
    config: SimulationConfig,
    links: int,
    slots: int | None = None,
) -> SimulationConfig:
    """Derive the configuration whose sets are the scenario's link traces.

    The derived config keeps the scenario's PHY/channel/room/mobility
    parameters — streamed links experience exactly the campaign's
    physics, including the scenario-language axes (grouped walkers,
    heterogeneous ``speed_profile`` bands, custom rooms) which flow
    through untouched — but re-dimensions the dataset (one set per
    link, ``slots`` packets each) and offsets the seed by
    :data:`STREAM_SEED_OFFSET`, so
    link trajectories are disjoint from every set of the scenario's own
    campaign (no train/serve leakage).  Because the result is a plain
    :class:`~repro.config.SimulationConfig`, the dataset cache keys it
    like any other campaign and repeat runs are pure cache hits.
    """
    if links < 1:
        raise ConfigurationError(f"links must be >= 1, got {links}")
    if slots is None:
        slots = config.dataset.packets_per_set
    if slots < 2:
        raise ConfigurationError(f"slots must be >= 2, got {slots}")
    return config.replace(
        seed=config.seed + STREAM_SEED_OFFSET,
        dataset=dataclasses.replace(
            config.dataset,
            num_sets=max(links, _MIN_SETS),
            packets_per_set=slots,
            # Streams replay every slot; the offline skip-warm-up
            # convention does not apply (kept minimal for validation).
            skip_initial=1,
        ),
    )


def build_link_traces(
    config: SimulationConfig,
    links: int,
    slots: int | None = None,
    cache: "DatasetCache | None" = None,
    workers: int | None = None,
    verbose: bool = False,
    sets: list[MeasurementSet] | None = None,
) -> list[LinkTrace]:
    """Materialize ``links`` independent link traces for a scenario config.

    With ``cache`` given, the derived link-trace campaign resolves
    through the content-addressed dataset cache (set-granular resume,
    process-pool fan-out over ``workers``); otherwise the sets are
    generated in-process.  ``sets`` short-circuits resolution entirely
    with already-loaded measurement sets of the derived configuration
    (the campaign runner hands over the ``links`` step's freshly
    generated stash this way).  Link ``l`` replays set ``l`` of the
    derived configuration, so the mapping is stable across runs and
    worker counts.
    """
    derived = stream_link_config(config, links, slots=slots)
    if sets is None:
        if cache is not None:
            sets = cache.load_or_generate(
                derived, workers=workers, verbose=verbose
            )
        else:
            components = build_components(derived)
            sets = [
                generate_measurement_set(components, set_index)
                for set_index in range(derived.dataset.num_sets)
            ]
    return [
        LinkTrace(link=link, measurement_set=sets[link])
        for link in range(links)
    ]


def merge_event_streams(
    traces: Sequence[LinkTrace],
) -> list[StreamEvent]:
    """Merge every link's frames and packets into one time-ordered stream.

    Ordering is total and deterministic: events order by ``(tick,
    kind-rank, link, index)`` on the integer-tick grid of
    :mod:`repro.stream.scheduler`, so at equal timestamps frames
    precede packets and lower link ids precede higher ones.  Every
    simulator run — regardless of how the traces were generated (serial
    or ``workers=N``) — consumes the identical sequence, which is what
    makes closed-loop metrics bit-identical across runs.

    This materialized form exists for figures and tests; the simulator
    itself drains the lazy heap scheduler directly and never builds the
    dense list (``traces`` may be any iterable, including a generator —
    it is normalized before the emptiness check).
    """
    from .scheduler import KIND_FRAME, replay_scheduler

    traces = list(traces)
    if not traces:
        raise ConfigurationError("merge_event_streams needs link traces")
    by_link = {trace.link: trace.measurement_set for trace in traces}
    events: list[StreamEvent] = []
    for event in replay_scheduler(traces):
        measurement_set = by_link[event.link]
        if event.kind == KIND_FRAME:
            time_s = float(measurement_set.frame_times[event.index])
        else:
            time_s = float(measurement_set.packets[event.index].time_s)
        events.append(
            StreamEvent(
                time_s=time_s,
                kind=event.kind,
                link=event.link,
                index=event.index,
            )
        )
    return events
