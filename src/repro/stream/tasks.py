"""Process-pool entry points for parallel streaming campaigns.

The per-policy ``stream@<policy>`` steps of a streaming campaign are
independent of each other — each replays the same cached link traces
under a different link-adaptation policy — so the parallel wavefront
executor can fan them out over worker processes.  A worker cannot share
the parent's in-process memos (``CampaignContext.shared``), so
:class:`StreamPolicyTask` carries plain data only and the task rebuilds
everything from the on-disk stores: link traces from the dataset cache
(a pure hit — the ``links`` step materialized them) and the serving
model from the checkpoint registry (a pure hit — the ``train@stream``
step resolved it).

Simulation payloads are deterministic pure functions of the traces,
the model and the policy, so running policies in parallel workers
yields byte-identical step outputs to the serial path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..config import SimulationConfig


@dataclass(frozen=True)
class StreamPolicyTask:
    """Picklable work order of one ``stream@<policy>`` step."""

    #: The campaign's base (training) configuration.
    config: SimulationConfig
    #: Concurrent links replayed.
    links: int
    #: Packet slots per link (``None`` = the scenario default).
    slots: int | None
    #: Slots a packet may wait before counting as a deadline miss.
    deadline_slots: int
    #: Link-adaptation policy name (see ``repro.stream.policy``).
    policy: str
    #: Proactive-policy defer threshold override (``None`` = default).
    defer_threshold: float | None
    #: Dataset cache root (the worker builds its own cache instance).
    cache_root: str
    #: Model checkpoint registry root (prediction-driven policies).
    model_root: str | None
    #: Serving-model prediction horizon in camera frames.
    horizon: int
    #: Serving-model training seed.
    seed: int
    #: Wall-time budget of one prediction round (``None`` = unbounded);
    #: overruns degrade the round to the reactive fallback.
    round_deadline_s: float | None = None


def run_stream_policy_task(task: StreamPolicyTask) -> str:
    """Simulate one policy's closed loop; returns the JSON payload.

    Mirrors the in-process step body exactly: cached link traces, a
    registry-resolved serving service for prediction-driven policies,
    one :class:`~repro.stream.simulator.StreamSimulator` pass.  Raises
    when a prediction-driven policy finds no model registry root — the
    campaign DAG guarantees ``train@stream`` ran first, so a miss here
    is a configuration error, not a training trigger.
    """
    from ..campaign.cache import DatasetCache
    from ..campaign.models import ModelCheckpointRegistry
    from ..dataset.generator import build_components
    from ..dataset.sets import rotating_set_combinations
    from ..errors import ConfigurationError
    from .events import build_link_traces, stream_link_config
    from .policy import build_policy
    from .service import PredictionService
    from .simulator import StreamSimulator

    cache = DatasetCache(task.cache_root)
    kwargs = {}
    if task.defer_threshold is not None and task.policy == "proactive":
        kwargs["defer_threshold"] = task.defer_threshold
    policy = build_policy(task.policy, **kwargs)

    service = None
    if policy.uses_predictions:
        if task.model_root is None:
            raise ConfigurationError(
                "prediction-driven stream tasks need a model registry "
                "root"
            )
        registry = ModelCheckpointRegistry(task.model_root)
        sets = cache.load_or_generate(task.config)
        combination = rotating_set_combinations(
            task.config.dataset.num_sets
        )[0]
        service = PredictionService.from_registry(
            registry,
            task.config,
            [sets[i] for i in combination.training_indices()],
            [sets[combination.validation_index]],
            horizon_frames=task.horizon,
            seed=task.seed,
        )

    derived = stream_link_config(
        task.config, task.links, slots=task.slots
    )
    traces = build_link_traces(
        task.config, task.links, slots=task.slots, cache=cache
    )
    simulator = StreamSimulator(
        build_components(derived),
        traces,
        deadline_slots=task.deadline_slots,
        round_deadline_s=task.round_deadline_s,
    )
    result = simulator.run(policy, service=service)
    return json.dumps(result.payload(), sort_keys=True)


@dataclass(frozen=True)
class CapacityTask:
    """Picklable work order of one ``capacity@<links>`` step.

    Capacity points are pure queueing-model simulations — no PHY, no
    dataset, no checkpoints — so the task is nothing but the simulation
    parameters; payloads are deterministic functions of them, which is
    what makes ``--jobs N`` byte-identical to serial.
    """

    #: Concurrent links the modeled fleet drives.
    links: int
    #: Simulated horizon in seconds.
    duration_s: float
    #: Arrival-process spec string (``mixed`` allowed).
    traffic: str
    #: QoS class-mix name.
    qos: str
    #: Arrival/class RNG seed.
    seed: int
    #: Modeled serving backend (see ``ServiceModel``).
    service_pps: float = 900.0
    batch_overhead_s: float = 0.004
    max_batch: int = 16
    admission_limit: int = 512


def run_capacity_task(task: CapacityTask) -> str:
    """Simulate one capacity point; returns the JSON payload."""
    from .capacity import ServiceModel, simulate_capacity

    result = simulate_capacity(
        task.links,
        duration_s=task.duration_s,
        traffic=task.traffic,
        qos=task.qos,
        seed=task.seed,
        model=ServiceModel(
            service_pps=task.service_pps,
            batch_overhead_s=task.batch_overhead_s,
            max_batch=task.max_batch,
            admission_limit=task.admission_limit,
        ),
    )
    return json.dumps(result.payload(), sort_keys=True)
