"""Online VVD inference service with cross-link micro-batching.

The closed-loop simulator produces one prediction request per link per
packet slot.  :class:`PredictionService` queues concurrently pending
requests from *all* links and serves them in micro-batched forward
passes — the serving-side analogue of the batched PHY engine.
``benchmarks/test_stream_throughput.py`` pins the throughput at 64
concurrent links against the per-request serving layer one would write
on the seed codebase (reference conv engine, one forward per frame).
``max_batch`` defaults to the measured single-core sweet spot: the
im2col conv already turns one 50x90 frame into a ~4.5k-row GEMM, so
growing micro-batches past ~16 frames trades cache locality for no
extra GEMM efficiency (batch 64 lands off a measured cliff).

Models resolve through the content-addressed
:class:`~repro.campaign.models.ModelCheckpointRegistry`
(:meth:`PredictionService.from_registry`), so a warmed registry brings a
service up without training and repeat campaign runs are pure
checkpoint hits.

The service tracks per-request latency and aggregate throughput
counters (:class:`ServiceStats`).  They measure *wall time* and are
intentionally excluded from the deterministic stream-metric payloads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .. import faults
from ..core.blockage import BlockageDetector
from ..core.training import TrainedVVD
from ..errors import ConfigurationError
from ..experiments.metrics import LatencyReservoir
from ..obs import trace
from ..vision.preprocessing import normalize_depth_batch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..campaign.models import ModelCheckpointRegistry
    from ..config import SimulationConfig
    from ..dataset.trace import MeasurementSet


@dataclass
class ServiceStats:
    """Latency/throughput accounting of one :class:`PredictionService`."""

    #: Requests accepted by :meth:`PredictionService.submit`.
    requests: int = 0
    #: Predictions returned (micro-batched path).
    predictions: int = 0
    #: Forward passes executed by :meth:`PredictionService.flush`.
    batches: int = 0
    #: Largest micro-batch served so far.
    max_batch: int = 0
    #: Wall time spent inside micro-batched forward passes.
    flush_seconds: float = 0.0
    #: Predictions served through the per-request baseline path.
    singles: int = 0
    #: Wall time spent inside per-request forward passes.
    single_seconds: float = 0.0
    #: Requests rejected by admission control (``admission_limit``).
    shed_requests: int = 0
    #: Bounded per-request latency accounting (submit -> completed
    #: flush).  The old unbounded ``latencies_s`` list leaked one float
    #: per request forever — fatal at 10k links; the reservoir keeps a
    #: deterministic fixed-size sample plus exact count / sum / max.
    latency: LatencyReservoir = field(
        default_factory=lambda: LatencyReservoir(seed="service")
    )

    @property
    def latencies_s(self) -> list[float]:
        """Latency samples currently held by the reservoir (bounded
        back-compat view of the old unbounded list)."""
        return self.latency.samples

    def record_latency(self, value_s: float) -> None:
        """Record one request latency sample (seconds)."""
        self.latency.add(value_s)

    def observe_flush(
        self,
        chunk_size: int,
        started_at: float,
        completed_at: float,
        submitted_ats: "Sequence[float]",
    ) -> None:
        """Account one micro-batched forward pass.

        Exactly one ``(started_at, completed_at)`` clock pair per
        chunk feeds *both* the running counters and the per-request
        latency reservoir, so ``flush_seconds`` and every reservoir
        sample are mutually consistent by construction —
        ``latency_quantiles`` and ``latency_sla`` can never disagree
        about which events they summarize (pinned in
        ``tests/stream/test_service.py``).
        """
        self.batches += 1
        self.predictions += chunk_size
        if chunk_size > self.max_batch:
            self.max_batch = chunk_size
        self.flush_seconds += completed_at - started_at
        for submitted_at in submitted_ats:
            self.latency.add(completed_at - submitted_at)

    def observe_single(
        self, started_at: float, completed_at: float
    ) -> None:
        """Account one per-request baseline forward pass."""
        self.singles += 1
        self.single_seconds += completed_at - started_at

    def predictions_per_second(self) -> float:
        """Aggregate micro-batched throughput (0.0 before any flush)."""
        if self.flush_seconds <= 0.0:
            return 0.0
        return self.predictions / self.flush_seconds

    def latency_quantiles(self) -> tuple[float, float]:
        """(median, p95) per-request latency in seconds (0.0 when idle)."""
        if self.latency.count == 0:
            return 0.0, 0.0
        p50, p95 = self.latency.percentiles([50, 95])
        return p50, p95

    def latency_sla(self) -> tuple[float, float, float]:
        """(p50, p99, p999) per-request latency in seconds — the SLA
        trio reported by capacity runs (0.0 each when idle)."""
        return self.latency.quantiles()

    def mean_batch_size(self) -> float:
        """Average micro-batch size (0.0 before any flush)."""
        if self.batches == 0:
            return 0.0
        return self.predictions / self.batches

    def summary(self) -> str:
        """One-line human-readable form used by the CLI."""
        p50, p95 = self.latency_quantiles()
        return (
            f"{self.predictions} prediction(s) in {self.batches} "
            f"batch(es) (mean {self.mean_batch_size():.1f}, max "
            f"{self.max_batch}); {self.predictions_per_second():.0f} "
            f"pred/s, latency p50 {1e3 * p50:.2f} ms / p95 "
            f"{1e3 * p95:.2f} ms"
        )


@dataclass
class _PendingRequest:
    link: int
    frame: np.ndarray
    submitted_at: float


@dataclass
class Prediction:
    """One served request: canonical CIR estimate + blockage probability.

    ``blockage_probability`` is ``None`` when the service carries no
    :class:`~repro.core.blockage.BlockageDetector` (prediction-only
    deployments).
    """

    taps: np.ndarray
    blockage_probability: float | None = None


class PredictionService:
    """Micro-batching depth-frame -> CIR inference front-end.

    Requests accumulate via :meth:`submit` and are served together by
    :meth:`flush`: pending frames are stacked, normalized in one
    vectorized pass (:func:`~repro.vision.preprocessing.
    normalize_depth_batch`) and pushed through
    :meth:`~repro.core.training.TrainedVVD.predict_cir` in chunks of at
    most ``max_batch``.  Predictions are deterministic pure functions of
    the frames, so micro-batching never changes closed-loop metrics —
    only wall time.
    """

    def __init__(
        self,
        trained: TrainedVVD,
        max_depth_m: float,
        max_batch: int = 16,
        detector: BlockageDetector | None = None,
        admission_limit: int | None = None,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {max_batch}"
            )
        if admission_limit is not None and admission_limit < 1:
            raise ConfigurationError(
                f"admission_limit must be >= 1, got {admission_limit}"
            )
        self.trained = trained
        self.max_depth_m = float(max_depth_m)
        self.max_batch = int(max_batch)
        #: Admission control: at most this many links pending per flush
        #: cycle; excess submits are shed (``None`` = accept all, the
        #: pre-SLA behavior).
        self.admission_limit = (
            None if admission_limit is None else int(admission_limit)
        )
        #: Optional Sec. 6.4 blockage head served alongside the CIR
        #: prediction (one pooled matmul per micro-batch — negligible
        #: next to the CNN forward).
        self.detector = detector
        self.stats = ServiceStats()
        self._pending: dict[int, _PendingRequest] = {}

    @classmethod
    def from_registry(
        cls,
        registry: "ModelCheckpointRegistry",
        config: "SimulationConfig",
        training_sets: "Sequence[MeasurementSet]",
        validation_sets: "Sequence[MeasurementSet]",
        horizon_frames: int = 0,
        seed: int = 7,
        engine: str = "batch",
        verbose: bool = False,
        max_batch: int = 16,
        with_blockage_detector: bool = True,
    ) -> "PredictionService":
        """Bring a service up through the model checkpoint registry.

        The CNN resolves content-addressed — training runs only when the
        (config, split, horizon, seed) key has no checkpoint — so a
        service restart over a warmed registry is load-only.  The
        Sec. 6.4 blockage head (``with_blockage_detector``) is a
        deterministic logistic fit over the same training sets; it
        trains in milliseconds, so it is simply re-fit at service
        construction rather than checkpointed.
        """
        trained = registry.load_or_train(
            training_sets,
            validation_sets,
            config,
            horizon_frames=horizon_frames,
            seed=seed,
            engine=engine,
            verbose=verbose,
        )
        detector = None
        if with_blockage_detector:
            detector = BlockageDetector().fit(training_sets, config)
        return cls(
            trained,
            config.camera.max_depth_m,
            max_batch=max_batch,
            detector=detector,
        )

    # -- request path -----------------------------------------------------
    def submit(self, link: int, frame: np.ndarray) -> bool:
        """Queue one link's depth frame for the next :meth:`flush`.

        A second submit from the same link before the flush replaces the
        earlier frame — the service always answers with the freshest
        camera output, exactly like a real serving queue coalescing
        stale requests.  With ``admission_limit`` set, a *new* link
        beyond the limit is shed instead of queued (returns ``False``
        and counts in ``stats.shed_requests``); refreshing an
        already-pending link is always admitted.
        """
        if (
            self.admission_limit is not None
            and link not in self._pending
            and len(self._pending) >= self.admission_limit
        ):
            self.stats.shed_requests += 1
            return False
        self._pending[link] = _PendingRequest(
            link=link,
            frame=np.asarray(frame),
            submitted_at=time.perf_counter(),
        )
        self.stats.requests += 1
        return True

    @property
    def pending(self) -> int:
        """Requests waiting for the next flush."""
        return len(self._pending)

    def flush(self) -> dict[int, Prediction]:
        """Serve every pending request in micro-batched forward passes.

        Returns ``{link: Prediction}`` for each pending link.  Links are
        processed in sorted order and chunked by ``max_batch``; results
        are identical to per-request inference (same frames, same
        weights), just amortized over one GEMM-heavy forward per chunk.
        When the service carries a blockage detector, its probabilities
        come from the same normalized micro-batch.
        """
        if not self._pending:
            return {}
        if faults.active_plan() is not None:
            # Chaos hook: an io_error spec here simulates a serving
            # outage, a stall spec a slow forward pass — the simulator's
            # degraded mode must absorb both.
            faults.inject("service.flush", f"batch@{self.stats.batches}")
        requests = [
            self._pending[link] for link in sorted(self._pending)
        ]
        self._pending.clear()
        results: dict[int, Prediction] = {}
        with trace.span("service.flush", pending=len(requests)):
            for lo in range(0, len(requests), self.max_batch):
                chunk = requests[lo : lo + self.max_batch]
                start = time.perf_counter()
                frames = np.stack(
                    [request.frame for request in chunk]
                )
                images = normalize_depth_batch(
                    frames, self.max_depth_m
                )
                taps = self.trained.predict_cir(images)
                probabilities = None
                if self.detector is not None:
                    probabilities = self.detector.predict_proba(images)
                completed = time.perf_counter()
                self.stats.observe_flush(
                    len(chunk),
                    start,
                    completed,
                    [request.submitted_at for request in chunk],
                )
                for row, request in enumerate(chunk):
                    results[request.link] = Prediction(
                        taps=taps[row],
                        blockage_probability=(
                            None
                            if probabilities is None
                            else float(probabilities[row])
                        ),
                    )
        return results

    def predict_one(self, frame: np.ndarray) -> Prediction:
        """Per-request baseline: one frame, one forward pass.

        This is the path micro-batching replaces; the stream-throughput
        benchmark measures its predictions/s against :meth:`flush` at 64
        concurrent links.
        """
        start = time.perf_counter()
        frames = np.asarray(frame)[None, ...]
        images = normalize_depth_batch(frames, self.max_depth_m)
        taps = self.trained.predict_cir(images)[0]
        probability = None
        if self.detector is not None:
            probability = float(self.detector.predict_proba(images)[0])
        completed = time.perf_counter()
        self.stats.observe_single(start, completed)
        return Prediction(taps=taps, blockage_probability=probability)
