"""Heap-based discrete-event scheduler keyed on integer ticks.

The streaming subsystem used to *materialize* every link's frame and
packet events into one dense, pre-sorted list and linearly scan it,
grouping packet slots by exact float equality of their computed times
(``events.sort`` + ``time_s ==`` comparisons).  That replay breaks down
on the road to thousands of links twice over: the event list is
``O(links x (frames + slots))`` memory before the first slot runs, and
float-sum equality is an accident of every link computing its times the
same way — an adversarial packet interval (say 0.0333... s) accumulated
differently per link silently splits one slot into several.

This module replaces both mechanisms:

- **Integer ticks.** Event times are quantized to nanosecond ticks
  (:func:`seconds_to_ticks`).  Packet slots group by tick equality,
  which is exact integer comparison — two times within half a
  nanosecond are the same slot no matter how their floats were
  computed.  Frame/packet grids in this codebase are >= milliseconds
  apart, so the quantization can never merge genuinely distinct slots.
- **A lazy heap.** :class:`EventScheduler` holds at most ONE pending
  event per :class:`EventSource` in a heap and re-arms the source on
  every pop, so the scheduler's memory is ``O(links)`` regardless of
  how many events each link will ever emit.  Sources synthesize their
  events on demand (:class:`ReplayLinkSource` walks a materialized
  trace cursor-by-cursor; the capacity simulator's traffic sources
  generate arrivals from seeded RNGs with no backing arrays at all).

Ordering is total and deterministic: ``(tick, kind-rank, link, index)``
— at one tick frames precede packets and lower link ids precede higher
ones, exactly the contract the dense sort provided, which is what keeps
pre-rewrite stream payloads byte-identical.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Protocol, Sequence

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .events import LinkTrace

#: Tick resolution: one nanosecond.  Coarse enough that float noise in
#: accumulated times (~1e-16 s) collapses onto one tick, fine enough
#: that real event grids (>= 1 ms apart) never collide.
TICKS_PER_SECOND = 1_000_000_000

#: Event kinds, ordered: at equal ticks a frame (rank 0) is delivered
#: before a packet (rank 1) — camera output is available to the
#: transmit-time decision of the same instant.
KIND_FRAME = "frame"
KIND_PACKET = "packet"
_KIND_RANK = {KIND_FRAME: 0, KIND_PACKET: 1}


def seconds_to_ticks(time_s: float) -> int:
    """Quantize a float time to the integer tick grid (round-to-nearest)."""
    return round(time_s * TICKS_PER_SECOND)


def ticks_to_seconds(tick: int) -> float:
    """Float seconds of an integer tick (for display / payloads)."""
    return tick / TICKS_PER_SECOND


@dataclass(frozen=True)
class TickEvent:
    """One scheduled occurrence on one link, keyed on integer ticks.

    ``index`` is the frame index (``kind == "frame"``) or the packet
    slot (``kind == "packet"``) within the link's event grid.
    """

    tick: int
    kind: str
    link: int
    index: int

    @property
    def kind_rank(self) -> int:
        """Sort rank of the event kind (frames before packets)."""
        return _KIND_RANK[self.kind]

    @property
    def time_s(self) -> float:
        """Float-seconds view of :attr:`tick`."""
        return ticks_to_seconds(self.tick)

    def sort_key(self) -> tuple[int, int, int, int]:
        """The total deterministic ordering of the event stream."""
        return (self.tick, self.kind_rank, self.link, self.index)


class EventSource(Protocol):
    """Anything that lazily emits one link's events in tick order."""

    def next_event(self) -> TickEvent | None:
        """Produce the source's next event, or ``None`` when drained.

        Successive calls must return events in non-decreasing
        :meth:`TickEvent.sort_key` order — the scheduler holds only one
        pending event per source and relies on the source itself being
        internally ordered.
        """
        ...  # pragma: no cover - protocol


class ReplayLinkSource:
    """Lazy event source over one materialized :class:`LinkTrace`.

    Walks the trace with two integer cursors (frame index, packet slot)
    and emits the earlier event on demand — no event list is ever
    built.  ``max_slots`` truncates the *packet* grid to the common
    slot window of a multi-link run; frames beyond the window are still
    emitted (the camera keeps filming after the last common slot),
    preserving the established ragged-trace semantics.
    """

    def __init__(self, trace: "LinkTrace", max_slots: int | None = None):
        self._trace = trace
        self._link = trace.link
        measurement_set = trace.measurement_set
        self._frame_ticks = [
            seconds_to_ticks(float(t))
            for t in measurement_set.frame_times
        ]
        self._packet_ticks = [
            seconds_to_ticks(float(record.time_s))
            for record in measurement_set.packets
        ]
        if max_slots is not None:
            self._packet_ticks = self._packet_ticks[:max_slots]
        self._frame_i = 0
        self._packet_i = 0

    def next_event(self) -> TickEvent | None:
        """The trace's next frame or packet event, in tick order."""
        frame_ok = self._frame_i < len(self._frame_ticks)
        packet_ok = self._packet_i < len(self._packet_ticks)
        if not frame_ok and not packet_ok:
            return None
        # Frames win ties (rank 0 before rank 1 at one tick).
        if frame_ok and (
            not packet_ok
            or self._frame_ticks[self._frame_i]
            <= self._packet_ticks[self._packet_i]
        ):
            event = TickEvent(
                tick=self._frame_ticks[self._frame_i],
                kind=KIND_FRAME,
                link=self._link,
                index=self._frame_i,
            )
            self._frame_i += 1
            return event
        event = TickEvent(
            tick=self._packet_ticks[self._packet_i],
            kind=KIND_PACKET,
            link=self._link,
            index=self._packet_i,
        )
        self._packet_i += 1
        return event


class EventScheduler:
    """Merge N lazy event sources through a heap, one pending event each.

    The scheduler's working set is one :class:`TickEvent` per live
    source — ``O(links)`` — independent of how many events the sources
    will emit over the run.  :meth:`pop` returns the globally next
    event and immediately re-arms its source; :meth:`peek` supports the
    simulator's same-tick slot grouping without consuming.
    """

    def __init__(self, sources: Sequence[EventSource]):
        self._heap: list[tuple[tuple[int, int, int, int], int, TickEvent]] = []
        self._sources = list(sources)
        for slot, source in enumerate(self._sources):
            self._arm(slot)

    def _arm(self, slot: int) -> None:
        event = self._sources[slot].next_event()
        if event is not None:
            heapq.heappush(self._heap, (event.sort_key(), slot, event))

    @property
    def pending(self) -> int:
        """Live sources still holding an event."""
        return len(self._heap)

    def peek(self) -> TickEvent | None:
        """The next event without consuming it (``None`` when drained)."""
        if not self._heap:
            return None
        return self._heap[0][2]

    def pop(self) -> TickEvent | None:
        """Consume the next event and re-arm its source."""
        if not self._heap:
            return None
        _, slot, event = heapq.heappop(self._heap)
        self._arm(slot)
        return event

    def pop_slot_group(self) -> list[TickEvent]:
        """Pop every *packet* event sharing the next event's tick.

        The integer-tick replacement for the float-equality slot scan:
        packet events group by exact tick comparison, and the group
        stops before any frame event (frames sort first at a tick, so a
        same-tick frame was already delivered).  Returns ``[]`` when
        the next event is a frame or the scheduler is drained.
        """
        head = self.peek()
        if head is None or head.kind != KIND_PACKET:
            return []
        tick = head.tick
        group: list[TickEvent] = []
        while True:
            event = self.peek()
            if (
                event is None
                or event.kind != KIND_PACKET
                or event.tick != tick
            ):
                break
            group.append(self.pop())
        return group

    def __iter__(self) -> Iterator[TickEvent]:
        """Drain the scheduler in deterministic order."""
        while True:
            event = self.pop()
            if event is None:
                return
            yield event


def replay_scheduler(
    traces: Sequence["LinkTrace"], max_slots: int | None = None
) -> EventScheduler:
    """An :class:`EventScheduler` over materialized link traces."""
    traces = list(traces)
    if not traces:
        raise ConfigurationError("replay_scheduler needs link traces")
    return EventScheduler(
        [ReplayLinkSource(trace, max_slots=max_slots) for trace in traces]
    )
