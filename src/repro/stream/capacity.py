"""Capacity simulation: how many links does the serving layer sustain?

The replay simulator answers "what happens to *these* recorded links";
the capacity simulator answers the production question — given an
arrival-process model, a QoS class mix and a modeled
:class:`~repro.stream.service.PredictionService` (batch service rate,
per-flush overhead, admission limit), how many links can one server
sustain before per-class SLOs (deadline-miss rate, shedding) break?

It is a pure discrete-event queueing model over the heap scheduler:

- **Arrivals** come from one lazy
  :class:`~repro.stream.traffic.ArrivalSource` per link (O(links)
  memory, no arrival arrays), each seeded
  ``"traffic:{seed}:{link}:{spec}"`` — byte-identical across repeat
  runs and worker counts.
- **Service** is a single batch server: requests queue per class,
  batches of at most ``max_batch`` form in priority order whenever the
  server is free, and one batch costs
  ``overhead + n / service_pps`` *simulated* seconds.  Latency,
  deadline misses and shedding are therefore deterministic functions of
  the seed — no wall clock anywhere.
- **Admission control** bounds the queue: when full, a new arrival is
  shed unless a strictly lower-priority request is queued, in which
  case the youngest such request is evicted instead (priority
  load-shedding).

Everything lands in the :class:`~repro.experiments.metrics.ClassMetrics`
SLA layer: per-class p50/p99/p999 latency, deadline-miss and shed
rates, and :func:`capacity_curve` sweeps link counts to find the
largest fleet whose classes all meet their SLO targets.

The default service model mirrors the measured serving numbers in
BENCH_trajectory.json (~900 predictions/s at paper frame size,
micro-batch 16); override it to model faster backends.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..experiments.metrics import (
    ClassMetrics,
    LatencyReservoir,
    StreamMetrics,
)
from .scheduler import EventScheduler, seconds_to_ticks, ticks_to_seconds
from .traffic import (
    ArrivalSource,
    ClassAssigner,
    QoSClass,
    get_qos_mix,
    link_traffic_spec,
    validate_traffic,
)


@dataclass(frozen=True)
class ServiceModel:
    """Modeled serving backend of a capacity run.

    Defaults follow the measured single-core serving path
    (``benchmarks/test_stream_throughput.py``): ~900 micro-batched
    predictions/s at paper frame size, batches of at most 16, a few ms
    of per-flush overhead.
    """

    #: Steady-state predictions per *simulated* second inside a batch.
    service_pps: float = 900.0
    #: Fixed per-batch cost (stacking, normalization, dispatch).
    batch_overhead_s: float = 0.004
    #: Largest micro-batch the modeled server forms.
    max_batch: int = 16
    #: Admission limit: most requests queued at once before shedding.
    admission_limit: int = 512

    def __post_init__(self) -> None:
        if self.service_pps <= 0.0:
            raise ConfigurationError(
                f"service_pps must be > 0, got {self.service_pps}"
            )
        if self.batch_overhead_s < 0.0:
            raise ConfigurationError(
                "batch_overhead_s must be >= 0, got "
                f"{self.batch_overhead_s}"
            )
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.admission_limit < 1:
            raise ConfigurationError(
                "admission_limit must be >= 1, got "
                f"{self.admission_limit}"
            )


@dataclass
class _QueuedRequest:
    arrival_tick: int
    link: int
    qos: QoSClass


@dataclass
class CapacityResult:
    """One capacity simulation: aggregate + per-class SLA metrics."""

    links: int
    duration_s: float
    traffic: str
    qos: str
    metrics: StreamMetrics
    #: Arrivals processed (offered across every class).
    arrivals: int = 0
    #: Batches the modeled server executed.
    batches: int = 0

    @property
    def slo_met(self) -> bool:
        """True when every class meets its SLO target (deadline misses
        *plus* shed arrivals count against it — dropping a packet never
        improves the SLO)."""
        mix = {c.name: c for c in get_qos_mix(self.qos)}
        for name, metrics in self.metrics.classes.items():
            target = mix[name].target_miss_rate
            if metrics.slo_miss_rate > target:
                return False
        return True

    def payload(self) -> dict:
        """Deterministic JSON-able payload for campaign steps."""
        return {
            "links": self.links,
            "duration_s": self.duration_s,
            "traffic": self.traffic,
            "qos": self.qos,
            "arrivals": self.arrivals,
            "batches": self.batches,
            "slo_met": self.slo_met,
            "metrics": self.metrics.as_dict(),
        }

    def sla_summary(self) -> str:
        """Human-readable per-class SLA table (CI greps the header)."""
        header = (
            f"SLA summary — {self.links} link(s), {self.traffic} "
            f"traffic, {self.qos} QoS over {self.duration_s:g} s"
        )
        mix = {c.name: c for c in get_qos_mix(self.qos)}
        columns = (
            f"{'class':<8} {'offered':>8} {'shed%':>7} {'miss%':>7} "
            f"{'p50 ms':>8} {'p99 ms':>8} {'p999 ms':>8} "
            f"{'SLO':>8} {'status':>7}"
        )
        lines = [header, "=" * len(columns), columns, "-" * len(columns)]
        ordered = sorted(
            self.metrics.classes.items(),
            key=lambda item: (mix[item[0]].priority, item[0]),
        )
        for name, metrics in ordered:
            qos = mix[name]
            p50, p99, p999 = metrics.latency.quantiles()
            status = (
                "ok"
                if metrics.slo_miss_rate <= qos.target_miss_rate
                else "VIOL"
            )
            lines.append(
                f"{name:<8} {metrics.offered:>8} "
                f"{100 * metrics.shed_rate:>6.2f}% "
                f"{100 * metrics.slo_miss_rate:>6.2f}% "
                f"{1e3 * p50:>8.2f} {1e3 * p99:>8.2f} "
                f"{1e3 * p999:>8.2f} "
                f"{100 * qos.target_miss_rate:>7.1f}% {status:>7}"
            )
        verdict = "met" if self.slo_met else "VIOLATED"
        lines.append(f"(per-class SLOs {verdict})")
        return "\n".join(lines)


class _ClassQueues:
    """Priority-ordered bounded FIFO queues, one per QoS class."""

    def __init__(self, classes: tuple[QoSClass, ...], limit: int):
        # Serve order: priority ascending, name as the tiebreak.
        self._order = sorted(
            classes, key=lambda c: (c.priority, c.name)
        )
        self._queues: dict[str, deque[_QueuedRequest]] = {
            qos.name: deque() for qos in self._order
        }
        self._limit = limit
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def admit(self, request: _QueuedRequest) -> _QueuedRequest | None:
        """Admit one arrival under the queue limit.

        Returns the request that was *shed* — ``None`` when the queue
        had room, the evicted lower-priority victim when the new
        request displaced one, or the request itself when nothing
        queued is lower-priority than it.
        """
        if self._size < self._limit:
            self._queues[request.qos.name].append(request)
            self._size += 1
            return None
        # Full: evict the youngest request of the lowest-priority
        # non-empty class, if it is strictly lower-priority.
        for qos in reversed(self._order):
            if (
                qos.priority > request.qos.priority
                and self._queues[qos.name]
            ):
                victim = self._queues[qos.name].pop()
                self._queues[request.qos.name].append(request)
                return victim
        return request

    def earliest_tick(self) -> int | None:
        """Oldest queued arrival tick across classes (``None`` empty)."""
        heads = [
            queue[0].arrival_tick
            for queue in self._queues.values()
            if queue
        ]
        return min(heads) if heads else None

    def pop_batch(self, max_batch: int) -> list[_QueuedRequest]:
        """Form one service batch in (priority, FIFO) order."""
        batch: list[_QueuedRequest] = []
        for qos in self._order:
            queue = self._queues[qos.name]
            while queue and len(batch) < max_batch:
                batch.append(queue.popleft())
                self._size -= 1
            if len(batch) >= max_batch:
                break
        return batch


def simulate_capacity(
    links: int,
    duration_s: float = 30.0,
    traffic: str = "mixed",
    qos: str = "triple",
    seed: int = 7,
    model: ServiceModel | None = None,
) -> CapacityResult:
    """Run one deterministic capacity simulation.

    Memory is O(links + admission limit + reservoir capacity) — lazy
    arrival synthesis means nothing scales with ``duration * rate``.
    """
    if links < 1:
        raise ConfigurationError(f"links must be >= 1, got {links}")
    traffic = validate_traffic(traffic)
    classes = get_qos_mix(qos)
    if model is None:
        model = ServiceModel()

    scheduler = EventScheduler(
        [
            ArrivalSource(
                link, link_traffic_spec(traffic, link), seed, duration_s
            )
            for link in range(links)
        ]
    )
    assigners = [
        ClassAssigner(qos, link, seed) for link in range(links)
    ]
    per_class = {
        c.name: ClassMetrics(
            duration_s=duration_s,
            latency=LatencyReservoir(
                seed=f"capacity:{seed}:{c.name}"
            ),
        )
        for c in classes
    }
    queues = _ClassQueues(classes, model.admission_limit)

    arrivals = 0
    batches = 0
    server_free_tick = 0

    def admit_next_arrival() -> None:
        nonlocal arrivals
        event = scheduler.pop()
        assert event is not None
        arrivals += 1
        qos_class = assigners[event.link].draw()
        metrics = per_class[qos_class.name]
        metrics.offered += 1
        shed = queues.admit(
            _QueuedRequest(
                arrival_tick=event.tick,
                link=event.link,
                qos=qos_class,
            )
        )
        if shed is None:
            metrics.admitted += 1
        else:
            per_class[shed.qos.name].shed += 1
            if shed.qos.name != qos_class.name:
                # The arrival itself was admitted; its victim was not.
                metrics.admitted += 1
                per_class[shed.qos.name].admitted -= 1

    while True:
        head = scheduler.peek()
        if len(queues) == 0:
            if head is None:
                break
            admit_next_arrival()
            continue
        # The next batch starts when the server is free *and* work is
        # queued; arrivals up to that instant may still join it.
        earliest = queues.earliest_tick()
        start_tick = max(server_free_tick, earliest)
        while head is not None and head.tick <= start_tick:
            admit_next_arrival()
            head = scheduler.peek()
        batch = queues.pop_batch(model.max_batch)
        service_ticks = seconds_to_ticks(
            model.batch_overhead_s + len(batch) / model.service_pps
        )
        done_tick = start_tick + service_ticks
        batches += 1
        for request in batch:
            metrics = per_class[request.qos.name]
            latency_s = ticks_to_seconds(
                done_tick - request.arrival_tick
            )
            metrics.latency.add(latency_s)
            if latency_s > request.qos.deadline_s:
                metrics.deadline_misses += 1
            else:
                metrics.delivered += 1
        server_free_tick = done_tick

    total = StreamMetrics(duration_s=duration_s)
    for name in sorted(per_class):
        metrics = per_class[name]
        total.offered += metrics.offered
        total.delivered += metrics.delivered
        total.attempts += metrics.admitted
        total.deadline_misses += metrics.deadline_misses
        total.classes[name] = metrics
    return CapacityResult(
        links=links,
        duration_s=duration_s,
        traffic=traffic,
        qos=qos,
        metrics=total,
        arrivals=arrivals,
        batches=batches,
    )


@dataclass
class CapacityCurve:
    """Link-count sweep: the links-sustained-vs-SLO capacity figure."""

    traffic: str
    qos: str
    duration_s: float
    results: list[CapacityResult] = field(default_factory=list)

    @property
    def sustained_links(self) -> int:
        """Largest swept link count whose classes all meet their SLOs
        (0 when even the smallest point violates)."""
        sustained = 0
        for result in self.results:
            if result.slo_met:
                sustained = max(sustained, result.links)
        return sustained

    def payload(self) -> dict:
        """Deterministic JSON-able payload for campaign steps."""
        return {
            "traffic": self.traffic,
            "qos": self.qos,
            "duration_s": self.duration_s,
            "sustained_links": self.sustained_links,
            "points": [r.payload() for r in self.results],
        }


def capacity_curve(
    link_counts,
    duration_s: float = 30.0,
    traffic: str = "mixed",
    qos: str = "triple",
    seed: int = 7,
    model: ServiceModel | None = None,
) -> CapacityCurve:
    """Sweep link counts and collect the capacity curve."""
    counts = sorted({int(c) for c in link_counts})
    if not counts:
        raise ConfigurationError("capacity_curve needs link counts")
    curve = CapacityCurve(
        traffic=validate_traffic(traffic),
        qos=str(qos),
        duration_s=float(duration_s),
    )
    for links in counts:
        curve.results.append(
            simulate_capacity(
                links,
                duration_s=duration_s,
                traffic=traffic,
                qos=qos,
                seed=seed,
                model=model,
            )
        )
    return curve
