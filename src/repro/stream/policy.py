"""Pluggable link-adaptation policies for the closed-loop simulator.

A policy decides, per link and packet slot, whether to transmit the
head-of-line packet and with which channel estimate to decode it —
sharing the :class:`~repro.estimation.base.ChannelEstimate` contract of
the offline techniques, so the receiver-side processing (footnote-4
phase alignment, ZF equalization, Eq. 9 MSE) is identical to the
Sec. 5.5 evaluation loop.

Three policies reproduce the paper's argument in closed loop:

:class:`ProactiveVVDPolicy`
    The paper's thesis made operational: decode with the CNN's
    depth-image prediction (no pilot), and *defer* the slot when the
    Sec. 6.4 blockage head is confident the walker shadows the LoS —
    the link reacts to blockage before it ever wastes a transmission
    on it.
:class:`ReactivePreviousPolicy`
    The strict-lag streaming analogue of
    :class:`~repro.estimation.previous.PreviousEstimation`: decode with
    the canonical estimate of the most recent *successfully decoded*
    packet; warm-up slots fall back to standard (unequalized) decoding.
    Always transmits — a reactive link only learns about blockage from
    the failure it just suffered.
:class:`GeniePolicy`
    Upper bound: the current slot's own whole-packet LS estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..errors import ConfigurationError
from ..estimation.base import ChannelEstimate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..dataset.trace import PacketRecord
    from ..experiments.metrics import PacketOutcome
    from .service import Prediction


@dataclass
class SlotContext:
    """Everything a policy may inspect for one link's packet slot."""

    link: int
    slot: int
    record: "PacketRecord"
    #: Service response for this slot — canonical CIR estimate plus the
    #: Sec. 6.4 blockage probability (prediction-driven policies only;
    #: ``None`` otherwise).
    prediction: "Prediction | None" = None


@dataclass
class LinkDecision:
    """Outcome of one policy decision."""

    #: Transmit this slot (``False`` defers the head-of-line packet).
    transmit: bool
    #: Estimate handed to the receiver when transmitting (``None`` taps
    #: decode without equalization, exactly like the offline runner).
    estimate: Optional[ChannelEstimate] = None
    #: Short machine-readable cause (shown by verbose runs/tests).
    reason: str = ""


class LinkAdaptationPolicy:
    """Base class of streaming link-adaptation policies."""

    #: Display name used in reports, figures and CLI arguments.
    name: str = "abstract"
    #: Whether the simulator must serve this policy CIR predictions
    #: through the :class:`~repro.stream.service.PredictionService`.
    uses_predictions: bool = False

    def reset(self, num_links: int) -> None:
        """Clear per-run state before a simulation pass."""

    def decide(self, ctx: SlotContext) -> LinkDecision:
        """Transmit-or-defer decision for one slot."""
        raise NotImplementedError

    def observe(
        self, ctx: SlotContext, outcome: "PacketOutcome | None"
    ) -> None:
        """Post-slot hook (``outcome is None`` for deferred slots)."""


class ProactiveVVDPolicy(LinkAdaptationPolicy):
    """Predict the channel from depth video; defer into predicted blockage.

    Per slot the policy receives the service's answer for the link's
    matched camera frame: the canonical CIR predicted by the VVD CNN and
    the Sec. 6.4 blockage probability.  When the blockage head is
    confident the walker shadows the LoS (``probability >=
    defer_threshold``), the slot is deferred — the packet retries on a
    later slot instead of burning a transmission the vision pipeline
    already condemned.  Otherwise the slot transmits and decodes with
    the predicted taps (blind estimate, footnote-4 phase alignment).

    The default threshold is deliberately conservative (0.9): in this
    simulator's operating range the DSSS PHY often survives blockage
    when the estimate is fresh, so aggressive deferral trades goodput
    for outage.  Lower the threshold for deadline-insensitive links
    where failed attempts are expensive; ``defer_threshold=1.0``
    disables deferral entirely (pure predicted-estimate operation, e.g.
    for services without a blockage head).
    """

    uses_predictions = True

    def __init__(
        self,
        defer_threshold: float = 0.9,
        name: str = "Proactive VVD",
    ) -> None:
        if not 0.0 < defer_threshold <= 1.0:
            raise ConfigurationError(
                f"defer_threshold must be in (0, 1], got {defer_threshold}"
            )
        self.defer_threshold = float(defer_threshold)
        self.name = name

    def decide(self, ctx: SlotContext) -> LinkDecision:
        """Defer on confident predicted blockage; else transmit with
        the predicted estimate."""
        if ctx.prediction is None:
            raise ConfigurationError(
                f"{self.name} needs a prediction for link {ctx.link} "
                f"slot {ctx.slot}; run it with a PredictionService"
            )
        probability = ctx.prediction.blockage_probability
        if (
            probability is not None
            and self.defer_threshold < 1.0
            and probability >= self.defer_threshold
        ):
            return LinkDecision(
                transmit=False, reason="predicted-blockage"
            )
        taps = ctx.prediction.taps
        return LinkDecision(
            transmit=True,
            estimate=ChannelEstimate(
                taps=taps,
                needs_phase_alignment=True,
                canonical_taps=taps,
            ),
            reason="predicted-estimate",
        )


class ReactivePreviousPolicy(LinkAdaptationPolicy):
    """Streaming previous-estimation: last successful decode's estimate.

    The strict-lag semantics of
    :class:`~repro.estimation.previous.PreviousEstimation`
    (``strict_lag=True``) applied to what a live receiver can actually
    know: until the first successful reception there is no estimate and
    the slot decodes standard (scalar gain, no equalizer); afterwards
    every slot equalizes with the canonical whole-packet LS estimate of
    the most recent *delivered* packet, re-aligned to the current block.
    During blockage transitions that estimate is stale — the reactive
    link keeps transmitting into the fade and learns only from its own
    failures.
    """

    name = "Reactive Previous"

    def __init__(self) -> None:
        self._last_good: dict[int, np.ndarray] = {}

    def reset(self, num_links: int) -> None:
        """Forget every link's last-delivered estimate."""
        self._last_good = {}

    def decide(self, ctx: SlotContext) -> LinkDecision:
        """Always transmit: last delivered estimate, or standard decode
        during warm-up."""
        taps = self._last_good.get(ctx.link)
        if taps is None:
            # Warm-up: nothing decoded yet on this link (strict lag).
            return LinkDecision(
                transmit=True,
                estimate=ChannelEstimate(taps=None),
                reason="warmup-standard",
            )
        return LinkDecision(
            transmit=True,
            estimate=ChannelEstimate(
                taps=taps,
                needs_phase_alignment=True,
                canonical_taps=taps,
            ),
            reason="previous-success",
        )

    def observe(
        self, ctx: SlotContext, outcome: "PacketOutcome | None"
    ) -> None:
        """Install this slot's estimate after a successful decode."""
        if outcome is not None and not outcome.packet_error:
            # The receiver decoded the PSDU, so it can compute the
            # whole-packet LS estimate of this slot and canonicalize it.
            self._last_good[ctx.link] = ctx.record.h_ls_canonical


class GeniePolicy(LinkAdaptationPolicy):
    """Upper bound: the current slot's own perfect (whole-packet LS)
    estimate, as if estimation were free and instantaneous."""

    name = "Genie"

    def decide(self, ctx: SlotContext) -> LinkDecision:
        """Always transmit with the current slot's perfect estimate."""
        return LinkDecision(
            transmit=True,
            estimate=ChannelEstimate(
                taps=ctx.record.h_ls,
                needs_phase_alignment=False,
                canonical_taps=ctx.record.h_ls_canonical,
            ),
            reason="genie",
        )


#: Policy line-up selectable from the campaign CLI (``--policies``).
POLICY_BUILDERS = {
    "proactive": ProactiveVVDPolicy,
    "reactive": ReactivePreviousPolicy,
    "genie": GeniePolicy,
}


def build_policy(name: str, **kwargs) -> LinkAdaptationPolicy:
    """Instantiate the policy registered under ``name``.

    ``kwargs`` are forwarded to the policy constructor (unknown names
    raise with the known registry listed).
    """
    builder = POLICY_BUILDERS.get(name)
    if builder is None:
        raise ConfigurationError(
            f"unknown policy {name!r}; known policies: "
            f"{', '.join(sorted(POLICY_BUILDERS))}"
        )
    return builder(**kwargs)
