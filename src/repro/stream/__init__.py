"""Streaming inference and closed-loop link adaptation.

The serving layer on top of the batched-PHY / cached-dataset /
checkpointed-model stack (see docs/ARCHITECTURE.md):

- :mod:`repro.stream.events` — deterministic, seed-reproducible
  replay of any registered scenario as a time-ordered event stream of
  depth frames and packet slots across N concurrent links.
- :mod:`repro.stream.service` — :class:`PredictionService`, the
  micro-batching VVD inference front-end (models resolve through the
  content-addressed checkpoint registry; per-request latency and
  aggregate throughput counters).
- :mod:`repro.stream.policy` — pluggable link-adaptation policies:
  proactive VVD (predict, defer into predicted blockage), reactive
  previous-estimation, and a genie upper bound.
- :mod:`repro.stream.simulator` — the closed loop: ARQ with deadlines
  per link, micro-batched prediction rounds, offline-identical decode,
  and goodput/outage/deadline-miss metrics per policy.

Campaign integration (``repro stream`` CLI, the resumable ``stream``
campaign step and the proactive-vs-reactive timeline figure) lives in
:mod:`repro.campaign` and :mod:`repro.experiments.figures.stream_timeline`.
"""

from .events import (
    STREAM_SEED_OFFSET,
    LinkTrace,
    StreamEvent,
    build_link_traces,
    merge_event_streams,
    stream_link_config,
)
from .policy import (
    POLICY_BUILDERS,
    GeniePolicy,
    LinkAdaptationPolicy,
    LinkDecision,
    ProactiveVVDPolicy,
    ReactivePreviousPolicy,
    SlotContext,
    build_policy,
)
from .service import Prediction, PredictionService, ServiceStats
from .simulator import (
    LinkTimeline,
    StreamPolicyResult,
    StreamSimulator,
)

__all__ = [
    "STREAM_SEED_OFFSET",
    "LinkTrace",
    "StreamEvent",
    "build_link_traces",
    "merge_event_streams",
    "stream_link_config",
    "POLICY_BUILDERS",
    "GeniePolicy",
    "LinkAdaptationPolicy",
    "LinkDecision",
    "ProactiveVVDPolicy",
    "ReactivePreviousPolicy",
    "SlotContext",
    "build_policy",
    "Prediction",
    "PredictionService",
    "ServiceStats",
    "LinkTimeline",
    "StreamPolicyResult",
    "StreamSimulator",
]
