"""Streaming inference and closed-loop link adaptation.

The serving layer on top of the batched-PHY / cached-dataset /
checkpointed-model stack (see docs/ARCHITECTURE.md):

- :mod:`repro.stream.events` — deterministic, seed-reproducible
  replay of any registered scenario as a time-ordered event stream of
  depth frames and packet slots across N concurrent links.
- :mod:`repro.stream.scheduler` — the heap-based discrete-event core:
  integer-tick :class:`TickEvent` records, lazy per-link
  :class:`EventSource` cursors and the O(links)-memory
  :class:`EventScheduler` both the replay and capacity paths share.
- :mod:`repro.stream.traffic` — heterogeneous per-link arrival
  processes (periodic/Poisson/on-off/diurnal) and QoS class mixes
  with deadlines, all string-seeded for cross-process determinism.
- :mod:`repro.stream.capacity` — the modeled serving-fleet queueing
  simulation: admission control, load shedding, per-class SLA metrics
  and the links-sustained-vs-SLO capacity curve.
- :mod:`repro.stream.service` — :class:`PredictionService`, the
  micro-batching VVD inference front-end (models resolve through the
  content-addressed checkpoint registry; per-request latency and
  aggregate throughput counters).
- :mod:`repro.stream.policy` — pluggable link-adaptation policies:
  proactive VVD (predict, defer into predicted blockage), reactive
  previous-estimation, and a genie upper bound.
- :mod:`repro.stream.simulator` — the closed loop: ARQ with deadlines
  per link, micro-batched prediction rounds, offline-identical decode,
  and goodput/outage/deadline-miss metrics per policy.

Campaign integration (``repro stream`` CLI, the resumable ``stream``
campaign step and the proactive-vs-reactive timeline figure) lives in
:mod:`repro.campaign` and :mod:`repro.experiments.figures.stream_timeline`.
"""

from .capacity import (
    CapacityCurve,
    CapacityResult,
    ServiceModel,
    capacity_curve,
    simulate_capacity,
)
from .events import (
    STREAM_SEED_OFFSET,
    LinkTrace,
    StreamEvent,
    build_link_traces,
    merge_event_streams,
    stream_link_config,
)
from .policy import (
    POLICY_BUILDERS,
    GeniePolicy,
    LinkAdaptationPolicy,
    LinkDecision,
    ProactiveVVDPolicy,
    ReactivePreviousPolicy,
    SlotContext,
    build_policy,
)
from .scheduler import (
    TICKS_PER_SECOND,
    EventScheduler,
    ReplayLinkSource,
    TickEvent,
    replay_scheduler,
    seconds_to_ticks,
    ticks_to_seconds,
)
from .service import Prediction, PredictionService, ServiceStats
from .simulator import (
    LinkTimeline,
    StreamPolicyResult,
    StreamSimulator,
)
from .traffic import (
    QOS_MIXES,
    ArrivalSource,
    ClassAssigner,
    QoSClass,
    TrafficSpec,
    get_qos_mix,
    link_traffic_spec,
    parse_traffic_spec,
    validate_traffic,
)

__all__ = [
    "STREAM_SEED_OFFSET",
    "LinkTrace",
    "StreamEvent",
    "build_link_traces",
    "merge_event_streams",
    "stream_link_config",
    "TICKS_PER_SECOND",
    "EventScheduler",
    "ReplayLinkSource",
    "TickEvent",
    "replay_scheduler",
    "seconds_to_ticks",
    "ticks_to_seconds",
    "QOS_MIXES",
    "ArrivalSource",
    "ClassAssigner",
    "QoSClass",
    "TrafficSpec",
    "get_qos_mix",
    "link_traffic_spec",
    "parse_traffic_spec",
    "validate_traffic",
    "CapacityCurve",
    "CapacityResult",
    "ServiceModel",
    "capacity_curve",
    "simulate_capacity",
    "POLICY_BUILDERS",
    "GeniePolicy",
    "LinkAdaptationPolicy",
    "LinkDecision",
    "ProactiveVVDPolicy",
    "ReactivePreviousPolicy",
    "SlotContext",
    "build_policy",
    "Prediction",
    "PredictionService",
    "ServiceStats",
    "LinkTimeline",
    "StreamPolicyResult",
    "StreamSimulator",
]
