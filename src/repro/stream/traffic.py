"""Per-link arrival-process models and QoS class mixes.

The replay simulator drives every link with the recorded 100 ms packet
grid — deterministic-periodic traffic.  Production framing needs
*heterogeneous* workloads: this module defines arrival-process models
(periodic, Poisson, bursty on/off, diurnal rate envelopes) as lazy
:class:`~repro.stream.scheduler.EventSource` generators, plus QoS class
mixes (per-class deadlines, priorities, SLO targets) the capacity
simulator schedules against.

Determinism is the contract: every stochastic draw comes from a
:class:`random.Random` seeded with a *string* of the form
``"traffic:{seed}:{link}:{spec}"`` — the same ``STREAM_SEED_OFFSET``
philosophy as link traces (string seeding hashes via sha512, so the
sequence is identical across processes, platforms and ``--jobs N``).
An arrival source never materializes its arrivals: it holds one cursor
and synthesizes the next event on demand, so a 10k-link run costs 10k
cursors, not 10k arrival arrays.

Spec strings are grid-axis safe (``:``-separated — ``,``/``=``/
whitespace are rejected by ``format_axis_value``):

- ``periodic`` / ``periodic:R`` — fixed gaps at ``R`` packets/s.
- ``poisson:R`` — exponential gaps at mean rate ``R``.
- ``onoff:R:ON:OFF`` — bursty two-state source: exponential on/off
  dwell times (means ``ON`` / ``OFF`` seconds), Poisson arrivals at
  ``R`` while on, silence while off.
- ``diurnal:R:P`` / ``diurnal:R:P:D`` — inhomogeneous Poisson with a
  sinusoidal rate envelope ``R * (1 + D * sin(2*pi*t/P))`` (thinning).
- ``mixed`` — heterogeneous fleet: link ``l`` uses
  ``MIXED_PROFILE[l % len(MIXED_PROFILE)]``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..errors import ConfigurationError
from .scheduler import KIND_PACKET, TickEvent, seconds_to_ticks

#: Default arrival rate when a spec omits it: the replay slot grid
#: (one packet per 100 ms).
DEFAULT_RATE_PPS = 10.0

#: Arrival-process kinds accepted by :func:`parse_traffic_spec`.
ARRIVAL_KINDS = ("periodic", "poisson", "onoff", "diurnal")

#: The per-link rotation behind the ``mixed`` heterogeneous spec.
MIXED_PROFILE = (
    "periodic:10",
    "poisson:12",
    "onoff:40:1:4",
    "diurnal:10:60:0.8",
)


@dataclass(frozen=True)
class TrafficSpec:
    """One parsed arrival-process model (hashable, canonical)."""

    kind: str
    rate_pps: float = DEFAULT_RATE_PPS
    #: Mean dwell times of the on/off burst states (``onoff`` only).
    on_s: float = 1.0
    off_s: float = 4.0
    #: Envelope period / modulation depth (``diurnal`` only).
    period_s: float = 60.0
    depth: float = 0.8

    def key(self) -> str:
        """Canonical string form — part of every arrival RNG seed, so
        two specs parse equal iff their arrival streams are equal."""
        if self.kind == "periodic" or self.kind == "poisson":
            return f"{self.kind}:{self.rate_pps:g}"
        if self.kind == "onoff":
            return (
                f"onoff:{self.rate_pps:g}:{self.on_s:g}:{self.off_s:g}"
            )
        return (
            f"diurnal:{self.rate_pps:g}:{self.period_s:g}:{self.depth:g}"
        )


def parse_traffic_spec(text: str) -> TrafficSpec:
    """Parse one concrete spec string (``mixed`` is *not* concrete —
    resolve it per link through :func:`link_traffic_spec`)."""
    parts = str(text).strip().split(":")
    kind = parts[0]
    if kind not in ARRIVAL_KINDS:
        raise ConfigurationError(
            f"unknown traffic kind {kind!r} "
            f"(expected one of {', '.join(ARRIVAL_KINDS)}, or 'mixed')"
        )
    try:
        values = [float(p) for p in parts[1:]]
    except ValueError as exc:
        raise ConfigurationError(
            f"malformed traffic spec {text!r}: {exc}"
        ) from None
    rate = values[0] if values else DEFAULT_RATE_PPS
    if rate <= 0.0:
        raise ConfigurationError(
            f"traffic rate must be > 0, got {rate} in {text!r}"
        )
    if kind in ("periodic", "poisson"):
        if len(values) > 1:
            raise ConfigurationError(
                f"{kind} takes at most one parameter, got {text!r}"
            )
        return TrafficSpec(kind=kind, rate_pps=rate)
    if kind == "onoff":
        if len(values) != 3:
            raise ConfigurationError(
                f"onoff needs rate:on:off, got {text!r}"
            )
        on_s, off_s = values[1], values[2]
        if on_s <= 0.0 or off_s <= 0.0:
            raise ConfigurationError(
                f"onoff dwell times must be > 0, got {text!r}"
            )
        return TrafficSpec(
            kind=kind, rate_pps=rate, on_s=on_s, off_s=off_s
        )
    if len(values) not in (2, 3):
        raise ConfigurationError(
            f"diurnal needs rate:period[:depth], got {text!r}"
        )
    period_s = values[1]
    depth = values[2] if len(values) == 3 else 0.8
    if period_s <= 0.0:
        raise ConfigurationError(
            f"diurnal period must be > 0, got {text!r}"
        )
    if not 0.0 <= depth <= 1.0:
        raise ConfigurationError(
            f"diurnal depth must be in [0, 1], got {text!r}"
        )
    return TrafficSpec(
        kind=kind, rate_pps=rate, period_s=period_s, depth=depth
    )


def link_traffic_spec(text: str, link: int) -> TrafficSpec:
    """Resolve a (possibly ``mixed``) spec string for one link."""
    if str(text).strip() == "mixed":
        return parse_traffic_spec(
            MIXED_PROFILE[link % len(MIXED_PROFILE)]
        )
    return parse_traffic_spec(text)


def validate_traffic(text: str) -> str:
    """Validate a spec string (``mixed`` included); returns it back."""
    text = str(text).strip()
    if text != "mixed":
        parse_traffic_spec(text)
    return text


class ArrivalSource:
    """Lazy per-link packet-arrival :class:`EventSource`.

    Emits :class:`TickEvent` packets (``index`` = arrival ordinal) on
    the integer tick grid until ``duration_s`` is exhausted.  All
    randomness comes from one string-seeded RNG, so the stream is a
    pure function of ``(seed, link, spec)``.
    """

    def __init__(
        self,
        link: int,
        spec: TrafficSpec,
        seed: int,
        duration_s: float,
    ) -> None:
        if duration_s <= 0.0:
            raise ConfigurationError(
                f"duration_s must be > 0, got {duration_s}"
            )
        self.link = int(link)
        self.spec = spec
        self._rng = random.Random(
            f"traffic:{seed}:{link}:{spec.key()}"
        )
        self._limit_tick = seconds_to_ticks(duration_s)
        self._time_s = 0.0
        self._index = 0
        # Bursty on/off state: start in the on phase with a fresh dwell.
        if spec.kind == "onoff":
            self._on_until_s = self._exponential(1.0 / spec.on_s)
        else:
            self._on_until_s = math.inf

    def _exponential(self, rate: float) -> float:
        """Inverse-transform exponential draw (explicit so the RNG
        consumption pattern is pinned, not an implementation detail of
        ``random.expovariate``)."""
        return -math.log(1.0 - self._rng.random()) / rate

    def _advance(self) -> None:
        """Move ``_time_s`` to the next arrival instant."""
        spec = self.spec
        if spec.kind == "periodic":
            self._time_s = (self._index + 1) / spec.rate_pps
            return
        if spec.kind == "poisson":
            self._time_s += self._exponential(spec.rate_pps)
            return
        if spec.kind == "onoff":
            while True:
                gap = self._exponential(spec.rate_pps)
                if self._time_s + gap <= self._on_until_s:
                    self._time_s += gap
                    return
                # The candidate falls past this on-phase: burn the off
                # dwell and retry from the next on-phase start.
                off = self._exponential(1.0 / spec.off_s)
                self._time_s = self._on_until_s + off
                self._on_until_s = self._time_s + self._exponential(
                    1.0 / spec.on_s
                )
            return
        # Diurnal: thinning against the envelope's peak rate.
        peak = spec.rate_pps * (1.0 + spec.depth)
        while True:
            self._time_s += self._exponential(peak)
            phase = 2.0 * math.pi * self._time_s / spec.period_s
            rate = spec.rate_pps * (
                1.0 + spec.depth * math.sin(phase)
            )
            if self._rng.random() * peak <= rate:
                return

    def next_event(self) -> TickEvent | None:
        """The link's next arrival, or ``None`` past the horizon."""
        self._advance()
        tick = seconds_to_ticks(self._time_s)
        if tick > self._limit_tick:
            return None
        event = TickEvent(
            tick=tick,
            kind=KIND_PACKET,
            link=self.link,
            index=self._index,
        )
        self._index += 1
        return event


@dataclass(frozen=True)
class QoSClass:
    """One traffic class: delivery deadline, shed priority, SLO target."""

    name: str
    #: Per-packet delivery deadline (arrival -> served), seconds.
    deadline_s: float
    #: Shed priority: lower numbers are served first and shed last.
    priority: int
    #: Mix weight (relative fraction of arrivals drawn into the class).
    weight: float
    #: SLO: maximum acceptable deadline-miss rate (shed included).
    target_miss_rate: float


#: Builtin QoS class mixes, selected by name from the CLI / grid axis.
QOS_MIXES: dict[str, tuple[QoSClass, ...]] = {
    "uniform": (
        QoSClass(
            name="default",
            deadline_s=0.3,
            priority=0,
            weight=1.0,
            target_miss_rate=0.05,
        ),
    ),
    "triple": (
        QoSClass(
            name="gold",
            deadline_s=0.15,
            priority=0,
            weight=0.2,
            target_miss_rate=0.01,
        ),
        QoSClass(
            name="silver",
            deadline_s=0.3,
            priority=1,
            weight=0.3,
            target_miss_rate=0.05,
        ),
        QoSClass(
            name="bronze",
            deadline_s=0.6,
            priority=2,
            weight=0.5,
            target_miss_rate=0.2,
        ),
    ),
}


def get_qos_mix(name: str) -> tuple[QoSClass, ...]:
    """Look a QoS mix up by name (clean error on unknown names)."""
    try:
        return QOS_MIXES[str(name).strip()]
    except KeyError:
        raise ConfigurationError(
            f"unknown QoS mix {name!r} "
            f"(expected one of {', '.join(sorted(QOS_MIXES))})"
        ) from None


class ClassAssigner:
    """Deterministic per-link weighted class draw for each arrival."""

    def __init__(
        self, mix_name: str, link: int, seed: int
    ) -> None:
        self._classes = get_qos_mix(mix_name)
        self._rng = random.Random(f"qos:{seed}:{link}:{mix_name}")
        total = sum(c.weight for c in self._classes)
        self._cumulative = []
        acc = 0.0
        for qos in self._classes:
            acc += qos.weight / total
            self._cumulative.append(acc)

    def draw(self) -> QoSClass:
        """The next arrival's class."""
        u = self._rng.random()
        for qos, edge in zip(self._classes, self._cumulative):
            if u <= edge:
                return qos
        return self._classes[-1]
