"""Closed-loop link-adaptation simulation over merged event streams.

:class:`StreamSimulator` consumes the time-ordered event stream of N
concurrent links (:mod:`repro.stream.events`) and runs one policy
through it end to end: frames update each link's camera state, packet
slots trigger an arrival, a deadline sweep, a (micro-batched) prediction
round, the policy decision, and — for transmitting links — waveform
synthesis and decoding under exactly the offline receiver processing
(:meth:`~repro.experiments.runner.EvaluationRunner.decode_packet`).

Per slot and link the simulator runs plain ARQ with a deadline: a new
packet joins the link's queue every 100 ms, the head-of-line packet is
attempted (or deferred) once per slot, failures retry on later slots,
and packets whose deadline passes undelivered are dropped as misses.
Waveforms re-synthesize bit-exactly from the recorded noise seeds, and
every data path is deterministic, so one (scenario, seed, policy) tuple
produces bit-identical :class:`~repro.experiments.metrics.StreamMetrics`
across runs and worker settings — pinned by
``tests/stream/test_stream_determinism.py``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..channel.blockage import shadow_clearance_m
from ..dataset.generator import (
    SimulationComponents,
    synthesize_received_batch,
)
from ..errors import ConfigurationError, ServiceDeadlineError
from ..obs import log, trace
from ..experiments.metrics import (
    PacketOutcome,
    StreamMetrics,
    TechniqueResult,
)
from ..experiments.runner import EvaluationRunner
from .scheduler import KIND_FRAME, TickEvent, replay_scheduler
from .events import LinkTrace
from .policy import (
    LinkAdaptationPolicy,
    ReactivePreviousPolicy,
    SlotContext,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .service import PredictionService

#: Timeline symbols: delivered / failed attempt / deferred slot.
_SYMBOL_SUCCESS = "."
_SYMBOL_FAILURE = "X"
_SYMBOL_DEFER = "d"


@dataclass
class LinkTimeline:
    """Per-slot strip of one link's closed-loop run (for figures)."""

    #: One symbol per slot (see module constants).
    symbols: str
    #: ``#`` where the walker shadows the LoS, space otherwise.
    blocked: str

    def as_dict(self) -> dict:
        """JSON-able form stored in campaign step payloads."""
        return {"symbols": self.symbols, "blocked": self.blocked}


@dataclass
class StreamPolicyResult:
    """Everything one policy's simulation pass produced."""

    policy: str
    links: int
    num_slots: int
    metrics: StreamMetrics
    per_link: list[StreamMetrics]
    #: Decode outcomes of every transmission attempt (PER/CER/MSE over
    #: attempts, reusing the offline aggregation).
    technique: TechniqueResult
    timelines: list[LinkTimeline]

    def payload(self) -> dict:
        """Deterministic JSON-able payload persisted by campaign steps.

        Wall-time service statistics are deliberately *not* part of the
        payload: everything here is a pure function of (scenario, seed,
        policy), which is what the determinism acceptance test hashes.
        """
        mse = self.technique.mse
        return {
            "policy": self.policy,
            "links": self.links,
            "num_slots": self.num_slots,
            "metrics": self.metrics.as_dict(),
            "per_link": [m.as_dict() for m in self.per_link],
            "attempt_per": (
                self.technique.per if self.technique.outcomes else None
            ),
            "attempt_mse": None if math.isnan(mse) else mse,
            "timelines": [t.as_dict() for t in self.timelines],
        }


@dataclass
class _LinkState:
    """Mutable per-link bookkeeping of one simulation pass."""

    queue: list[int]  # arrival slots of undelivered packets, FIFO
    metrics: StreamMetrics
    symbols: list[str]
    blocked: list[str]
    outcomes: list[PacketOutcome]
    latest_frame: int = -1


class StreamSimulator:
    """Runs link-adaptation policies through one merged event stream."""

    def __init__(
        self,
        components: SimulationComponents,
        traces: Sequence[LinkTrace],
        deadline_slots: int = 3,
        round_deadline_s: float | None = None,
    ) -> None:
        # Normalize before the emptiness check: an exhausted *generator*
        # is truthy, so guarding the raw argument lets an empty stream
        # through and `run` later dies on `min()` of an empty sequence.
        traces = list(traces)
        if not traces:
            raise ConfigurationError("StreamSimulator needs link traces")
        if deadline_slots < 1:
            raise ConfigurationError(
                f"deadline_slots must be >= 1, got {deadline_slots}"
            )
        if round_deadline_s is not None and round_deadline_s <= 0.0:
            raise ConfigurationError(
                f"round_deadline_s must be > 0, got {round_deadline_s}"
            )
        self.components = components
        self.traces = traces
        self.deadline_slots = int(deadline_slots)
        #: Wall-time budget of one micro-batched prediction round; a
        #: round that raises or overruns it degrades to the reactive
        #: fallback instead of crashing (``None`` disables the budget).
        self.round_deadline_s = (
            None if round_deadline_s is None else float(round_deadline_s)
        )
        #: Offline decode reuse: identical receiver processing per attempt.
        self.runner = EvaluationRunner(
            components, [t.measurement_set for t in self.traces]
        )
        self._shadow = shadow_clearance_m(components.config.channel)

    # -- event loop -------------------------------------------------------
    def run(
        self,
        policy: LinkAdaptationPolicy,
        service: "PredictionService | None" = None,
        verbose: bool = False,
    ) -> StreamPolicyResult:
        """Simulate one policy over the full event stream.

        Each policy gets its own pass over the *same* events, packets
        and noise realizations, so policies are compared on identical
        channels.  Prediction-driven policies require ``service``; its
        micro-batching happens here — all links pending at one slot time
        are flushed in a single forward pass.

        Prediction rounds degrade gracefully: when the service raises,
        or when ``round_deadline_s`` is set and the round overruns it,
        the affected slot's decisions fall back to a warm
        :class:`~repro.stream.policy.ReactivePreviousPolicy` (fed every
        slot outcome, so its last-delivered estimates are current) and
        the degradation is counted in the per-link
        :class:`~repro.experiments.metrics.StreamMetrics`
        (``degraded_rounds`` / ``fallback_decisions``) instead of
        aborting the pass.
        """
        if policy.uses_predictions and service is None:
            raise ConfigurationError(
                f"policy {policy.name!r} needs a PredictionService"
            )
        if not self.traces:
            raise ConfigurationError(
                "StreamSimulator.run needs at least one link trace"
            )
        num_links = len(self.traces)
        interval = self.components.config.dataset.packet_interval_s
        num_slots = min(trace.num_slots for trace in self.traces)
        states = [
            _LinkState(
                queue=[],
                metrics=StreamMetrics(duration_s=num_slots * interval),
                symbols=[],
                blocked=[],
                outcomes=[],
            )
            for _ in range(num_links)
        ]
        policy.reset(num_links)
        fallback: ReactivePreviousPolicy | None = None
        if policy.uses_predictions:
            # Degraded-mode understudy: observes every slot so its
            # last-delivered estimates stay warm, decides only for
            # rounds whose prediction service failed or overran.
            fallback = ReactivePreviousPolicy()
            fallback.reset(num_links)

        # Lazy heap replay: the scheduler holds one pending event per
        # link (O(links) memory, never a dense event list) and groups
        # packet slots by exact integer-tick equality — no more relying
        # on float sums of the slot interval comparing `==` across
        # links.  Packet events past the common `num_slots` window are
        # truncated at the source; frames beyond it still arrive and
        # advance `latest_frame` (the camera keeps filming).
        scheduler = replay_scheduler(self.traces, max_slots=num_slots)
        while True:
            event = scheduler.peek()
            if event is None:
                break
            if event.kind == KIND_FRAME:
                scheduler.pop()
                state = states[event.link]
                state.latest_frame = max(state.latest_frame, event.index)
                continue
            slot_events = scheduler.pop_slot_group()
            if slot_events:
                with trace.span(
                    "stream.round",
                    t=slot_events[0].time_s,
                    links=len(slot_events),
                ):
                    self._run_slot(
                        slot_events, states, policy, service, fallback
                    )

        per_link = [state.metrics for state in states]
        total = StreamMetrics()
        for metrics in per_link:
            total.merge(metrics)
        technique = TechniqueResult(policy.name)
        for state in states:
            for outcome in state.outcomes:
                technique.add(outcome)
        result = StreamPolicyResult(
            policy=policy.name,
            links=num_links,
            num_slots=num_slots,
            metrics=total,
            per_link=per_link,
            technique=technique,
            timelines=[
                LinkTimeline(
                    symbols="".join(state.symbols),
                    blocked="".join(state.blocked),
                )
                for state in states
            ],
        )
        if verbose:
            log.info(
                f"[stream] {policy.name}: goodput "
                f"{total.goodput_pps:.2f} pkt/s, outage "
                f"{total.outage:.3f}, deadline-miss "
                f"{total.deadline_miss_rate:.3f}, defer-rate "
                f"{total.defer_rate:.3f}"
            )
        return result

    def _run_slot(
        self,
        slot_events: Sequence[TickEvent],
        states: list[_LinkState],
        policy: LinkAdaptationPolicy,
        service: "PredictionService | None",
        fallback: ReactivePreviousPolicy | None = None,
    ) -> None:
        """One synchronized slot: arrivals, predictions, decisions, decodes."""
        contexts: dict[int, SlotContext] = {}
        for event in slot_events:
            link, slot = event.link, event.index
            state = states[link]
            record = self.traces[link].measurement_set.packets[slot]
            # Arrival + deadline sweep.
            state.queue.append(slot)
            state.metrics.offered += 1
            while (
                state.queue
                and state.queue[0] + self.deadline_slots <= slot
            ):
                state.queue.pop(0)
                state.metrics.deadline_misses += 1
            contexts[link] = SlotContext(
                link=link, slot=slot, record=record
            )

        degraded_reason: str | None = None
        if policy.uses_predictions and service is not None:
            # Horizon-trained models predict the CIR `horizon` frames
            # after their input frame (core/targets.py), so serving one
            # means submitting an *older* frame — the same clamped
            # offset VVDEstimator.estimate uses offline.
            horizon = service.trained.horizon_frames
            round_start = time.perf_counter()
            try:
                for link, ctx in sorted(contexts.items()):
                    frame_index = max(
                        ctx.record.frame_index - horizon, 0
                    )
                    state = states[link]
                    # The LED-matched frame is captured at or before the
                    # blink; the event stream must have delivered it.
                    frame_index = min(
                        frame_index, max(state.latest_frame, 0)
                    )
                    frames = self.traces[link].measurement_set.frames
                    service.submit(link, frames[frame_index])
                predictions = service.flush()  # one batched forward
            except Exception as exc:
                # Serving outage: degrade this round, never abort the
                # pass (KeyboardInterrupt/SystemExit still propagate).
                predictions = {}
                degraded_reason = f"{type(exc).__name__}: {exc}"
            else:
                elapsed = time.perf_counter() - round_start
                if (
                    self.round_deadline_s is not None
                    and elapsed > self.round_deadline_s
                ):
                    # Late answers are as useless as no answers: the
                    # slot's transmit decision could not have waited.
                    predictions = {}
                    overrun = ServiceDeadlineError(
                        f"prediction round took {elapsed:.3f}s "
                        f"(deadline {self.round_deadline_s:g}s)"
                    )
                    degraded_reason = (
                        f"{type(overrun).__name__}: {overrun}"
                    )
            if degraded_reason is None:
                for link, prediction in predictions.items():
                    contexts[link].prediction = prediction
            else:
                log.warning(
                    "warning: prediction round degraded at "
                    f"t={slot_events[0].time_s:g}s — {degraded_reason}; "
                    f"falling back to {fallback.name}"
                )

        decisions = {}
        for link, ctx in sorted(contexts.items()):
            if degraded_reason is not None and fallback is not None:
                states[link].metrics.degraded_rounds += 1
                states[link].metrics.fallback_decisions += 1
                decisions[link] = fallback.decide(ctx)
            else:
                decisions[link] = policy.decide(ctx)
        transmitting = [
            link
            for link in sorted(decisions)
            if decisions[link].transmit
        ]
        received_rows = None
        if transmitting:
            received_rows = synthesize_received_batch(
                self.components,
                [contexts[link].record for link in transmitting],
            )
        row_of = {link: row for row, link in enumerate(transmitting)}

        for link in sorted(contexts):
            ctx = contexts[link]
            state = states[link]
            decision = decisions[link]
            blocked_symbol = (
                "#" if ctx.record.los_clearance_m <= self._shadow else " "
            )
            state.blocked.append(blocked_symbol)
            if not decision.transmit:
                state.metrics.deferrals += 1
                state.symbols.append(_SYMBOL_DEFER)
                policy.observe(ctx, None)
                if fallback is not None:
                    fallback.observe(ctx, None)
                continue
            packet = self.components.transmitter.transmit(
                ctx.record.sequence_number
            )
            received = received_rows[row_of[link]]
            outcome = self.runner.decode_packet(
                decision.estimate, packet, received, ctx.record
            )
            state.metrics.attempts += 1
            state.outcomes.append(outcome)
            if outcome.packet_error:
                state.metrics.failures += 1
                state.symbols.append(_SYMBOL_FAILURE)
            else:
                # The attempt delivered the head-of-line packet.
                if state.queue:
                    state.queue.pop(0)
                state.metrics.delivered += 1
                state.symbols.append(_SYMBOL_SUCCESS)
            policy.observe(ctx, outcome)
            if fallback is not None:
                fallback.observe(ctx, outcome)
