"""Pinhole depth camera with a cached static background.

The camera watches the movement area from a wall mount (paper Fig. 2).
The static scene (room shell, metal cabinets at the scatterer positions,
TX/RX boxes) is rendered once; per-frame rendering only intersects the
human cylinder and takes the depth minimum, which keeps generating
thousands of frames cheap.
"""

from __future__ import annotations

import numpy as np

from ..config import CameraConfig, ChannelConfig, RoomConfig
from ..errors import ShapeError
from .rendering import (
    ray_box_intersection,
    ray_cylinder_intersection,
    ray_cylinder_intersection_batch,
    ray_room_intersection,
)

_CABINET_HALF_XY = 0.35
_DEVICE_HALF = 0.12


class DepthCamera:
    """Renders depth images of the room at the configured resolution."""

    def __init__(
        self,
        camera: CameraConfig,
        room: RoomConfig,
        channel: ChannelConfig,
    ) -> None:
        self.config = camera
        self.room = room
        self.channel = channel
        self._origin = np.asarray(camera.position, dtype=np.float64)
        self._directions = self._build_ray_grid()
        self._static_depth = self._render_static()

    # -- ray grid ---------------------------------------------------------
    def _build_ray_grid(self) -> np.ndarray:
        rows, cols = self.config.render_shape
        look_at = np.asarray(self.config.look_at, dtype=np.float64)
        forward = look_at - self._origin
        norm = np.linalg.norm(forward)
        if norm == 0:
            raise ShapeError("camera look_at coincides with its position")
        forward /= norm
        world_up = np.array([0.0, 0.0, 1.0])
        right = np.cross(forward, world_up)
        right_norm = np.linalg.norm(right)
        if right_norm < 1e-9:
            raise ShapeError("camera is pointing straight up/down")
        right /= right_norm
        up = np.cross(right, forward)

        half_w = np.tan(np.deg2rad(self.config.horizontal_fov_deg) / 2.0)
        half_h = half_w * rows / cols
        xs = np.linspace(-half_w, half_w, cols)
        ys = np.linspace(half_h, -half_h, rows)
        grid_x, grid_y = np.meshgrid(xs, ys)
        directions = (
            forward[None, None, :]
            + grid_x[..., None] * right[None, None, :]
            + grid_y[..., None] * up[None, None, :]
        )
        directions /= np.linalg.norm(directions, axis=-1, keepdims=True)
        return directions

    # -- static scene -------------------------------------------------------
    def _static_boxes(self) -> list[tuple[np.ndarray, np.ndarray]]:
        boxes = []
        for sx, sy, sz, _ in self.room.scatterers:
            half = _CABINET_HALF_XY
            boxes.append(
                (
                    np.array([sx - half, sy - half, 0.0]),
                    np.array([sx + half, sy + half, sz + 0.4]),
                )
            )
        for device in (self.room.tx_position, self.room.rx_position):
            dx, dy, dz = device
            half = _DEVICE_HALF
            boxes.append(
                (
                    np.array([dx - half, dy - half, 0.0]),
                    np.array([dx + half, dy + half, dz + half]),
                )
            )
        return boxes

    def _render_static(self) -> np.ndarray:
        depth = ray_room_intersection(
            self._origin,
            self._directions,
            self.room.width_m,
            self.room.depth_m,
            self.room.height_m,
        )
        for box_min, box_max in self._static_boxes():
            t = ray_box_intersection(
                self._origin, self._directions, box_min, box_max
            )
            depth = np.minimum(depth, t)
        return np.minimum(depth, self.config.max_depth_m).astype(np.float64)

    # -- public API ----------------------------------------------------------
    @property
    def static_depth(self) -> np.ndarray:
        """Depth image of the empty room (no human)."""
        return self._static_depth.copy()

    def render(self, human_xy) -> np.ndarray:
        """Depth image with the human cylinder at ``human_xy``."""
        human_xy = np.asarray(human_xy, dtype=np.float64)
        t = ray_cylinder_intersection(
            self._origin,
            self._directions,
            human_xy,
            self.channel.human_radius_m,
            self.channel.human_height_m,
        )
        depth = np.minimum(self._static_depth, t)
        return np.minimum(depth, self.config.max_depth_m)

    def render_batch(
        self, humans_xy, chunk_size: int = 8
    ) -> np.ndarray:
        """Depth images for a batch of positions.

        Parameters
        ----------
        humans_xy:
            ``(F, >=2)`` float64 positions; only the leading xy columns
            are used (one human per frame).
        chunk_size:
            Frames intersected per vectorized chunk (keeps the working
            set cache-sized).

        Returns
        -------
        numpy.ndarray
            ``(F, rows, cols)`` float64 depth images at the configured
            ``render_shape``, frame ``f`` matching
            ``render(humans_xy[f])`` exactly: only the human cylinder
            moves between frames, so the static scene is shared and the
            cylinder intersection is vectorized across position chunks.
        """
        humans_xy = np.asarray(humans_xy, dtype=np.float64)
        if humans_xy.ndim != 2 or humans_xy.shape[1] < 2:
            raise ShapeError(
                f"humans_xy must be (F, >=2), got {humans_xy.shape}"
            )
        chunk_size = max(1, chunk_size)
        out = np.empty(
            (len(humans_xy),) + self._static_depth.shape,
            dtype=np.float64,
        )
        for lo in range(0, len(humans_xy), chunk_size):
            chunk = humans_xy[lo : lo + chunk_size, :2]
            t = ray_cylinder_intersection_batch(
                self._origin,
                self._directions,
                chunk,
                self.channel.human_radius_m,
                self.channel.human_height_m,
            )
            depth = np.minimum(self._static_depth[None], t)
            out[lo : lo + len(chunk)] = np.minimum(
                depth, self.config.max_depth_m
            )
        return out

    def render_multi_batch(
        self, humans_xy, chunk_size: int = 8
    ) -> np.ndarray:
        """Depth images for frames containing *multiple* humans.

        Parameters
        ----------
        humans_xy:
            ``(F, H, 2)`` float64 positions — ``H`` human cylinders per
            frame; the rendered depth is the per-pixel minimum over the
            static scene and every cylinder.
        chunk_size:
            As in :meth:`render_batch`.

        Returns
        -------
        numpy.ndarray
            ``(F, rows, cols)`` float64 depth images.  With ``H == 1``
            this reduces exactly to :meth:`render_batch`.
        """
        humans_xy = np.asarray(humans_xy, dtype=np.float64)
        if humans_xy.ndim != 3 or humans_xy.shape[2] < 2:
            raise ShapeError(
                f"humans_xy must be (F, H, >=2), got {humans_xy.shape}"
            )
        out = self.render_batch(humans_xy[:, 0, :], chunk_size=chunk_size)
        for h in range(1, humans_xy.shape[1]):
            chunk_size = max(1, chunk_size)
            positions = humans_xy[:, h, :2]
            for lo in range(0, len(positions), chunk_size):
                chunk = positions[lo : lo + chunk_size]
                t = ray_cylinder_intersection_batch(
                    self._origin,
                    self._directions,
                    chunk,
                    self.channel.human_radius_m,
                    self.channel.human_height_m,
                )
                np.minimum(
                    out[lo : lo + len(chunk)],
                    t,
                    out=out[lo : lo + len(chunk)],
                )
        return out
