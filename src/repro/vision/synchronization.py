"""LED-blink synchronization of camera frames to packets (paper Fig. 3).

Frames arrive every ~33 ms, packets every 100 ms, so two frames can be
candidates for the same packet.  The motes blink their LEDs during
transmission; the frame whose exposure interval contains the blink is the
correct match.  :func:`match_packet_to_frame` reproduces this resolution
deterministically from timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError, SynchronizationError


@dataclass(frozen=True)
class FrameTimeline:
    """Timestamps of a camera recording at a fixed frame rate."""

    num_frames: int
    frame_interval_s: float
    start_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.num_frames < 1:
            raise ShapeError("num_frames must be >= 1")
        if self.frame_interval_s <= 0:
            raise ShapeError("frame_interval_s must be positive")

    @property
    def timestamps(self) -> np.ndarray:
        return (
            self.start_time_s
            + np.arange(self.num_frames) * self.frame_interval_s
        )

    def frame_interval(self, index: int) -> tuple[float, float]:
        """Exposure interval ``[start, end)`` of frame ``index``."""
        if not 0 <= index < self.num_frames:
            raise ShapeError(
                f"frame index {index} outside [0, {self.num_frames})"
            )
        start = self.start_time_s + index * self.frame_interval_s
        return start, start + self.frame_interval_s

    def candidate_frames(self, packet_time_s: float) -> list[int]:
        """Frames whose timestamp is within one interval of the packet.

        This is the Fig. 3 ambiguity: typically two frames qualify.
        """
        times = self.timestamps
        mask = np.abs(times - packet_time_s) < self.frame_interval_s
        return [int(i) for i in np.nonzero(mask)[0]]


def match_packet_to_frame(
    timeline: FrameTimeline, packet_time_s: float
) -> int:
    """Resolve the packet -> frame match using the LED blink.

    The LED is lit at the instant of transmission; the frame whose
    exposure interval contains ``packet_time_s`` captures the blink and
    wins.  Falls back to the nearest candidate when the packet falls
    outside every exposure window (recording gap).
    """
    candidates = timeline.candidate_frames(packet_time_s)
    if not candidates:
        raise SynchronizationError(
            f"no camera frame within one interval of packet at "
            f"t={packet_time_s:.4f}s"
        )
    for index in candidates:
        start, end = timeline.frame_interval(index)
        if start <= packet_time_s < end:
            return index
    times = timeline.timestamps[candidates]
    nearest = int(np.argmin(np.abs(times - packet_time_s)))
    return candidates[nearest]
