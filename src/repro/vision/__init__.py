"""Depth-camera substrate: the surveillance camera of the paper's setup.

- :mod:`repro.vision.camera` — pinhole depth camera with precomputed ray
  grid and a cached static background (the room never moves; only the
  human is re-rendered per frame).
- :mod:`repro.vision.rendering` — vectorized ray/primitive intersections
  (axis-aligned planes and boxes, the vertical human cylinder).
- :mod:`repro.vision.preprocessing` — the Fig. 7 pipeline: downsample by
  10 and crop to 50x90.
- :mod:`repro.vision.synchronization` — the Fig. 3 LED-blink matching of
  camera frames to packets.
"""

from .camera import DepthCamera
from .rendering import (
    ray_box_intersection,
    ray_cylinder_intersection,
    ray_room_intersection,
)
from .preprocessing import (
    block_downsample,
    crop_depth,
    preprocess_depth,
    preprocess_720p,
    normalize_depth,
)
from .synchronization import FrameTimeline, match_packet_to_frame

__all__ = [
    "DepthCamera",
    "ray_box_intersection",
    "ray_cylinder_intersection",
    "ray_room_intersection",
    "block_downsample",
    "crop_depth",
    "preprocess_depth",
    "preprocess_720p",
    "normalize_depth",
    "FrameTimeline",
    "match_packet_to_frame",
]
